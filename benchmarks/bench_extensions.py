"""Benches for the extension experiments (§6 future work + validation)."""

import pytest

from repro.experiments.empirical import EmpiricalConfig, Testbed
from repro.experiments.extensions import false_drop_validation, variable_cardinality


def test_variable_cardinality(benchmark, record):
    """§6 future work: fixed vs spread target cardinality."""
    result = benchmark(variable_cardinality)
    record(result)
    assert result.value("uniform Dt∈[1,19]", 2) > result.value("fixed Dt=10", 2)


@pytest.fixture(scope="module")
def validation_testbed():
    config = EmpiricalConfig(
        num_objects=1024,
        domain_cardinality=416,
        signature_bits=64,
        bits_per_element=2,
        queries_per_point=4,
        seed=3,
    )
    return config, Testbed.build(config)


def test_false_drop_validation(benchmark, record, validation_testbed):
    """Measured Fd on the simulator vs equations (2)/(6)."""
    config, testbed = validation_testbed

    def run():
        return false_drop_validation(
            config=config,
            superset_dq=(1, 2, 3),
            subset_dq=(30, 60, 100),
            queries_per_point=4,
            testbed=testbed,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(result)
    # sampling noise + eq. (6)'s small-F low bias (see the result's notes)
    for _, _, measured, predicted, _ in result.rows:
        assert predicted / 3.0 - 0.02 <= measured <= predicted * 3.0 + 0.03
