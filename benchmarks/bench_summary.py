"""Regenerate the Section 6 conclusions table (the reproduction verdict)."""

from repro.experiments.conclusions import summary


def test_summary(benchmark, record):
    result = benchmark(summary)
    record(result)
    assert all(row[2] == "HOLDS" for row in result.rows)
