"""Ablation: signature width F — the storage/false-drop dilemma (§5.1.1).

"If we choose a smaller signature size F, the storage cost might decrease.
However, the false drop probability will increase. This is a dilemma of
SSF." The sweep makes the trade-off concrete for both organizations.
"""

from repro.core.false_drop import false_drop_superset
from repro.costmodel.bssf_model import BSSFCostModel
from repro.costmodel.parameters import PAPER_PARAMETERS
from repro.costmodel.ssf_model import SSFCostModel
from repro.experiments.result import TableResult

F_VALUES = (125, 250, 500, 1000, 2000)


def f_sweep_table(m: int = 2, Dt: int = 10, Dq: int = 3) -> TableResult:
    rows = []
    for F in F_VALUES:
        ssf = SSFCostModel(PAPER_PARAMETERS, F, m)
        bssf = BSSFCostModel(PAPER_PARAMETERS, F, m)
        rows.append(
            [
                F,
                false_drop_superset(F, m, Dt, Dq),
                ssf.storage_cost(),
                ssf.retrieval_cost_superset(Dt, Dq),
                bssf.storage_cost(),
                bssf.retrieval_cost_superset(Dt, Dq),
            ]
        )
    return TableResult(
        experiment_id="ablation_f",
        title=f"F ablation (m={m}, Dt={Dt}, Dq={Dq})",
        columns=["F", "Fd", "SSF SC", "SSF RC", "BSSF SC", "BSSF RC"],
        rows=rows,
        notes=[
            "SSF RC tracks SC (full scan); BSSF RC is nearly F-independent "
            "once Fd is small — the §5.1.1 asymmetry"
        ],
    )


def test_ablation_f(benchmark, record):
    result = benchmark(f_sweep_table)
    record(result)
    # SSF: storage and retrieval both fall with F — the dilemma is that
    # Fd rises; BSSF retrieval must stay within a few pages across F.
    fd_values = [row[1] for row in result.rows]
    assert all(a > b for a, b in zip(fd_values, fd_values[1:]))
    bssf_rc = [row[5] for row in result.rows]
    assert max(bssf_rc) - min(bssf_rc) < 25
