"""Ablation: smart vs naive retrieval strategies (DESIGN.md §5).

Quantifies exactly how much of BSSF's advantage comes from the Section 5
smart strategies, for both query types, at the paper's flagship design
point (F = 500, m = 2, Dt = 10).
"""

from repro.costmodel.bssf_model import BSSFCostModel
from repro.costmodel.nix_model import NIXCostModel
from repro.costmodel.parameters import PAPER_PARAMETERS
from repro.costmodel.smart import (
    smart_subset_bssf,
    smart_superset_bssf,
    smart_superset_nix,
)
from repro.experiments.result import SeriesResult


def smart_vs_naive_superset() -> SeriesResult:
    bssf = BSSFCostModel(PAPER_PARAMETERS, 500, 2)
    nix = NIXCostModel(PAPER_PARAMETERS, 10)
    dq_values = list(range(1, 11))
    return SeriesResult(
        experiment_id="ablation_smart_superset",
        title="Smart vs naive, T ⊇ Q, Dt=10, F=500, m=2",
        x_label="Dq",
        x_values=dq_values,
        series={
            "BSSF naive": [bssf.retrieval_cost_superset(10, dq) for dq in dq_values],
            "BSSF smart": [smart_superset_bssf(bssf, 10, dq).cost for dq in dq_values],
            "NIX naive": [nix.retrieval_cost_superset(dq) for dq in dq_values],
            "NIX smart": [smart_superset_nix(nix, dq).cost for dq in dq_values],
        },
    )


def smart_vs_naive_subset() -> SeriesResult:
    bssf = BSSFCostModel(PAPER_PARAMETERS, 500, 2)
    dq_values = [10, 30, 100, 300, 1000]
    return SeriesResult(
        experiment_id="ablation_smart_subset",
        title="Smart vs naive, T ⊆ Q, Dt=10, F=500, m=2",
        x_label="Dq",
        x_values=dq_values,
        series={
            "BSSF naive": [bssf.retrieval_cost_subset(10, dq) for dq in dq_values],
            "BSSF smart": [smart_subset_bssf(bssf, 10, dq).cost for dq in dq_values],
        },
    )


def test_ablation_smart_superset(benchmark, record):
    result = benchmark(smart_vs_naive_superset)
    record(result)
    for dq in range(1, 11):
        assert result.value("BSSF smart", dq) <= result.value("BSSF naive", dq) + 1e-9


def test_ablation_smart_subset(benchmark, record):
    result = benchmark(smart_vs_naive_subset)
    record(result)
    for dq in (10, 30, 100):
        assert result.value("BSSF smart", dq) <= result.value("BSSF naive", dq) + 1e-9
