"""Regenerate the paper's Figure 5 (analytical, Section 5)."""

from repro.experiments import figures


def test_figure5(benchmark, record):
    result = benchmark(figures.figure5)
    record(result)
