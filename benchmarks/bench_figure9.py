"""Regenerate the paper's Figure 9 (analytical, Section 5)."""

from repro.experiments import figures


def test_figure9(benchmark, record):
    result = benchmark(figures.figure9)
    record(result)
