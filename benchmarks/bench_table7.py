"""Regenerate the paper's Table 7 (analytical, Section 4/5)."""

from repro.experiments import tables


def test_table7(benchmark, record):
    result = benchmark(tables.table7)
    record(result)
