"""Benchmark harness support.

Every benchmark regenerates one paper table/figure (or an ablation) and
records the rendered rows/series under ``benchmarks/results/`` — the same
rows/series the paper reports — while pytest-benchmark times the
generation. Empirical benchmarks share one scaled testbed per module so
the (comparatively slow) load happens once.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record():
    """Persist an experiment result and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(result, suffix: str = ""):
        name = result.experiment_id + (f"_{suffix}" if suffix else "")
        text = result.render()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)
        return result

    return _record
