"""Full paper-scale Dt = 100 run (Table 2 + the second Table 5 row).

Building this testbed takes ~60-90 s (32,000 objects × 100 elements,
F = 2500 slices), so it is opt-in::

    SIGREPRO_FULL_DT100=1 pytest benchmarks/bench_full_scale_dt100.py --benchmark-only

Findings this bench pins:

* SSF signature file = 2462 pages — the model's ceil(N / floor(P·b/F))
  exactly;
* BSSF = 2500 slice pages + 63;
* the real B+-tree needs ~18% more leaf pages than Table 5's 6500: with
  ~2 KB entries, per-key posting-length variance (Poisson around
  d = 246) makes many leaf pairs spill where the analytical model packs
  floor(P/il) = 2 entries per leaf at the mean. The non-leaf count and
  height match. This is a genuine limit of the paper's mean-value
  geometry, visible only because the substrate is real.
"""

import os

import pytest

from repro.experiments.empirical import EmpiricalConfig, Testbed

pytestmark = pytest.mark.skipif(
    not os.environ.get("SIGREPRO_FULL_DT100"),
    reason="~90 s build; set SIGREPRO_FULL_DT100=1 to run",
)

CONFIG = EmpiricalConfig(
    num_objects=32_000,
    domain_cardinality=13_000,
    target_cardinality=100,
    signature_bits=2500,
    bits_per_element=3,
    seed=2,
    queries_per_point=2,
)


@pytest.fixture(scope="module")
def testbed() -> Testbed:
    return Testbed.build(CONFIG)


def test_dt100_storage(benchmark, testbed, record):
    from repro.costmodel.nix_model import NIXCostModel
    from repro.costmodel.parameters import PAPER_PARAMETERS
    from repro.experiments.result import TableResult

    report = testbed.database.facility_storage_report()
    ssf = report["EvalObject.elements/ssf"]
    bssf = report["EvalObject.elements/bssf"]
    nix = report["EvalObject.elements/nix"]
    model = NIXCostModel(PAPER_PARAMETERS, 100)

    def build_table():
        return TableResult(
            experiment_id="full_scale_dt100_storage",
            title="Paper-scale storage at Dt=100: measured vs model",
            columns=["structure", "measured pages", "model pages"],
            rows=[
                ["SSF signature", ssf["signature"], 2462],
                ["BSSF slices", bssf["slices"], 2500],
                ["NIX leaf", nix["leaf"], model.leaf_pages],
                ["NIX nonleaf", nix["nonleaf"], model.nonleaf_pages],
            ],
            notes=[
                "NIX leaves exceed the model by ~18%: posting-length "
                "variance spills pairs of ~2KB entries the mean-value "
                "geometry packs two-per-page"
            ],
        )

    result = benchmark.pedantic(build_table, rounds=1, iterations=1)
    record(result)
    assert result.cell("SSF signature", "measured pages") == 2462
    assert result.cell("BSSF slices", "measured pages") == 2500
    measured_leaves = result.cell("NIX leaf", "measured pages")
    assert 6500 <= measured_leaves <= 6500 * 1.30


def test_dt100_retrieval(benchmark, testbed):
    query = testbed.generator.random_query_set(3)

    def run():
        return testbed.measure_query("bssf", "superset", query, smart=True)

    benchmark(run)
    pages, _ = run()
    assert pages < 60  # smart BSSF stays in single-digit-to-tens territory
