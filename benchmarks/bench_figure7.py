"""Regenerate the paper's Figure 7 (analytical, Section 5)."""

from repro.experiments import figures


def test_figure7(benchmark, record):
    result = benchmark(figures.figure7)
    record(result)
