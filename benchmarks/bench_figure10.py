"""Regenerate the paper's Figure 10 (analytical, Section 5)."""

from repro.experiments import figures


def test_figure10(benchmark, record):
    result = benchmark(figures.figure10)
    record(result)
