"""Empirical validation benches: simulator page accesses vs the model.

One scaled testbed (N = 2048, V scaled to keep the paper's posting density
d = Dt·N/V ≈ 24.6) is shared by all benches in this module. The recorded
sweeps are the empirical counterparts of Figures 4–10's analytical curves;
the benchmark timings measure real end-to-end query execution on the
paged-storage simulator.
"""

import pytest

from repro.experiments.empirical import (
    EmpiricalConfig,
    Testbed,
    empirical_sweep,
    empirical_update_costs,
)

CONFIG = EmpiricalConfig(
    num_objects=2048,
    domain_cardinality=832,
    target_cardinality=10,
    signature_bits=500,
    bits_per_element=2,
    seed=7,
    queries_per_point=3,
)


@pytest.fixture(scope="module")
def testbed() -> Testbed:
    return Testbed.build(CONFIG)


def test_superset_query_execution(benchmark, testbed, record):
    """Time one T ⊇ Q query through the BSSF path; record the full sweep."""
    query = testbed.generator.random_query_set(3)

    def run():
        return testbed.measure_query("bssf", "superset", query, smart=True)

    benchmark(run)
    record(
        empirical_sweep(
            CONFIG, "superset", (1, 2, 3, 5, 8, 10), testbed=testbed
        )
    )


def test_subset_query_execution(benchmark, testbed, record):
    """Time one T ⊆ Q query through the BSSF path; record the full sweep."""
    query = testbed.generator.random_query_set(50)

    def run():
        return testbed.measure_query("bssf", "subset", query, smart=True)

    benchmark(run)
    record(
        empirical_sweep(
            CONFIG, "subset", (10, 30, 100, 300), testbed=testbed
        )
    )


def test_smart_subset_sweep(benchmark, testbed, record):
    """Record the smart-strategy subset sweep (Figure 9's empirical twin)."""
    query = testbed.generator.random_query_set(100)

    def run():
        return testbed.measure_query("bssf", "subset", query, smart=True)

    benchmark(run)
    record(
        empirical_sweep(
            CONFIG,
            "subset",
            (10, 30, 100),
            facilities=("bssf",),
            smart=True,
            testbed=testbed,
        ),
    )


def test_update_costs(benchmark, testbed, record):
    """Time a full insert (object + all three indexes); record Table 7's
    empirical twin."""

    counter = iter(range(10_000))

    def insert_one():
        serial = next(counter)
        elements = {
            (serial * 13 + k) % CONFIG.domain_cardinality for k in range(10)
        }
        testbed.database.insert("EvalObject", {"elements": elements})

    benchmark.pedantic(insert_one, rounds=8, iterations=1)
    record(empirical_update_costs(CONFIG, operations=8, testbed=testbed))
