"""Load test for the network serving edge: sustained QPS and tail latency.

Drives a loopback :class:`~repro.server.net.TcpQueryServer` with a fleet
of concurrent :class:`~repro.client.RemoteClient` threads for a fixed
duration and reports sustained throughput (QPS) plus the p50/p99 request
latency distribution — the serving numbers the wire protocol, the
connection pool, and the admission path are accountable for. The store
carries simulated per-page device read latency (the same knob the
concurrent sweep in ``bench_wallclock.py`` uses), so the server's worker
pool has real waiting to overlap and the measurement exercises the full
stack: frame codec, TCP round trip, admission, execution, statistics
encoding.

A single-threaded in-process baseline (one ``QueryService.execute`` loop
over the same queries) runs first; its QPS is reported alongside so the
wire overhead is visible as a ratio, but only the *remote* numbers are
gated.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke] [--json]
        [--clients N] [--workers N] [--duration S]
        [--min-qps Q] [--max-p99-ms MS] [--out F]

The report merges into ``BENCH_wallclock.json`` (or ``--out``) under a
``"serving"`` key, preserving any sections an earlier
``bench_wallclock.py`` run wrote; the file's top-level ``"pass"`` flag
becomes the AND of the existing verdict and this one, so
``tools/bench_report.py`` gates on both.
"""

from __future__ import annotations

import argparse
import json
import statistics
import threading
import time
from pathlib import Path

from repro.client import RemoteClient
from repro.objects.database import Database
from repro.objects.schema import ClassSchema
from repro.server.net import TcpQueryServer
from repro.server.service import QueryService
from repro.workloads.generator import SetWorkloadGenerator, WorkloadSpec

REPO_ROOT = Path(__file__).resolve().parent.parent

FULL = {
    "num_objects": 512,
    "domain_cardinality": 1664,
    "target_cardinality": 10,
    "signature_bits": 500,
    "bits_per_element": 2,
    "page_size": 4096,
    "target_seed": 42,
    "query_seed": 43,
    "query_elements": 3,
    "num_queries": 32,
    "device_read_latency_s": 0.0002,
    "clients": 8,
    "workers": 8,
    "warmup_seconds": 0.5,
    "duration_seconds": 4.0,
}

SMOKE = {
    "num_objects": 192,
    "domain_cardinality": 208,
    "target_cardinality": 10,
    "signature_bits": 192,
    "bits_per_element": 2,
    "page_size": 4096,
    "target_seed": 42,
    "query_seed": 43,
    "query_elements": 3,
    "num_queries": 16,
    "device_read_latency_s": 0.0002,
    "clients": 4,
    "workers": 4,
    "warmup_seconds": 0.25,
    "duration_seconds": 1.5,
}

# Gate floors/ceilings per mode. Deliberately loose (roughly a third of
# what the development machine sustains) so CI noise cannot flake the
# run while a real serving regression — a serialized server, a per-request
# reconnect, a quadratic codec — still fails it.
FULL_THRESHOLDS = {"serving_min_qps": 80.0, "serving_max_p99_ms": 250.0}
SMOKE_THRESHOLDS = {"serving_min_qps": 60.0, "serving_max_p99_ms": 400.0}


def build_fixture(config):
    """A BSSF-indexed set database plus a deterministic query batch."""
    gen = SetWorkloadGenerator(
        WorkloadSpec(
            num_objects=config["num_objects"],
            domain_cardinality=config["domain_cardinality"],
            target_cardinality=config["target_cardinality"],
            seed=config["target_seed"],
        )
    )
    db = Database(page_size=config["page_size"], pool_capacity=0)
    db.define_class(ClassSchema.build("Item", items="set"))
    db.create_bssf_index(
        "Item",
        "items",
        signature_bits=config["signature_bits"],
        bits_per_element=config["bits_per_element"],
        seed=config["target_seed"],
    )
    for elements in gen.target_sets():
        db.insert("Item", {"items": set(elements)})
    qgen = SetWorkloadGenerator(
        WorkloadSpec(
            num_objects=0,
            domain_cardinality=config["domain_cardinality"],
            target_cardinality=config["target_cardinality"],
            seed=config["query_seed"],
        )
    )
    texts = [
        "select Item where items has-subset ({})".format(
            ", ".join(
                str(e)
                for e in sorted(qgen.random_query_set(config["query_elements"]))
            )
        )
        for _ in range(config["num_queries"])
    ]
    return db, texts


def percentile(samples, fraction):
    """Nearest-rank percentile of a sorted sample list."""
    if not samples:
        return 0.0
    rank = min(len(samples) - 1, max(0, int(round(fraction * (len(samples) - 1)))))
    return samples[rank]


def run_client(client, texts, stop_at, latencies, errors, offset):
    """One load-generator thread: round-robin the batch until the deadline."""
    index = offset
    while time.perf_counter() < stop_at:
        text = texts[index % len(texts)]
        index += 1
        t0 = time.perf_counter()
        try:
            client.execute(text)
        except Exception:
            errors.append(1)
            continue
        latencies.append(time.perf_counter() - t0)


def measure_inprocess(db, texts, duration_seconds):
    """Single-threaded QueryService baseline over the same queries."""
    count = 0
    with QueryService(db, max_workers=1) as service:
        stop_at = time.perf_counter() + duration_seconds
        started = time.perf_counter()
        index = 0
        while time.perf_counter() < stop_at:
            service.execute(texts[index % len(texts)])
            index += 1
            count += 1
        elapsed = time.perf_counter() - started
    return count / elapsed if elapsed > 0 else 0.0


def measure_serving(config):
    """Sustained remote QPS and latency percentiles over loopback TCP."""
    db, texts = build_fixture(config)
    db.storage.store.read_latency_seconds = config["device_read_latency_s"]
    try:
        inprocess_qps = measure_inprocess(
            db, texts, config["duration_seconds"] / 2
        )
        with TcpQueryServer(
            db,
            max_workers=config["workers"],
            queue_depth=4 * config["workers"],
        ) as server:
            clients = [
                RemoteClient(*server.address, pool_size=1)
                for _ in range(config["clients"])
            ]
            try:
                # Warmup: fill decode caches and dial every connection so
                # the measured window starts steady-state.
                warm_stop = time.perf_counter() + config["warmup_seconds"]
                for offset, client in enumerate(clients):
                    run_client(client, texts, warm_stop, [], [], offset)
                latencies: list = []
                errors: list = []
                stop_at = time.perf_counter() + config["duration_seconds"]
                started = time.perf_counter()
                threads = [
                    threading.Thread(
                        target=run_client,
                        args=(client, texts, stop_at, latencies, errors, i),
                        name=f"load-client-{i}",
                    )
                    for i, client in enumerate(clients)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                elapsed = time.perf_counter() - started
            finally:
                for client in clients:
                    client.close()
    finally:
        db.storage.store.read_latency_seconds = 0.0
    ordered = sorted(latencies)
    qps = len(ordered) / elapsed if elapsed > 0 else 0.0
    return {
        "clients": float(config["clients"]),
        "workers": float(config["workers"]),
        "duration_s": elapsed,
        "requests": float(len(ordered)),
        "errors": float(len(errors)),
        "qps": qps,
        "inprocess_qps": inprocess_qps,
        "p50_ms": percentile(ordered, 0.50) * 1000,
        "p99_ms": percentile(ordered, 0.99) * 1000,
        "mean_ms": (statistics.fmean(ordered) * 1000) if ordered else 0.0,
    }


def merge_report(out_path, section, mode):
    """Write ``section`` under ``"serving"``, preserving other sections."""
    report = {}
    if out_path.exists():
        try:
            report = json.loads(out_path.read_text())
        except (OSError, ValueError):
            report = {}
    report.setdefault("mode", mode)
    report["serving"] = section
    report["pass"] = bool(report.get("pass", True)) and section["pass"]
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small fast configuration"
    )
    parser.add_argument(
        "--clients", type=int, default=None, help="concurrent load clients"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="server worker-pool width"
    )
    parser.add_argument(
        "--duration", type=float, default=None, help="measured seconds"
    )
    parser.add_argument(
        "--min-qps", type=float, default=None,
        help="override the sustained-QPS floor",
    )
    parser.add_argument(
        "--max-p99-ms", type=float, default=None,
        help="override the p99 latency ceiling (milliseconds)",
    )
    parser.add_argument(
        "--json", action="store_true", help="dump the JSON report to stdout"
    )
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_wallclock.json",
        help="report file to merge the serving section into",
    )
    args = parser.parse_args(argv)

    config = dict(SMOKE if args.smoke else FULL)
    thresholds = dict(SMOKE_THRESHOLDS if args.smoke else FULL_THRESHOLDS)
    if args.clients is not None:
        config["clients"] = args.clients
    if args.workers is not None:
        config["workers"] = args.workers
    if args.duration is not None:
        config["duration_seconds"] = args.duration
    if args.min_qps is not None:
        thresholds["serving_min_qps"] = args.min_qps
    if args.max_p99_ms is not None:
        thresholds["serving_max_p99_ms"] = args.max_p99_ms

    metrics = measure_serving(config)
    failures = []
    if metrics["qps"] < thresholds["serving_min_qps"]:
        failures.append(
            f"serving: {metrics['qps']:.1f} qps "
            f"< required {thresholds['serving_min_qps']:.1f}"
        )
    if metrics["p99_ms"] > thresholds["serving_max_p99_ms"]:
        failures.append(
            f"serving: p99 {metrics['p99_ms']:.1f} ms "
            f"> allowed {thresholds['serving_max_p99_ms']:.1f} ms"
        )
    if metrics["errors"]:
        failures.append(f"serving: {int(metrics['errors'])} request error(s)")

    section = {
        **{k: round(v, 3) for k, v in metrics.items()},
        "thresholds": thresholds,
        "pass": not failures,
    }
    report = merge_report(args.out, section, "smoke" if args.smoke else "full")

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"serving: {int(metrics['requests'])} requests over "
            f"{metrics['duration_s']:.2f} s from {int(metrics['clients'])} "
            f"client(s) against {int(metrics['workers'])} worker(s)"
        )
        print(
            f"  {metrics['qps']:.1f} qps sustained "
            f"(in-process baseline {metrics['inprocess_qps']:.1f} qps); "
            f"p50 {metrics['p50_ms']:.2f} ms, p99 {metrics['p99_ms']:.2f} ms"
        )
    for failure in failures:
        print(f"FAIL {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
