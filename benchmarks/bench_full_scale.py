"""Full paper-scale empirical run: N = 32,000, V = 13,000 (Table 2 exactly).

Bulk-builds all three facilities at the paper's parameters and checks the
*measured* structures and page accesses against the published numbers:

* storage: SSF 493+63, BSSF 500+63 pages; the real B+-tree's leaf count
  lands within a page of Table 5's analytical 685 (the leaf-entry byte
  layout differs by one key byte from the paper's idealized ``il``);
* retrieval: measured page accesses for both query types vs the Section 4
  model at the same parameters.
"""

import pytest

from repro.costmodel.nix_model import NIXCostModel
from repro.costmodel.parameters import PAPER_PARAMETERS
from repro.experiments.empirical import EmpiricalConfig, Testbed, empirical_sweep
from repro.experiments.result import TableResult

CONFIG = EmpiricalConfig(
    num_objects=32_000,
    domain_cardinality=13_000,
    target_cardinality=10,
    signature_bits=500,
    bits_per_element=2,
    seed=1,
    queries_per_point=3,
)


@pytest.fixture(scope="module")
def testbed() -> Testbed:
    return Testbed.build(CONFIG)


def storage_comparison(testbed: Testbed) -> TableResult:
    report = testbed.database.facility_storage_report()
    ssf = report["EvalObject.elements/ssf"]
    bssf = report["EvalObject.elements/bssf"]
    nix = report["EvalObject.elements/nix"]
    nix_model = NIXCostModel(PAPER_PARAMETERS, 10)
    rows = [
        ["SSF", ssf["signature"] + ssf["oid"], 493 + 63],
        ["BSSF", bssf["slices"] + bssf["oid"], 500 + 63],
        ["NIX leaf", nix["leaf"], nix_model.leaf_pages],
        ["NIX nonleaf", nix["nonleaf"], nix_model.nonleaf_pages],
    ]
    return TableResult(
        experiment_id="full_scale_storage",
        title="Paper-scale storage: measured structures vs Table 5/6",
        columns=["structure", "measured pages", "paper/model pages"],
        rows=rows,
        notes=["real B+-tree built bottom-up at N=32,000, V=13,000, Dt=10"],
    )


def test_full_scale_storage(benchmark, testbed, record):
    result = benchmark.pedantic(
        lambda: storage_comparison(testbed), rounds=1, iterations=1
    )
    record(result)
    assert result.cell("SSF", "measured pages") == 493 + 63
    assert result.cell("BSSF", "measured pages") == 500 + 63
    measured_leaves = result.cell("NIX leaf", "measured pages")
    # within ~2.5% of Table 5's 685: our leaf entries carry 4 extra bytes
    # (the overflow-chain pointer) and a 1-byte-wider key encoding than
    # the paper's idealized il
    assert abs(measured_leaves - 685) <= 17


def test_full_scale_superset(benchmark, testbed, record):
    query = testbed.generator.random_query_set(3)

    def run():
        return testbed.measure_query("bssf", "superset", query, smart=True)

    benchmark(run)
    result = empirical_sweep(
        CONFIG, "superset", (1, 2, 3, 5, 10), testbed=testbed
    )
    record(result, suffix="full_scale")
    # BSSF ≤ NIX except possibly at Dq=1 (the paper's conclusion), both
    # far below SSF's 493-page scan floor.
    for dq in (2, 3, 5, 10):
        assert result.value("bssf measured", dq) < 50
        assert result.value("ssf measured", dq) >= 493


def test_full_scale_subset(benchmark, testbed, record):
    query = testbed.generator.random_query_set(100)

    def run():
        return testbed.measure_query("bssf", "subset", query, smart=True)

    benchmark(run)
    result = empirical_sweep(
        CONFIG, "subset", (10, 100, 300), facilities=("bssf", "nix"),
        smart=True, testbed=testbed,
    )
    record(result, suffix="full_scale")
    for dq in (10, 100, 300):
        assert result.value("bssf measured", dq) < result.value("nix measured", dq)
