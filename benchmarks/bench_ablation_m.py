"""Ablation: the m design parameter (DESIGN.md §5).

The paper's central tuning claim (§5.1.2, §6): the text-retrieval default
``m_opt`` minimizes the false-drop probability but *not* the BSSF retrieval
cost — a far smaller m wins. This bench sweeps m and records both the
false-drop probability and the total retrieval cost so the divergence is
visible in one table.
"""

from repro.core.false_drop import false_drop_superset, rounded_optimal_m
from repro.core.tuning import best_m_for_retrieval
from repro.costmodel.bssf_model import BSSFCostModel
from repro.costmodel.parameters import PAPER_PARAMETERS
from repro.experiments.result import TableResult


def m_sweep_table(F: int = 500, Dt: int = 10, Dq: int = 3) -> TableResult:
    m_opt = rounded_optimal_m(F, Dt)
    rows = []
    for m in [1, 2, 3, 4, 6, 10, 20, m_opt]:
        model = BSSFCostModel(PAPER_PARAMETERS, F, m)
        rows.append(
            [
                m,
                false_drop_superset(F, m, Dt, Dq),
                model.retrieval_cost_superset(Dt, Dq),
                model.retrieval_cost_subset(Dt, 100),
                model.insert_cost_expected(Dt),
            ]
        )
    best = best_m_for_retrieval(
        lambda m: BSSFCostModel(PAPER_PARAMETERS, F, m).retrieval_cost_superset(Dt, Dq),
        m_opt,
    )
    return TableResult(
        experiment_id="ablation_m",
        title=f"m ablation (F={F}, Dt={Dt}, Dq={Dq}); m_opt={m_opt}",
        columns=["m", "Fd (T⊇Q)", "RC T⊇Q", "RC T⊆Q Dq=100", "E[UC_I]"],
        rows=rows,
        notes=[
            f"retrieval-optimal m = {best} (far below m_opt = {m_opt}), "
            "even though Fd is minimized at m_opt — the paper's §6 claim"
        ],
    )


def test_ablation_m(benchmark, record):
    result = benchmark(m_sweep_table)
    record(result)
    best_note = result.notes[0]
    assert "retrieval-optimal m = 1" in best_note or "retrieval-optimal m = 2" in best_note
