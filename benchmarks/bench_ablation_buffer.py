"""Ablation: buffer-pool capacity vs physical I/O (DESIGN.md §5).

The paper's model assumes no buffering (every logical access is physical).
This bench runs the same query workload under increasing pool capacities
and records logical vs physical page accesses: logical counts stay fixed
(they are the model's quantity) while physical I/O falls with cache size.
"""

import pytest

from repro.experiments.result import TableResult
from repro.objects.database import Database
from repro.objects.schema import ClassSchema
from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionOptions
from repro.query.parser import ParsedQuery
from repro.query.planner import CostContext
from repro.query.predicates import has_subset
from repro.workloads.generator import (
    EVAL_ATTRIBUTE,
    EVAL_CLASS,
    SetWorkloadGenerator,
    WorkloadSpec,
    load_workload,
)

SPEC = WorkloadSpec(
    num_objects=1024, domain_cardinality=416, target_cardinality=10, seed=3
)
CAPACITIES = (0, 8, 64, 512)


def _build(capacity: int) -> Database:
    db = Database(page_size=4096, pool_capacity=capacity)
    load_workload(db, SPEC)
    db.create_bssf_index(EVAL_CLASS, EVAL_ATTRIBUTE, 500, 2, seed=1)
    return db


def _run_workload(db: Database) -> tuple:
    executor = QueryExecutor(db)
    generator = SetWorkloadGenerator(
        WorkloadSpec(0, SPEC.domain_cardinality, SPEC.target_cardinality,
                     seed=SPEC.seed + 1)
    )
    context = CostContext(
        num_objects=SPEC.num_objects,
        domain_cardinality=SPEC.domain_cardinality,
        target_cardinality=SPEC.target_cardinality,
    )
    before = db.io_snapshot()
    for _ in range(12):
        query = generator.random_query_set(3)
        parsed = ParsedQuery(
            class_name=EVAL_CLASS,
            predicates=(has_subset(EVAL_ATTRIBUTE, *query),),
        )
        executor.execute(
            parsed, ExecutionOptions(context=context, prefer_facility="bssf")
        )
    delta = db.io_snapshot() - before
    return delta.logical_total, delta.physical_total


def buffer_ablation_table() -> TableResult:
    rows = []
    for capacity in CAPACITIES:
        db = _build(capacity)
        logical, physical = _run_workload(db)
        rows.append([capacity, logical, physical, db.storage.pool.hit_ratio()])
    return TableResult(
        experiment_id="ablation_buffer",
        title="Buffer-pool ablation: 12 T⊇Q queries, BSSF F=500 m=2",
        columns=["pool frames", "logical pages", "physical pages", "hit ratio"],
        rows=rows,
        notes=[
            "logical accesses are capacity-invariant (the model's metric); "
            "physical I/O falls as the pool grows"
        ],
    )


def test_ablation_buffer(benchmark, record):
    result = benchmark.pedantic(buffer_ablation_table, rounds=1, iterations=1)
    record(result)
    logical = [row[1] for row in result.rows]
    assert max(logical) == min(logical), "logical accesses must not depend on caching"
    physical = [row[2] for row in result.rows]
    assert physical[0] >= physical[-1], "caching must not increase physical I/O"
    # uncached mode: every logical access is physical
    assert result.rows[0][1] == pytest.approx(result.rows[0][2], rel=0.01)
