"""Regenerate the paper's Table 6 (analytical, Section 4/5)."""

from repro.experiments import tables


def test_table6(benchmark, record):
    result = benchmark(tables.table6)
    record(result)
