"""Regenerate the paper's Table 5 (analytical, Section 4/5)."""

from repro.experiments import tables


def test_table5(benchmark, record):
    result = benchmark(tables.table5)
    record(result)
