"""Wall-clock benchmark: packed kernels + decode caches vs the naive paths.

The paper's metric is logical page accesses — which both execution paths
produce bit-identically (see ``tests/access/test_golden_page_accesses.py``).
This bench measures the *simulator's own* wall-clock cost at the empirical
design point (N = 4096, F = 500, m = 2), comparing ``use_kernels=True``
against the per-entry reference path on:

* the BSSF subset sweep (the ``F − m_q`` slice-OR path — the heaviest
  retrieval loop in the repo),
* the SSF full-scan search (superset + subset + overlap over every
  signature page),
* bulk load of both facilities,
* the wall-clock overhead of an *active* span tracer (``repro.obs``) on
  the BSSF subset sweep — recorded under the report's ``tracer_overhead``
  key (tracing *off* is the null-tracer default in every other number),
* the wall-clock overhead of ``durability="wal"`` on the update path —
  each update appends + fsyncs one logical record before mutating —
  against an identical WAL-off database, recorded under the report's
  ``wal_overhead`` key,
* concurrent read throughput: one query batch served sequentially vs by a
  :class:`~repro.server.QueryService` worker pool over a store with
  simulated per-page read latency (the sleeps overlap across workers the
  way real disk requests would), recorded under the report's
  ``concurrency`` key as ``concurrent_speedup``,
* batched query evaluation: ``execute_many`` with a ``batch_size`` (one
  shared decode + ``match_many`` kernels + raw-counter accounting per
  group) vs ``execute_text`` in a loop, recorded under the report's
  ``batched`` key as ``batched_speedup``,
* process-pool serving: a persistent
  :class:`~repro.server.ProcessQueryService` vs the sequential loop on a
  zero-latency (CPU-bound) store, recorded under the report's ``process``
  key as ``process_speedup``,
* sharded scatter-gather: the same latency-simulated query batch served
  by a :class:`~repro.sharding.ShardRouter` over N hash-partitioned
  shards (each query fans out, per-shard device reads overlap) vs the
  sequential unsharded loop, recorded under the report's ``sharded`` key
  as ``sharded_speedup``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_wallclock.py [--smoke] [--json]
        [--out F] [--workers N] [--batch-size N] [--process-workers N]
        [--concurrent-only]

Writes a JSON report (default ``BENCH_wallclock.json`` at the repo root;
``--json`` also dumps it to stdout). Every number is gated: each mode
bakes in default speedup floors (and a tracer-overhead ceiling) in
``FULL_THRESHOLDS`` / ``SMOKE_THRESHOLDS``; ``--min-*`` / ``--max-*``
flags override them, and any breach makes the run exit non-zero with
``"pass": false`` in the report.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.access.bssf import BitSlicedSignatureFile
from repro.access.ssf import SequentialSignatureFile
from repro.core.signature import SignatureScheme
from repro.objects.oid import OID
from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer, activate
from repro.storage.paged_file import StorageManager
from repro.workloads.generator import SetWorkloadGenerator, WorkloadSpec

REPO_ROOT = Path(__file__).resolve().parent.parent

FULL = {
    "num_objects": 4096,
    "domain_cardinality": 1664,
    "target_cardinality": 10,
    "signature_bits": 500,
    "bits_per_element": 2,
    "page_size": 4096,
    "target_seed": 42,
    "query_seed": 43,
    "subset_dq": [10, 30, 100, 300],
    "scan_dq": [5, 20, 100],
    "min_seconds": 1.0,
    "concurrent_queries": 48,
    "concurrent_objects": 512,
    "device_read_latency_s": 0.0002,
    "serving_objects": 1024,
    "serving_queries": 64,
    "batch_size": 16,
}

SMOKE = {
    "num_objects": 512,
    "domain_cardinality": 208,
    "target_cardinality": 10,
    "signature_bits": 192,
    "bits_per_element": 2,
    "page_size": 4096,
    "target_seed": 42,
    "query_seed": 43,
    "subset_dq": [5, 20],
    "scan_dq": [5, 20],
    "min_seconds": 0.2,
    "concurrent_queries": 24,
    "concurrent_objects": 256,
    "device_read_latency_s": 0.0002,
    "serving_objects": 256,
    "serving_queries": 32,
    "batch_size": 16,
}

# Default gates per mode. Every entry is a minimum speedup except
# ``tracer_overhead``, a *maximum* on/off ratio. The full-mode floors
# reflect roughly half the speedups measured on the development machine
# (see docs/PERFORMANCE.md); smoke floors are looser — tiny configs leave
# less work to amortize fixed costs over and CI machines are noisy.
FULL_THRESHOLDS = {
    "bssf_subset_sweep": 3.0,
    "ssf_scan_sweep": 3.0,
    "ssf_bulk_load": 1.0,
    "bssf_bulk_load": 1.0,
    "concurrent": 2.0,
    "batched": 2.0,
    "process": 1.5,
    "sharded": 1.5,
    "lsm_update": 1.5,
    "lsm_wal_overhead": 1.1,
    "tracer_overhead": 1.15,
}
SMOKE_THRESHOLDS = {
    "bssf_subset_sweep": 1.5,
    "ssf_scan_sweep": 1.2,
    "ssf_bulk_load": 1.0,
    "bssf_bulk_load": 1.0,
    "concurrent": 1.5,
    "batched": 1.3,
    "process": 1.1,
    "sharded": 1.2,
    "lsm_update": 1.2,
    "lsm_wal_overhead": 1.35,
    "tracer_overhead": 1.4,
}


def build(config, use_kernels):
    manager = StorageManager(
        page_size=config["page_size"], pool_capacity=0
    )
    scheme = SignatureScheme(
        config["signature_bits"],
        config["bits_per_element"],
        seed=config["target_seed"],
    )
    ssf = SequentialSignatureFile(manager, scheme, use_kernels=use_kernels)
    bssf = BitSlicedSignatureFile(manager, scheme, use_kernels=use_kernels)
    gen = SetWorkloadGenerator(
        WorkloadSpec(
            num_objects=config["num_objects"],
            domain_cardinality=config["domain_cardinality"],
            target_cardinality=config["target_cardinality"],
            seed=config["target_seed"],
        )
    )
    pairs = [(s, OID(1, i)) for i, s in enumerate(gen.target_sets())]
    t0 = time.perf_counter()
    ssf.bulk_load(pairs)
    t1 = time.perf_counter()
    bssf.bulk_load(list(pairs))
    t2 = time.perf_counter()
    times = {"ssf_bulk_load_s": t1 - t0, "bssf_bulk_load_s": t2 - t1}
    return ssf, bssf, manager, times


def queries_for(config, key):
    qgen = SetWorkloadGenerator(
        WorkloadSpec(
            num_objects=0,
            domain_cardinality=config["domain_cardinality"],
            target_cardinality=config["target_cardinality"],
            seed=config["query_seed"],
        )
    )
    return [qgen.random_query_set(dq) for dq in config[key]]


def best_sweep_time(sweep, min_seconds):
    """Best-of-reps sweep time, running at least ``min_seconds`` total."""
    sweep()  # warm-up: decode caches, numpy, element-signature memos
    best = float("inf")
    elapsed = 0.0
    while elapsed < min_seconds:
        t0 = time.perf_counter()
        sweep()
        dt = time.perf_counter() - t0
        best = min(best, dt)
        elapsed += dt
    return best


def measure_tracer_overhead(config, bssf, manager):
    """Wall-clock cost of an *active* tracer on the BSSF subset sweep.

    The off path is the production default (module-level null tracer); the
    on path activates a real ``Tracer`` with a ring-buffer sink, so every
    search opens a span and snapshots per-file I/O deltas. This bounds the
    worst case — per-query tracing amortizes the same work over far more
    time than a bare facility sweep does.
    """
    queries = queries_for(config, "subset_dq")

    def sweep():
        return [bssf.search_subset(q) for q in queries]

    tracer = Tracer(io_source=manager, sinks=[RingBufferSink(64)])

    def traced_sweep():
        with activate(tracer):
            return [bssf.search_subset(q) for q in queries]

    off = best_sweep_time(sweep, config["min_seconds"])
    on = best_sweep_time(traced_sweep, config["min_seconds"])
    return {
        "off_ms": off * 1000,
        "on_ms": on * 1000,
        "overhead_ratio": on / off,
    }


def measure_wal_overhead(config):
    """Wall-clock cost of ``durability="wal"`` on the update path.

    Two identical databases (one SSF-indexed set class, same objects) run
    the same update sweep; the WAL-mode one appends and fsyncs one logical
    record per update before touching any page. The ratio is the price of
    crash recoverability — dominated by the fsync, so expect it to track
    the host's disk, not the simulator.
    """
    import tempfile

    from repro.objects.database import Database
    from repro.objects.oid import OID as ObjOID
    from repro.objects.schema import ClassSchema

    num_objects = min(512, config["num_objects"])
    gen = SetWorkloadGenerator(
        WorkloadSpec(
            num_objects=num_objects * 2,
            domain_cardinality=config["domain_cardinality"],
            target_cardinality=config["target_cardinality"],
            seed=config["target_seed"],
        )
    )
    sets = list(gen.target_sets())
    initial, replacement = sets[:num_objects], sets[num_objects:]

    def build_db(wal_dir=None):
        db = Database(
            page_size=config["page_size"], pool_capacity=0, wal_dir=wal_dir
        )
        db.define_class(ClassSchema.build("Item", items="set"))
        db.create_ssf_index(
            "Item",
            "items",
            signature_bits=config["signature_bits"],
            bits_per_element=config["bits_per_element"],
            seed=config["target_seed"],
        )
        for elements in initial:
            db.insert("Item", {"items": set(elements)})
        return db

    def update_sweep(db, flip):
        source = replacement if flip[0] else initial
        flip[0] = not flip[0]
        for i, elements in enumerate(source):
            db.update(ObjOID(1, i), {"items": set(elements)})

    timings = {}
    with tempfile.TemporaryDirectory() as wal_dir:
        for label, db in (
            ("off", build_db()),
            ("on", build_db(wal_dir=wal_dir)),
        ):
            flip = [True]
            timings[label] = best_sweep_time(
                lambda: update_sweep(db, flip), config["min_seconds"]
            )
            db.close()
    return {
        "off_ms": timings["off"] * 1000,
        "on_ms": timings["on"] * 1000,
        "overhead_ratio": timings["on"] / timings["off"],
        "updates_per_sweep": float(num_objects),
    }


def measure_lsm(config):
    """Update-sweep throughput of the LSM write path vs in-place facilities.

    Three identical databases run the same update sweep as
    :func:`measure_wal_overhead`:

    * in-place SSF under ``durability="wal"`` (per-record fsync) — the
      pre-LSM baseline the ROADMAP measured at ~1.29x;
    * LSM SSF under ``durability="lsm"`` — memtable absorbs the churn,
      the log group-commits fsyncs;
    * LSM SSF with no WAL at all — isolates what durability costs on top
      of the append-only write path.

    ``update_speedup`` (in-place-WAL time / LSM-WAL time) is a gated
    floor; ``wal_overhead_ratio`` (LSM-WAL / LSM-no-WAL) is a gated
    ceiling — the whole point of the memtable is that crash safety stops
    taxing the update path.
    """
    import tempfile

    from repro.objects.database import Database
    from repro.objects.oid import OID as ObjOID
    from repro.objects.schema import ClassSchema

    num_objects = min(512, config["num_objects"])
    gen = SetWorkloadGenerator(
        WorkloadSpec(
            num_objects=num_objects * 2,
            domain_cardinality=config["domain_cardinality"],
            target_cardinality=config["target_cardinality"],
            seed=config["target_seed"],
        )
    )
    sets = list(gen.target_sets())
    initial, replacement = sets[:num_objects], sets[num_objects:]

    def build_db(wal_dir=None, lsm=False):
        kwargs = dict(page_size=config["page_size"], pool_capacity=0)
        if wal_dir is not None:
            kwargs.update(wal_dir=wal_dir, durability="lsm" if lsm else "wal")
        db = Database(**kwargs)
        db.define_class(ClassSchema.build("Item", items="set"))
        db.create_ssf_index(
            "Item",
            "items",
            signature_bits=config["signature_bits"],
            bits_per_element=config["bits_per_element"],
            seed=config["target_seed"],
            lsm=lsm,
        )
        for elements in initial:
            db.insert("Item", {"items": set(elements)})
        return db

    def update_sweep(db, flip):
        source = replacement if flip[0] else initial
        flip[0] = not flip[0]
        for i, elements in enumerate(source):
            db.update(ObjOID(1, i), {"items": set(elements)})

    # The gated ratio compares two fast sweeps whose difference is a few
    # microseconds per update, and fsync latency on a shared device is
    # weather, not signal. So: interleave the three sweeps round-robin
    # (the same weather lands on every variant), compute each gated ratio
    # *within* a round, and take the median across rounds — one stormy
    # stretch inflates a minority of rounds, not the verdict. Each sweep
    # spans multiple group-commit fsyncs, averaging the heavy-tailed
    # per-fsync latency inside every round.
    import statistics

    min_seconds = max(config["min_seconds"], 1.0)
    with tempfile.TemporaryDirectory() as wal_a, \
            tempfile.TemporaryDirectory() as wal_b:
        dbs = {
            "inplace_wal": build_db(wal_dir=wal_a),
            "lsm_wal": build_db(wal_dir=wal_b, lsm=True),
            "lsm_nowal": build_db(lsm=True),
        }
        flips = {label: [True] for label in dbs}
        best = {label: float("inf") for label in dbs}
        for label, db in dbs.items():  # warm-up round
            update_sweep(db, flips[label])
        speedups, overheads = [], []
        elapsed = 0.0
        while elapsed < min_seconds * len(dbs) or len(speedups) < 7:
            round_times = {}
            for label, db in dbs.items():
                t0 = time.perf_counter()
                update_sweep(db, flips[label])
                dt = time.perf_counter() - t0
                round_times[label] = dt
                best[label] = min(best[label], dt)
                elapsed += dt
            speedups.append(
                round_times["inplace_wal"] / round_times["lsm_wal"]
            )
            overheads.append(
                round_times["lsm_wal"] / round_times["lsm_nowal"]
            )
        for db in dbs.values():
            db.close()
    return {
        "inplace_wal_ms": best["inplace_wal"] * 1000,
        "lsm_wal_ms": best["lsm_wal"] * 1000,
        "lsm_nowal_ms": best["lsm_nowal"] * 1000,
        "update_speedup": statistics.median(speedups),
        "wal_overhead_ratio": statistics.median(overheads),
        "rounds": float(len(speedups)),
        "updates_per_sweep": float(num_objects),
    }


def measure_concurrent_speedup(config, workers):
    """Concurrent read throughput: one batch served by N workers vs one.

    The simulator's CPU work is GIL-bound, so honest thread-level speedup
    must come from overlappable waiting. The store's simulated per-page
    read latency supplies it: with ``pool_capacity=0`` every object fetch
    in drop resolution is a device read, and the latency sleep happens
    outside every lock — sequential serving pays the sleeps back-to-back,
    a worker pool overlaps them exactly the way a multi-threaded server
    overlaps real disk requests. Same queries, same results, bit-identical
    page counts; only the wall clock differs.
    """
    from repro.objects.database import Database
    from repro.objects.schema import ClassSchema
    from repro.query.executor import QueryExecutor
    from repro.server import QueryService

    num_objects = config["concurrent_objects"]
    gen = SetWorkloadGenerator(
        WorkloadSpec(
            num_objects=num_objects,
            domain_cardinality=config["domain_cardinality"],
            target_cardinality=config["target_cardinality"],
            seed=config["target_seed"],
        )
    )
    db = Database(page_size=config["page_size"], pool_capacity=0)
    db.define_class(ClassSchema.build("Item", items="set"))
    db.create_ssf_index(
        "Item",
        "items",
        signature_bits=config["signature_bits"],
        bits_per_element=config["bits_per_element"],
        seed=config["target_seed"],
    )
    for elements in gen.target_sets():
        db.insert("Item", {"items": set(elements)})

    qgen = SetWorkloadGenerator(
        WorkloadSpec(
            num_objects=0,
            domain_cardinality=config["domain_cardinality"],
            target_cardinality=config["target_cardinality"],
            seed=config["query_seed"],
        )
    )
    # Overlap queries surface many candidates (any shared element drops),
    # so drop resolution dominates with one device read — one latency
    # sleep — per candidate object page.
    texts = [
        "select Item where items overlaps ({})".format(
            ", ".join(str(e) for e in sorted(qgen.random_query_set(8)))
        )
        for _ in range(config["concurrent_queries"])
    ]

    db.storage.store.read_latency_seconds = config["device_read_latency_s"]
    try:
        executor = QueryExecutor(db)

        def sequential():
            return [executor.execute_text(text) for text in texts]

        sequential_s = best_sweep_time(sequential, config["min_seconds"])
        with QueryService(
            db, max_workers=workers, queue_depth=len(texts)
        ) as service:
            concurrent_s = best_sweep_time(
                lambda: service.execute_many(texts), config["min_seconds"]
            )
    finally:
        db.storage.store.read_latency_seconds = 0.0
    return {
        "workers": float(workers),
        "queries": float(len(texts)),
        "sequential_ms": sequential_s * 1000,
        "concurrent_ms": concurrent_s * 1000,
        "concurrent_speedup": sequential_s / concurrent_s,
    }


def measure_sharded_speedup(config, num_shards):
    """Scatter-gather throughput: a ShardRouter over N shards vs one db.

    Same honesty rules as the concurrent sweep: the speedup comes from
    overlappable simulated device-read latency, not from GIL-bound CPU
    work. Hash-partitioning splits each query's candidate fetches across
    the shards, so the router's fan-out overlaps the per-shard latency
    sleeps while the unsharded sequential loop pays them back-to-back.
    Results stay bit-identical (disjoint hash slices merge exactly); only
    the wall clock differs.
    """
    from repro.objects.database import Database
    from repro.objects.schema import ClassSchema
    from repro.query.executor import QueryExecutor
    from repro.serving import make_service
    from repro.sharding import partition_database

    num_objects = config["concurrent_objects"]
    gen = SetWorkloadGenerator(
        WorkloadSpec(
            num_objects=num_objects,
            domain_cardinality=config["domain_cardinality"],
            target_cardinality=config["target_cardinality"],
            seed=config["target_seed"],
        )
    )
    db = Database(page_size=config["page_size"], pool_capacity=0)
    db.define_class(ClassSchema.build("Item", items="set"))
    db.create_ssf_index(
        "Item",
        "items",
        signature_bits=config["signature_bits"],
        bits_per_element=config["bits_per_element"],
        seed=config["target_seed"],
    )
    for elements in gen.target_sets():
        db.insert("Item", {"items": set(elements)})

    qgen = SetWorkloadGenerator(
        WorkloadSpec(
            num_objects=0,
            domain_cardinality=config["domain_cardinality"],
            target_cardinality=config["target_cardinality"],
            seed=config["query_seed"],
        )
    )
    texts = [
        "select Item where items overlaps ({})".format(
            ", ".join(str(e) for e in sorted(qgen.random_query_set(8)))
        )
        for _ in range(config["concurrent_queries"])
    ]

    shards = partition_database(db, num_shards)
    db.storage.store.read_latency_seconds = config["device_read_latency_s"]
    for shard in shards:
        shard.storage.store.read_latency_seconds = (
            config["device_read_latency_s"]
        )
    try:
        executor = QueryExecutor(db)

        def sequential():
            return [executor.execute_text(text) for text in texts]

        sequential_s = best_sweep_time(sequential, config["min_seconds"])
        router = make_service(shards, "serial")
        try:
            sharded_s = best_sweep_time(
                lambda: [router.execute(text) for text in texts],
                config["min_seconds"],
            )
        finally:
            router.close()
    finally:
        db.storage.store.read_latency_seconds = 0.0
        for shard in shards:
            shard.storage.store.read_latency_seconds = 0.0
    return {
        "shards": float(num_shards),
        "queries": float(len(texts)),
        "sequential_ms": sequential_s * 1000,
        "sharded_ms": sharded_s * 1000,
        "sharded_speedup": sequential_s / sharded_s,
    }


def measure_bulk_loads(config):
    """Best-of-reps bulk-load timings, naive vs kernels, both facilities.

    Each rep builds a fresh facility over fresh storage (bulk load is
    build-from-empty by definition); ``best_sweep_time`` repeats until the
    per-combination time budget is spent, so the reported speedup is not a
    single-shot measurement racing the page cache and the allocator.
    """
    gen = SetWorkloadGenerator(
        WorkloadSpec(
            num_objects=config["num_objects"],
            domain_cardinality=config["domain_cardinality"],
            target_cardinality=config["target_cardinality"],
            seed=config["target_seed"],
        )
    )
    pairs = [(s, OID(1, i)) for i, s in enumerate(gen.target_sets())]
    classes = {
        "ssf_bulk_load": SequentialSignatureFile,
        "bssf_bulk_load": BitSlicedSignatureFile,
    }
    results = {}
    for name, facility_class in classes.items():
        timings = {}
        for label, use_kernels in (("naive", False), ("kernels", True)):

            def load_once():
                manager = StorageManager(
                    page_size=config["page_size"], pool_capacity=0
                )
                scheme = SignatureScheme(
                    config["signature_bits"],
                    config["bits_per_element"],
                    seed=config["target_seed"],
                )
                facility_class(
                    manager, scheme, use_kernels=use_kernels
                ).bulk_load(pairs)

            timings[label] = best_sweep_time(
                load_once, config["min_seconds"] / 2
            )
        results[name] = {
            "naive_ms": timings["naive"] * 1000,
            "kernels_ms": timings["kernels"] * 1000,
            "speedup": timings["naive"] / timings["kernels"],
        }
    return results


def serving_fixture(config):
    """A BSSF-indexed database plus a deterministic query batch.

    One class, one facility, zero device latency: the workload the batched
    and process-pool sweeps share. Single-facility on purpose — every
    select drives the same index, so the batch path's same-facility
    grouping covers the whole batch.
    """
    from repro.objects.database import Database
    from repro.objects.schema import ClassSchema

    db = Database(page_size=config["page_size"], pool_capacity=0)
    db.define_class(ClassSchema.build("Item", items="set"))
    db.create_bssf_index(
        "Item",
        "items",
        signature_bits=config["signature_bits"],
        bits_per_element=config["bits_per_element"],
        seed=config["target_seed"],
    )
    gen = SetWorkloadGenerator(
        WorkloadSpec(
            num_objects=config["serving_objects"],
            domain_cardinality=config["domain_cardinality"],
            target_cardinality=config["target_cardinality"],
            seed=config["target_seed"],
        )
    )
    for elements in gen.target_sets():
        db.insert("Item", {"items": set(elements)})

    qgen = SetWorkloadGenerator(
        WorkloadSpec(
            num_objects=0,
            domain_cardinality=config["domain_cardinality"],
            target_cardinality=config["target_cardinality"],
            seed=config["query_seed"],
        )
    )
    texts = []
    shapes = [("has-subset", 4), ("overlaps", 4), ("in-subset", 30)]
    for i in range(config["serving_queries"]):
        op, dq = shapes[i % len(shapes)]
        elements = ", ".join(str(e) for e in sorted(qgen.random_query_set(dq)))
        texts.append(f"select Item where items {op} ({elements})")
    return db, texts


def _result_fingerprints(results):
    return [
        (
            [oid for oid, _ in r.rows],
            r.statistics.candidates,
            sorted(
                (name, counts.logical_total)
                for name, counts in r.statistics.io.files()
                if counts.logical_total
            ),
        )
        for r in results
    ]


def measure_batched_speedup(config, batch_size):
    """``execute_many`` with a batch size vs ``execute_text`` in a loop.

    Same database, same queries, zero device latency: the delta is pure
    per-query overhead — eager snapshots, per-query decode-cache walks and
    Python dispatch that the batch path amortizes over each same-facility
    group. Results and per-file page counts are asserted identical before
    anything is timed.
    """
    from repro.query.executor import QueryExecutor
    from repro.query.options import ExecutionOptions

    db, texts = serving_fixture(config)
    executor = QueryExecutor(db)
    options = ExecutionOptions(batch_size=batch_size)

    def sequential():
        return [executor.execute_text(text) for text in texts]

    def batched():
        return executor.execute_many(texts, options)

    if _result_fingerprints(sequential()) != _result_fingerprints(batched()):
        raise AssertionError("batched execution diverged from sequential")
    sequential_s = best_sweep_time(sequential, config["min_seconds"])
    batched_s = best_sweep_time(batched, config["min_seconds"])
    return {
        "batch_size": float(batch_size),
        "queries": float(len(texts)),
        "sequential_ms": sequential_s * 1000,
        "batched_ms": batched_s * 1000,
        "batched_speedup": sequential_s / batched_s,
    }


def measure_process_speedup(config, workers, batch_size):
    """A persistent process pool vs the sequential loop, CPU-bound.

    No simulated latency anywhere: this is the GIL-bound regime where the
    thread pool cannot win and worker processes can. The service (and its
    snapshot replica, loaded once per worker) persists across reps, as a
    long-lived server would; results are asserted identical to the
    sequential loop's before timing.
    """
    from repro.query.executor import QueryExecutor
    from repro.server import ProcessQueryService

    db, texts = serving_fixture(config)
    executor = QueryExecutor(db)

    def sequential():
        return [executor.execute_text(text) for text in texts]

    sequential_results = sequential()
    with ProcessQueryService(
        db, max_workers=workers, batch_size=batch_size
    ) as service:
        if _result_fingerprints(sequential_results) != _result_fingerprints(
            service.execute_many(texts)
        ):
            raise AssertionError("process-pool execution diverged")
        sequential_s = best_sweep_time(sequential, config["min_seconds"])
        process_s = best_sweep_time(
            lambda: service.execute_many(texts), config["min_seconds"]
        )
    return {
        "workers": float(workers),
        "queries": float(len(texts)),
        "sequential_ms": sequential_s * 1000,
        "process_ms": process_s * 1000,
        "process_speedup": sequential_s / process_s,
    }


def run_benchmarks(config):
    facilities = {}
    managers = {}
    for use_kernels in (False, True):
        label = "kernels" if use_kernels else "naive"
        ssf, bssf, manager, times = build(config, use_kernels)
        facilities[label] = (ssf, bssf)
        managers[label] = manager

    subset_queries = queries_for(config, "subset_dq")
    scan_queries = queries_for(config, "scan_dq")

    def bssf_subset(bssf):
        return [bssf.search_subset(q) for q in subset_queries]

    def ssf_scan(ssf):
        out = []
        for q in scan_queries:
            out.append(ssf.search_superset(q))
            out.append(ssf.search_subset(q))
            out.append(ssf.search_overlap(q))
        return out

    # Both paths must agree before timing means anything.
    for runner, index in ((bssf_subset, 1), (ssf_scan, 0)):
        naive_results = runner(facilities["naive"][index])
        fast_results = runner(facilities["kernels"][index])
        for a, b in zip(naive_results, fast_results):
            if a.candidates != b.candidates or a.detail != b.detail:
                raise AssertionError(
                    f"kernel/naive result divergence in {runner.__name__}"
                )

    results = {}
    for name, runner, index in (
        ("bssf_subset_sweep", bssf_subset, 1),
        ("ssf_scan_sweep", ssf_scan, 0),
    ):
        timings = {}
        for label in ("naive", "kernels"):
            facility = facilities[label][index]
            timings[label] = best_sweep_time(
                lambda: runner(facility), config["min_seconds"]
            )
        results[name] = {
            "naive_ms": timings["naive"] * 1000,
            "kernels_ms": timings["kernels"] * 1000,
            "speedup": timings["naive"] / timings["kernels"],
        }
    results.update(measure_bulk_loads(config))
    tracer_overhead = measure_tracer_overhead(
        config, facilities["kernels"][1], managers["kernels"]
    )
    wal_overhead = measure_wal_overhead(config)
    return results, tracer_overhead, wal_overhead


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast configuration for CI sanity checks",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSON path (default: BENCH_wallclock.json at repo root; "
        "BENCH_wallclock_smoke.json with --smoke)",
    )
    parser.add_argument(
        "--min-bssf-speedup",
        type=float,
        default=None,
        help="override the BSSF subset sweep speedup floor",
    )
    parser.add_argument(
        "--min-ssf-speedup",
        type=float,
        default=None,
        help="override the SSF scan sweep speedup floor",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="dump the full JSON report to stdout instead of the table",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=8,
        help="worker-pool width for the concurrent serving sweep (default 8)",
    )
    parser.add_argument(
        "--min-concurrent-speedup",
        type=float,
        default=None,
        help="override the concurrent serving speedup floor",
    )
    parser.add_argument(
        "--concurrent-only",
        action="store_true",
        help="run only the concurrent serving sweep (fast CI smoke)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="batch size for the batched execute_many sweep "
        "(default: the mode's config value)",
    )
    parser.add_argument(
        "--process-workers",
        type=int,
        default=4,
        help="worker processes for the process-pool sweep (default 4)",
    )
    parser.add_argument(
        "--min-batched-speedup",
        type=float,
        default=None,
        help="override the batched execute_many speedup floor",
    )
    parser.add_argument(
        "--min-process-speedup",
        type=float,
        default=None,
        help="override the process-pool speedup floor",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        help="shard count for the scatter-gather sweep (default 4)",
    )
    parser.add_argument(
        "--min-sharded-speedup",
        type=float,
        default=None,
        help="override the sharded scatter-gather speedup floor",
    )
    parser.add_argument(
        "--min-lsm-update-speedup",
        type=float,
        default=None,
        help="override the LSM-vs-in-place update sweep speedup floor",
    )
    parser.add_argument(
        "--max-lsm-wal-overhead",
        type=float,
        default=None,
        help="override the WAL-under-LSM overhead-ratio ceiling",
    )
    parser.add_argument(
        "--max-tracer-overhead",
        type=float,
        default=None,
        help="override the active-tracer overhead-ratio ceiling",
    )
    args = parser.parse_args(argv)

    config = dict(SMOKE if args.smoke else FULL)
    thresholds = dict(SMOKE_THRESHOLDS if args.smoke else FULL_THRESHOLDS)
    for key, override in (
        ("bssf_subset_sweep", args.min_bssf_speedup),
        ("ssf_scan_sweep", args.min_ssf_speedup),
        ("concurrent", args.min_concurrent_speedup),
        ("batched", args.min_batched_speedup),
        ("process", args.min_process_speedup),
        ("sharded", args.min_sharded_speedup),
        ("lsm_update", args.min_lsm_update_speedup),
        ("lsm_wal_overhead", args.max_lsm_wal_overhead),
        ("tracer_overhead", args.max_tracer_overhead),
    ):
        if override is not None:
            thresholds[key] = override
    batch_size = args.batch_size or config["batch_size"]
    out_path = args.out
    if out_path is None:
        name = "BENCH_wallclock_smoke.json" if args.smoke else "BENCH_wallclock.json"
        out_path = REPO_ROOT / name

    if args.concurrent_only:
        results, tracer_overhead, wal_overhead = {}, {}, {}
        batched, process, sharded, lsm = {}, {}, {}, {}
    else:
        results, tracer_overhead, wal_overhead = run_benchmarks(config)
        batched = measure_batched_speedup(config, batch_size)
        process = measure_process_speedup(
            config, args.process_workers, batch_size
        )
        sharded = measure_sharded_speedup(config, args.shards)
        lsm = measure_lsm(config)
    concurrency = measure_concurrent_speedup(config, args.workers)

    failures = [
        f"{name}: speedup {results[name]['speedup']:.2f}x "
        f"< required {thresholds[name]:.2f}x"
        for name in sorted(results)
        if name in thresholds and results[name]["speedup"] < thresholds[name]
    ]
    for name, section, key in (
        ("concurrent", concurrency, "concurrent_speedup"),
        ("batched", batched, "batched_speedup"),
        ("process", process, "process_speedup"),
        ("sharded", sharded, "sharded_speedup"),
        ("lsm_update", lsm, "update_speedup"),
    ):
        if section and section[key] < thresholds[name]:
            failures.append(
                f"{name}: speedup {section[key]:.2f}x "
                f"< required {thresholds[name]:.2f}x"
            )
    if lsm and lsm["wal_overhead_ratio"] > thresholds["lsm_wal_overhead"]:
        failures.append(
            f"lsm_wal_overhead: ratio {lsm['wal_overhead_ratio']:.3f}x "
            f"> allowed {thresholds['lsm_wal_overhead']:.3f}x"
        )
    if (
        tracer_overhead
        and tracer_overhead["overhead_ratio"] > thresholds["tracer_overhead"]
    ):
        failures.append(
            f"tracer_overhead: ratio {tracer_overhead['overhead_ratio']:.3f}x "
            f"> allowed {thresholds['tracer_overhead']:.3f}x"
        )

    report = {
        "mode": "smoke" if args.smoke else "full",
        "config": config,
        "results": {
            name: {k: round(v, 3) for k, v in metrics.items()}
            for name, metrics in results.items()
        },
        "tracer_overhead": {
            k: round(v, 3) for k, v in tracer_overhead.items()
        },
        "wal_overhead": {
            k: round(v, 3) for k, v in wal_overhead.items()
        },
        "concurrency": {k: round(v, 3) for k, v in concurrency.items()},
        "batched": {k: round(v, 3) for k, v in batched.items()},
        "process": {k: round(v, 3) for k, v in process.items()},
        "sharded": {k: round(v, 3) for k, v in sharded.items()},
        "lsm": {k: round(v, 3) for k, v in lsm.items()},
        "thresholds": thresholds,
        "pass": not failures,
    }
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for name, metrics in report["results"].items():
            print(
                f"{name:20s} naive {metrics['naive_ms']:9.2f} ms   "
                f"kernels {metrics['kernels_ms']:9.2f} ms   "
                f"speedup {metrics['speedup']:6.2f}x"
            )
        if tracer_overhead:
            overhead = report["tracer_overhead"]
            print(
                f"{'tracer (bssf subset)':20s} off   {overhead['off_ms']:9.2f} ms   "
                f"on      {overhead['on_ms']:9.2f} ms   "
                f"ratio   {overhead['overhead_ratio']:6.2f}x"
            )
        if wal_overhead:
            wal = report["wal_overhead"]
            print(
                f"{'wal (update sweep)':20s} off   {wal['off_ms']:9.2f} ms   "
                f"on      {wal['on_ms']:9.2f} ms   "
                f"ratio   {wal['overhead_ratio']:6.2f}x"
            )
        if batched:
            bat = report["batched"]
            print(
                f"{'batched execute_many':20s} 1-at-a-time {bat['sequential_ms']:7.2f} ms   "
                f"batch={int(bat['batch_size'])} {bat['batched_ms']:9.2f} ms   "
                f"speedup {bat['batched_speedup']:6.2f}x"
            )
        if process:
            proc = report["process"]
            print(
                f"{'process pool':20s} 1 proc {proc['sequential_ms']:8.2f} ms   "
                f"{int(proc['workers'])} proc {proc['process_ms']:9.2f} ms   "
                f"speedup {proc['process_speedup']:6.2f}x"
            )
        if sharded:
            shd = report["sharded"]
            print(
                f"{'sharded router':20s} 1 db   {shd['sequential_ms']:8.2f} ms   "
                f"{int(shd['shards'])} shards {shd['sharded_ms']:7.2f} ms   "
                f"speedup {shd['sharded_speedup']:6.2f}x"
            )
        if lsm:
            l = report["lsm"]
            print(
                f"{'lsm update sweep':20s} inplace {l['inplace_wal_ms']:7.2f} ms   "
                f"lsm     {l['lsm_wal_ms']:9.2f} ms   "
                f"speedup {l['update_speedup']:6.2f}x "
                f"(wal ratio {l['wal_overhead_ratio']:.2f}x)"
            )
        conc = report["concurrency"]
        print(
            f"{'concurrent serving':20s} 1 thr {conc['sequential_ms']:9.2f} ms   "
            f"{int(conc['workers'])} thr  {conc['concurrent_ms']:9.2f} ms   "
            f"speedup {conc['concurrent_speedup']:6.2f}x"
        )
        print(f"wrote {out_path}")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
