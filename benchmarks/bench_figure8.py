"""Regenerate the paper's Figure 8 (analytical, Section 5)."""

from repro.experiments import figures


def test_figure8(benchmark, record):
    result = benchmark(figures.figure8)
    record(result)
