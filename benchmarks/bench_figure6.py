"""Regenerate the paper's Figure 6 (analytical, Section 5)."""

from repro.experiments import figures


def test_figure6(benchmark, record):
    result = benchmark(figures.figure6)
    record(result)
