"""Regenerate the paper's Figure 4 (analytical, Section 5)."""

from repro.experiments import figures


def test_figure4(benchmark, record):
    result = benchmark(figures.figure4)
    record(result)
