"""Ablation: domain skew (beyond the paper's uniform-domain assumption)."""

from repro.experiments.skew import skew_ablation


def test_ablation_skew(benchmark, record):
    result = benchmark.pedantic(skew_ablation, rounds=1, iterations=1)
    record(result)
    by_exponent = {row[0]: row for row in result.rows}
    # BSSF storage must be identical across exponents (skew-oblivious)
    bssf_pages = {row[4] for row in result.rows}
    assert len(bssf_pages) == 1
    # NIX max posting grows with skew until the build fails outright
    assert by_exponent[0.4][1] > by_exponent[0.0][1]
    assert by_exponent[0.8][1] == "BUILD FAILS"


def test_ablation_skew_with_chains(record):
    """Overflow chains survive the skew the paper's layout cannot."""
    result = skew_ablation(overflow_chains=True)
    record(result)
    by_exponent = {row[0]: row for row in result.rows}
    # no build failure at any exponent, and the hot posting is huge
    assert all(isinstance(row[1], int) for row in result.rows)
    assert by_exponent[0.8][1] > 500
