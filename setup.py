"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so that
environments without the `wheel` package (where PEP 660 editable installs
fail with `invalid command 'bdist_wheel'`) can still do
``python setup.py develop`` / legacy ``pip install -e .``.
"""

from setuptools import setup

setup()
