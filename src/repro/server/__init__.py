"""Concurrent query serving on top of the executor.

:class:`QueryService` wraps one :class:`~repro.query.executor.QueryExecutor`
in a worker pool with bounded admission, turning the single-query API into
a serving surface: ``submit`` for futures, ``execute`` for one blocking
query, ``execute_many`` for an ordered batch. See ``docs/CONCURRENCY.md``
for the latch hierarchy the service relies on.

:class:`ProcessQueryService` is the CPU-bound counterpart: worker
*processes* over a read-only snapshot replica, for workloads where
matching arithmetic (not simulated device latency) dominates.

:class:`TcpQueryServer` is the network edge: the :mod:`repro.wire`
protocol over TCP, backed by a :class:`QueryService`, with auth, per-tenant
quotas, and graceful drain (see ``docs/SERVING.md``). All three — plus the
:class:`~repro.client.RemoteClient` on the other end of the wire — satisfy
the :class:`~repro.serving.QueryBackend` protocol.
"""

from repro.server.net import TcpQueryServer
from repro.server.process import ProcessQueryService
from repro.server.service import QueryService

__all__ = ["ProcessQueryService", "QueryService", "TcpQueryServer"]
