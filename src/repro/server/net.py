"""TCP serving edge: :class:`TcpQueryServer` over a :class:`QueryService`.

The in-process :class:`~repro.server.service.QueryService` proved queries
correct under concurrency; this module gives it a network edge. One
listener thread accepts connections; each connection gets a handler thread
that reads frames (see :mod:`repro.wire`), runs queries through the shared
service, and writes responses. Concurrency and overload control stay where
they already live — the service's worker pool and bounded admission — so a
saturated server sheds with a protocol-level ``admission`` error frame
instead of dropping connections.

Edge policies handled here:

* **Handshake** — the first frame must be ``HELLO`` carrying the protocol
  version and, when the server was given ``auth_tokens``, a valid token;
  the token names the connection's *tenant*.
* **Per-tenant quotas** — ``tenant_quotas`` caps each tenant's in-flight
  queries; a breach sheds that request with a ``tenant-quota`` error
  *before* it consumes a service admission slot.
* **Read timeouts** — a connection idle longer than
  ``read_timeout_seconds`` is closed (frees handler threads from dead
  peers).
* **Graceful shutdown** — :meth:`stop` with ``drain=True`` stops
  accepting, lets every in-flight request finish and deliver its
  response, sends ``BYE``, then closes.
* **Error discipline** — a malformed or oversized *incoming* frame earns
  a typed error frame (``frame-too-large`` for oversized) and a close
  (the stream cannot be resynced past unread bytes); an oversized
  *response* is caught before any byte hits the socket, so it round-trips
  as a structured ``frame-too-large`` error and the connection survives;
  a well-formed request that fails keeps the connection: the error
  round-trips as a structured frame and the client re-raises the same
  exception class (:mod:`repro.errors` codes).
* **Replication** — when the served database is a WAL-mode primary, a
  ``WAL_SUBSCRIBE`` frame turns the connection into a log-shipping
  stream: a sender thread pushes ``WAL_RECORDS`` batches from the
  subscriber's watermark (``HEARTBEAT`` frames when idle) while the
  handler keeps reading ``WAL_ACK`` lag reports. ``SYNC`` answers merkle
  anti-entropy for replicas a checkpoint truncation left behind. See
  :mod:`repro.replication`.

Traffic feeds ``server.net.*`` metrics: connection / request counters,
auth and quota rejections, protocol errors, and client disconnects;
shipping feeds ``replication.*``.
"""

from __future__ import annotations

import contextlib
import socket
import threading
import time
from typing import Any, Dict, Mapping, Optional, Tuple

from repro import wire
from repro.errors import (
    AuthenticationError,
    ConfigurationError,
    ConnectionLostError,
    DeadlineExceededError,
    FrameTooLargeError,
    ProtocolError,
    ReplicationError,
    ReproError,
    StaleSubscriberError,
    TenantQuotaError,
)
from repro.obs.metrics import REGISTRY
from repro.query.options import ExecutionOptions
from repro.server.service import QueryService

__all__ = ["TcpQueryServer"]


class _Connection:
    """Per-connection bookkeeping: socket, identity, and a request lock.

    The handler holds ``lock`` while processing one request (execute +
    respond); a draining shutdown acquires it to guarantee the in-flight
    response is fully written before the socket is torn down.

    ``lock`` also serializes the socket between the handler and a
    replication sender thread, so response and stream frames never
    interleave mid-frame. ``closed`` tells the sender the handler is done.
    """

    __slots__ = ("sock", "tenant", "lock", "closed", "streamer", "cursor", "cursor_id")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.tenant: Optional[str] = None
        self.lock = threading.Lock()
        self.closed = threading.Event()
        self.streamer: Optional[threading.Thread] = None
        self.cursor = None
        self.cursor_id: Optional[int] = None


class TcpQueryServer:
    """Serve the wire protocol over TCP, backed by one `QueryService`.

    ``database`` / ``service``
        Pass a :class:`~repro.objects.database.Database` (the server builds
        and owns a :class:`QueryService` with ``max_workers`` /
        ``queue_depth``) or an existing service (shared; not shut down with
        the server). Exactly one of the two.
    ``host`` / ``port``
        Bind address. ``port=0`` picks a free port; read the bound address
        from :attr:`address` after :meth:`start`.
    ``auth_tokens``
        ``{token: tenant_name}``. When set, every connection must present
        a known token in its ``HELLO``; when ``None``, auth is off and all
        connections share the anonymous tenant.
    ``tenant_quotas``
        ``{tenant_name: max_in_flight}`` — per-tenant admission caps,
        enforced at the edge before service admission.
    ``read_timeout_seconds``
        Per-connection socket timeout; an idle peer is disconnected.
    ``max_frame_bytes``
        Upper bound on a single frame in either direction.

    The server is a context manager: entering calls :meth:`start`, leaving
    calls :meth:`stop` (draining).
    """

    def __init__(
        self,
        database=None,
        *,
        service: Optional[QueryService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 4,
        queue_depth: Optional[int] = None,
        auth_tokens: Optional[Mapping[str, str]] = None,
        tenant_quotas: Optional[Mapping[str, int]] = None,
        read_timeout_seconds: float = 30.0,
        max_frame_bytes: int = wire.DEFAULT_MAX_FRAME_BYTES,
        heartbeat_seconds: float = 1.0,
        shard_info: Optional[Mapping[str, Any]] = None,
    ):
        if (database is None) == (service is None):
            raise ConfigurationError(
                "TcpQueryServer needs a database or a service (not both)"
            )
        if read_timeout_seconds <= 0:
            raise ConfigurationError(
                f"read_timeout_seconds must be positive, got {read_timeout_seconds}"
            )
        if heartbeat_seconds <= 0:
            raise ConfigurationError(
                f"heartbeat_seconds must be positive, got {heartbeat_seconds}"
            )
        self._owns_service = service is None
        self.service = service or QueryService(
            database, max_workers=max_workers, queue_depth=queue_depth
        )
        self.host = host
        self.port = port
        self.auth_tokens = dict(auth_tokens) if auth_tokens is not None else None
        self.tenant_quotas = dict(tenant_quotas or {})
        self.read_timeout_seconds = read_timeout_seconds
        self.max_frame_bytes = max_frame_bytes
        self.heartbeat_seconds = heartbeat_seconds
        #: ``{"index": k, "count": n}`` when this server holds shard k of
        #: an n-way partitioning (``sigfile-repro serve --shard-of k/n``);
        #: piggybacked on every PONG so clients can discover the topology.
        self.shard_info = dict(shard_info) if shard_info is not None else None
        self._replication = None
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: Dict[_Connection, threading.Thread] = {}
        self._state_lock = threading.Lock()
        self._stopping = threading.Event()
        self._started = False
        self._tenant_inflight: Dict[str, int] = {}
        self._m_connections = REGISTRY.counter("server.net.connections")
        self._m_requests = REGISTRY.counter("server.net.requests")
        self._m_auth_failures = REGISTRY.counter("server.net.auth_failures")
        self._m_quota_rejections = REGISTRY.counter("server.net.quota_rejections")
        self._m_protocol_errors = REGISTRY.counter("server.net.protocol_errors")
        self._m_disconnects = REGISTRY.counter("server.net.disconnects")
        self._m_drain_timeouts = REGISTRY.counter("server.net.drain_timeouts")
        self._m_deadline_rejections = REGISTRY.counter(
            "server.net.deadline_rejections"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TcpQueryServer":
        """Bind, listen, and start accepting in a background thread."""
        if self._started:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        # A blocking accept() is not reliably interrupted by close() on
        # another thread; a short timeout turns stop() into a bounded wait.
        listener.settimeout(0.2)
        self.host, self.port = listener.getsockname()[:2]
        self._listener = listener
        self._started = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="tcp-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (final port only after `start`)."""
        return (self.host, self.port)

    @property
    def url(self) -> str:
        """The ``sigfile://`` URL clients connect to."""
        return f"sigfile://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """`start` and block until :meth:`stop` is called."""
        self.start()
        assert self._accept_thread is not None
        while self._accept_thread.is_alive():
            self._accept_thread.join(timeout=0.5)

    def stop(
        self,
        drain: bool = True,
        timeout: float = 30.0,
        drain_timeout: float = 10.0,
    ) -> None:
        """Stop accepting and close connections; idempotent.

        With ``drain=True`` every in-flight request finishes and its
        response is delivered (the per-connection lock guarantees the
        write completed) before the socket closes with a ``BYE``. The wait
        is bounded: a request still wedged after ``drain_timeout`` seconds
        (shared across all connections) is abandoned — its socket is torn
        down anyway and ``server.net.drain_timeouts`` counts the firing —
        so one stuck query can never hang shutdown. With ``drain=False``
        sockets are torn down immediately.
        """
        if not self._started or self._stopping.is_set():
            # Not started, or a previous stop already ran.
            if self._owns_service and not self._stopping.is_set():
                self._stopping.set()
                self.service.shutdown()
            return
        self._stopping.set()
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.close()
        with self._state_lock:
            connections = list(self._handlers.items())
        drain_deadline = time.monotonic() + max(0.0, drain_timeout)
        for connection, _thread in connections:
            if drain:
                # Waits for the in-flight request (if any) to finish and
                # flush its response, then wakes the blocked frame read.
                # One shared deadline bounds the whole drain pass.
                remaining = drain_deadline - time.monotonic()
                acquired = connection.lock.acquire(timeout=max(0.0, remaining))
                try:
                    if not acquired:
                        self._m_drain_timeouts.inc()
                    self._farewell(connection)
                finally:
                    if acquired:
                        connection.lock.release()
            else:
                self._farewell(connection)
        for _connection, thread in connections:
            thread.join(timeout=timeout)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)
        if self._owns_service:
            self.service.shutdown(wait=drain)

    def _farewell(self, connection: _Connection) -> None:
        """Best-effort BYE, then unblock the handler's pending read.

        ``SHUT_RDWR`` (not ``SHUT_RD``): only a full shutdown generates the
        poll event that wakes a handler blocked inside ``recv``. Queued
        outbound data — the BYE, a just-written response — is still
        delivered; shutdown is not close.
        """
        with contextlib.suppress(OSError, ProtocolError):
            wire.write_frame(connection.sock, wire.BYE, {}, self.max_frame_bytes)
        with contextlib.suppress(OSError):
            connection.sock.shutdown(socket.SHUT_RDWR)

    def __enter__(self) -> "TcpQueryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def __repr__(self) -> str:
        state = (
            "stopped"
            if self._stopping.is_set()
            else ("serving" if self._started else "idle")
        )
        return f"TcpQueryServer({self.host}:{self.port}, {state}, {self.service!r})"

    # ------------------------------------------------------------------
    # Accepting
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue  # periodic stop-flag check
            except OSError:
                break  # listener closed by stop()
            if self._stopping.is_set():
                with contextlib.suppress(OSError):
                    sock.close()
                break
            connection = _Connection(sock)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="tcp-conn",
                daemon=True,
            )
            with self._state_lock:
                self._handlers[connection] = thread
            self._m_connections.inc()
            thread.start()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _serve_connection(self, connection: _Connection) -> None:
        sock = connection.sock
        sock.settimeout(self.read_timeout_seconds)
        try:
            if not self._handshake(connection):
                return
            while not self._stopping.is_set():
                try:
                    frame = wire.read_frame(sock, self.max_frame_bytes)
                except ProtocolError as exc:
                    self._m_protocol_errors.inc()
                    self._send_error(connection, exc, request_id=None)
                    return
                except socket.timeout:
                    self._m_disconnects.inc()
                    return  # idle peer
                except (ConnectionLostError, ConnectionError, OSError):
                    self._m_disconnects.inc()
                    return
                if frame is None:
                    return  # orderly close between frames
                kind, payload = frame
                # A request that was already read is served even if a
                # draining stop() races in — drain means no accepted work
                # is dropped. The loop condition ends the connection after.
                with connection.lock:
                    if not self._dispatch(connection, kind, payload):
                        return
        except (ConnectionError, BrokenPipeError, OSError):
            # Peer vanished mid-response; nothing left to tell it.
            self._m_disconnects.inc()
        finally:
            connection.closed.set()
            with contextlib.suppress(OSError):
                sock.close()
            if connection.streamer is not None:
                connection.streamer.join(timeout=2.0)
            with self._state_lock:
                self._handlers.pop(connection, None)

    def _handshake(self, connection: _Connection) -> bool:
        """Require a HELLO; authenticate when tokens are configured."""
        try:
            frame = wire.read_frame(connection.sock, self.max_frame_bytes)
        except ProtocolError as exc:
            self._m_protocol_errors.inc()
            self._send_error(connection, exc, request_id=None)
            return False
        except (socket.timeout, ConnectionLostError, ConnectionError, OSError):
            self._m_disconnects.inc()
            return False
        if frame is None:
            return False
        kind, payload = frame
        if kind != wire.HELLO:
            self._m_protocol_errors.inc()
            self._send_error(
                connection,
                ProtocolError("first frame must be HELLO"),
                request_id=None,
            )
            return False
        if self.auth_tokens is not None:
            token = payload.get("token")
            tenant = self.auth_tokens.get(token) if token is not None else None
            if tenant is None:
                self._m_auth_failures.inc()
                self._send_error(
                    connection,
                    AuthenticationError("unknown or missing auth token"),
                    request_id=None,
                )
                return False
            connection.tenant = tenant
        from repro import __version__

        self._send(
            connection,
            wire.OK,
            {
                "protocol": wire.PROTOCOL_VERSION,
                "server": f"sigfile-repro/{__version__}",
                "tenant": connection.tenant,
            },
        )
        return True

    def _dispatch(
        self, connection: _Connection, kind: int, payload: Dict[str, Any]
    ) -> bool:
        """Serve one request frame; False ends the connection."""
        request_id = payload.get("id")
        if kind == wire.PING:
            self._send(
                connection, wire.PONG, {"id": request_id, **self._role_payload()}
            )
            return True
        if kind == wire.GOODBYE:
            self._send(connection, wire.BYE, {})
            return False
        if kind == wire.WAL_SUBSCRIBE:
            return self._handle_subscribe(connection, payload)
        if kind == wire.WAL_ACK:
            if connection.cursor is not None and self._replication is not None:
                self._replication.note_ack(
                    connection.cursor, int(payload.get("lsn", 0))
                )
            return True
        if kind == wire.SYNC:
            return self._handle_sync(connection, payload)
        if kind == wire.QUERY:
            self._m_requests.inc()
            try:
                result = self._execute(payload, connection.tenant)
            except Exception as exc:  # round-trips as a structured frame
                self._note_rejection(exc)
                self._send_error(connection, exc, request_id)
                return True
            self._respond(
                connection,
                wire.RESULT,
                {"id": request_id, **wire.encode_result(result)},
                request_id,
            )
            return True
        if kind == wire.BATCH:
            texts = payload.get("texts", [])
            self._m_requests.inc(len(texts) or 1)
            try:
                results = [
                    self._execute({**payload, "text": text}, connection.tenant)
                    for text in texts
                ]
            except Exception as exc:
                self._note_rejection(exc)
                self._send_error(connection, exc, request_id)
                return True
            self._respond(
                connection,
                wire.RESULTS,
                {
                    "id": request_id,
                    "results": [wire.encode_result(r) for r in results],
                },
                request_id,
            )
            return True
        # read_frame vetted the kind, so this is a *response* kind arriving
        # on the server — a confused client.
        self._m_protocol_errors.inc()
        self._send_error(
            connection,
            ProtocolError(f"unexpected frame kind {kind} from a client"),
            request_id,
        )
        return False

    def _note_rejection(self, exc: BaseException) -> None:
        if isinstance(exc, TenantQuotaError):
            self._m_quota_rejections.inc()

    def _execute(self, payload: Dict[str, Any], tenant: Optional[str]):
        text = payload.get("text")
        if not isinstance(text, str):
            raise ProtocolError("query frame is missing its text")
        options = ExecutionOptions.from_dict(payload.get("options"))
        if options.deadline_ms is not None and options.deadline_ms <= 0:
            # The client's budget was spent before the request got here;
            # reject at the edge instead of burning a worker on an answer
            # nobody is waiting for. (The service re-checks after queueing.)
            self._m_deadline_rejections.inc()
            raise DeadlineExceededError(
                f"request arrived with its deadline budget exhausted "
                f"({options.deadline_ms:.1f}ms remaining)"
            )
        # Server-local sanitization: a remote caller must not recurse into
        # another pool (or back out over the network), and span trees
        # cannot cross the wire. ``deadline_ms`` survives — the budget
        # keeps binding queue and execution time on this side too.
        options = options.evolve(
            max_workers=None,
            execution_mode=None,
            remote_url=None,
            trace=False,
            tracer=None,
        )
        with self._tenant_slot(tenant):
            return self.service.execute(text, options)

    @contextlib.contextmanager
    def _tenant_slot(self, tenant: Optional[str]):
        """Hold one of the tenant's in-flight slots, or shed."""
        quota = self.tenant_quotas.get(tenant) if tenant is not None else None
        if quota is None:
            yield
            return
        with self._state_lock:
            inflight = self._tenant_inflight.get(tenant, 0)
            if inflight >= quota:
                raise TenantQuotaError(
                    f"tenant {tenant!r} is at its quota of {quota} "
                    f"in-flight quer{'y' if quota == 1 else 'ies'}"
                )
            self._tenant_inflight[tenant] = inflight + 1
        try:
            yield
        finally:
            with self._state_lock:
                self._tenant_inflight[tenant] -= 1

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def replication_source(self):
        """This server's :class:`~repro.replication.primary
        .ReplicationSource`, created on first use; ``None`` unless the
        served database is a WAL-mode primary."""
        database = getattr(self.service, "database", None)
        if database is None or getattr(database, "wal", None) is None:
            return None
        if getattr(database, "read_only", False):
            return None  # a replica does not cascade (yet)
        with self._state_lock:
            if self._replication is None:
                from repro.replication.primary import ReplicationSource

                self._replication = ReplicationSource(database)
            return self._replication

    def _role_payload(self) -> Dict[str, Any]:
        """Role, LSN, and replica lag — piggybacked on every ``PONG``.

        This is what :class:`~repro.client.failover.FailoverClient` uses
        to discover topology and enforce read-your-writes tokens.
        """
        payload = self._base_role_payload()
        if self.shard_info is not None:
            payload["shard"] = dict(self.shard_info)
        return payload

    def _base_role_payload(self) -> Dict[str, Any]:
        database = getattr(self.service, "database", None)
        if database is None:
            return {"role": "standalone", "lsn": 0}
        lsn = getattr(database, "wal_applied_lsn", 0)
        if getattr(database, "read_only", False):
            return {"role": "replica", "lsn": lsn}
        if getattr(database, "wal", None) is not None:
            source = self.replication_source()
            return {
                "role": "primary",
                "lsn": database.wal.end_lsn,
                "replicas": source.status() if source is not None else [],
            }
        return {"role": "standalone", "lsn": lsn}

    def _handle_subscribe(
        self, connection: _Connection, payload: Dict[str, Any]
    ) -> bool:
        source = self.replication_source()
        if source is None:
            self._send_error(
                connection,
                ReplicationError(
                    "this server does not serve a WAL-mode primary; "
                    "nothing to subscribe to"
                ),
                request_id=None,
            )
            return False
        if connection.cursor is not None:
            self._send_error(
                connection,
                ProtocolError("connection already carries a subscription"),
                request_id=None,
            )
            return False
        from_lsn = int(payload.get("from_lsn", 0))
        name = payload.get("name")
        try:
            cursor_id, cursor = source.subscribe(from_lsn, name=name)
        except (StaleSubscriberError, ReplicationError) as exc:
            # Keep the connection: a stale subscriber's next frame is a
            # SYNC on this very socket, then a fresh WAL_SUBSCRIBE.
            self._send_error(connection, exc, request_id=None)
            return True
        connection.cursor_id = cursor_id
        connection.cursor = cursor
        connection.streamer = threading.Thread(
            target=self._stream_wal,
            args=(connection, source, cursor_id, cursor),
            name=f"wal-ship:{cursor.name}",
            daemon=True,
        )
        connection.streamer.start()
        return True

    def _handle_sync(
        self, connection: _Connection, payload: Dict[str, Any]
    ) -> bool:
        source = self.replication_source()
        if source is None:
            self._send_error(
                connection,
                ReplicationError("this server is not a WAL-mode primary"),
                request_id=None,
            )
            return False
        try:
            frames = source.sync_response(
                payload, max_bytes=max(4096, self.max_frame_bytes // 2)
            )
        except Exception as exc:
            self._send_error(connection, exc, request_id=None)
            return True
        for frame in frames:
            if not self._respond(connection, wire.SYNC_PAGES, frame, request_id=None):
                # Degraded to a frame-too-large error: the subscriber saw a
                # typed failure and will restart the sync; stop streaming.
                return True
        return True

    def _stream_wal(self, connection, source, cursor_id, cursor) -> None:
        """Sender loop: push records past the cursor, heartbeat when idle.

        Budgeted below half the frame cap (base64 expands payloads 4/3,
        plus JSON overhead) so a shipped batch can never trip the frame
        limit. Ends when the peer, the handler, or the server goes away —
        or the log's base outruns the cursor (a checkpoint truncated
        records not yet shipped), which surfaces to the subscriber as a
        typed ``stale-subscriber`` error so it can run anti-entropy.
        """
        budget = max(4096, self.max_frame_bytes // 2)
        last_heartbeat = time.monotonic()
        try:
            while not self._stopping.is_set() and not connection.closed.is_set():
                try:
                    batch, end = source.records_since(cursor.shipped_lsn, budget)
                except StaleSubscriberError as exc:
                    # The stream is over but the connection survives: the
                    # subscriber's next frames are an in-band SYNC and a
                    # fresh WAL_SUBSCRIBE on this same socket. Drop the
                    # cursor *before* the error frame goes out (both under
                    # the lock), so by the time the subscriber reacts the
                    # re-subscribe is guaranteed to be accepted.
                    with connection.lock:
                        connection.cursor = None
                        connection.cursor_id = None
                        self._send_error(connection, exc, request_id=None)
                    return
                if batch:
                    with connection.lock:
                        self._send(
                            connection,
                            wire.WAL_RECORDS,
                            {
                                "from_lsn": cursor.shipped_lsn,
                                "end_lsn": end,
                                "records": batch,
                            },
                        )
                    shipped = end - cursor.shipped_lsn
                    cursor.shipped_lsn = end
                    source.note_shipped(cursor, len(batch), shipped)
                    last_heartbeat = time.monotonic()
                    continue
                source.wait_for_append(
                    cursor.shipped_lsn, min(self.heartbeat_seconds, 0.2)
                )
                now = time.monotonic()
                if now - last_heartbeat >= self.heartbeat_seconds:
                    with connection.lock:
                        self._send(
                            connection, wire.HEARTBEAT, {"lsn": source.end_lsn}
                        )
                    source.note_heartbeat()
                    last_heartbeat = now
        except (OSError, ConnectionError, ProtocolError):
            pass  # peer went away; the handler thread notices on its read
        finally:
            source.unsubscribe(cursor_id)

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------
    def _send(
        self, connection: _Connection, kind: int, payload: Dict[str, Any]
    ) -> None:
        wire.write_frame(connection.sock, kind, payload, self.max_frame_bytes)

    def _respond(
        self,
        connection: _Connection,
        kind: int,
        payload: Dict[str, Any],
        request_id: Optional[int],
    ) -> bool:
        """Send a response; an oversized one degrades to a typed error.

        ``write_frame`` raises :class:`~repro.errors.FrameTooLargeError`
        *before* any byte hits the socket, so the stream stays framed and
        the connection stays usable — the client just sees a structured
        ``frame-too-large`` failure for this one request. Returns whether
        the payload itself went out (``False`` on the degraded path).
        """
        try:
            self._send(connection, kind, payload)
        except FrameTooLargeError as exc:
            self._m_protocol_errors.inc()
            self._send_error(connection, exc, request_id)
            return False
        return True

    def _send_error(
        self,
        connection: _Connection,
        exc: BaseException,
        request_id: Optional[int],
    ) -> None:
        if not isinstance(exc, ReproError):
            self._m_errors_internal()
        payload = wire.encode_error(exc)
        payload["id"] = request_id
        with contextlib.suppress(OSError, ProtocolError, ConnectionError):
            self._send(connection, wire.ERROR, payload)

    @staticmethod
    def _m_errors_internal() -> None:
        REGISTRY.counter("server.net.internal_errors").inc()
