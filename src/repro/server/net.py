"""TCP serving edge: :class:`TcpQueryServer` over a :class:`QueryService`.

The in-process :class:`~repro.server.service.QueryService` proved queries
correct under concurrency; this module gives it a network edge. One
listener thread accepts connections; each connection gets a handler thread
that reads frames (see :mod:`repro.wire`), runs queries through the shared
service, and writes responses. Concurrency and overload control stay where
they already live — the service's worker pool and bounded admission — so a
saturated server sheds with a protocol-level ``admission`` error frame
instead of dropping connections.

Edge policies handled here:

* **Handshake** — the first frame must be ``HELLO`` carrying the protocol
  version and, when the server was given ``auth_tokens``, a valid token;
  the token names the connection's *tenant*.
* **Per-tenant quotas** — ``tenant_quotas`` caps each tenant's in-flight
  queries; a breach sheds that request with a ``tenant-quota`` error
  *before* it consumes a service admission slot.
* **Read timeouts** — a connection idle longer than
  ``read_timeout_seconds`` is closed (frees handler threads from dead
  peers).
* **Graceful shutdown** — :meth:`stop` with ``drain=True`` stops
  accepting, lets every in-flight request finish and deliver its
  response, sends ``BYE``, then closes.
* **Error discipline** — a malformed or oversized frame earns a
  ``protocol`` error frame and a close (the stream cannot be resynced);
  a well-formed request that fails keeps the connection: the error
  round-trips as a structured frame and the client re-raises the same
  exception class (:mod:`repro.errors` codes).

Traffic feeds ``server.net.*`` metrics: connection / request counters,
auth and quota rejections, protocol errors, and client disconnects.
"""

from __future__ import annotations

import contextlib
import socket
import threading
from typing import Any, Dict, Mapping, Optional, Tuple

from repro import wire
from repro.errors import (
    AuthenticationError,
    ConfigurationError,
    ConnectionLostError,
    ProtocolError,
    ReproError,
    TenantQuotaError,
)
from repro.obs.metrics import REGISTRY
from repro.query.options import ExecutionOptions
from repro.server.service import QueryService

__all__ = ["TcpQueryServer"]


class _Connection:
    """Per-connection bookkeeping: socket, identity, and a request lock.

    The handler holds ``lock`` while processing one request (execute +
    respond); a draining shutdown acquires it to guarantee the in-flight
    response is fully written before the socket is torn down.
    """

    __slots__ = ("sock", "tenant", "lock")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.tenant: Optional[str] = None
        self.lock = threading.Lock()


class TcpQueryServer:
    """Serve the wire protocol over TCP, backed by one `QueryService`.

    ``database`` / ``service``
        Pass a :class:`~repro.objects.database.Database` (the server builds
        and owns a :class:`QueryService` with ``max_workers`` /
        ``queue_depth``) or an existing service (shared; not shut down with
        the server). Exactly one of the two.
    ``host`` / ``port``
        Bind address. ``port=0`` picks a free port; read the bound address
        from :attr:`address` after :meth:`start`.
    ``auth_tokens``
        ``{token: tenant_name}``. When set, every connection must present
        a known token in its ``HELLO``; when ``None``, auth is off and all
        connections share the anonymous tenant.
    ``tenant_quotas``
        ``{tenant_name: max_in_flight}`` — per-tenant admission caps,
        enforced at the edge before service admission.
    ``read_timeout_seconds``
        Per-connection socket timeout; an idle peer is disconnected.
    ``max_frame_bytes``
        Upper bound on a single frame in either direction.

    The server is a context manager: entering calls :meth:`start`, leaving
    calls :meth:`stop` (draining).
    """

    def __init__(
        self,
        database=None,
        *,
        service: Optional[QueryService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 4,
        queue_depth: Optional[int] = None,
        auth_tokens: Optional[Mapping[str, str]] = None,
        tenant_quotas: Optional[Mapping[str, int]] = None,
        read_timeout_seconds: float = 30.0,
        max_frame_bytes: int = wire.DEFAULT_MAX_FRAME_BYTES,
    ):
        if (database is None) == (service is None):
            raise ConfigurationError(
                "TcpQueryServer needs a database or a service (not both)"
            )
        if read_timeout_seconds <= 0:
            raise ConfigurationError(
                f"read_timeout_seconds must be positive, got {read_timeout_seconds}"
            )
        self._owns_service = service is None
        self.service = service or QueryService(
            database, max_workers=max_workers, queue_depth=queue_depth
        )
        self.host = host
        self.port = port
        self.auth_tokens = dict(auth_tokens) if auth_tokens is not None else None
        self.tenant_quotas = dict(tenant_quotas or {})
        self.read_timeout_seconds = read_timeout_seconds
        self.max_frame_bytes = max_frame_bytes
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: Dict[_Connection, threading.Thread] = {}
        self._state_lock = threading.Lock()
        self._stopping = threading.Event()
        self._started = False
        self._tenant_inflight: Dict[str, int] = {}
        self._m_connections = REGISTRY.counter("server.net.connections")
        self._m_requests = REGISTRY.counter("server.net.requests")
        self._m_auth_failures = REGISTRY.counter("server.net.auth_failures")
        self._m_quota_rejections = REGISTRY.counter("server.net.quota_rejections")
        self._m_protocol_errors = REGISTRY.counter("server.net.protocol_errors")
        self._m_disconnects = REGISTRY.counter("server.net.disconnects")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TcpQueryServer":
        """Bind, listen, and start accepting in a background thread."""
        if self._started:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        # A blocking accept() is not reliably interrupted by close() on
        # another thread; a short timeout turns stop() into a bounded wait.
        listener.settimeout(0.2)
        self.host, self.port = listener.getsockname()[:2]
        self._listener = listener
        self._started = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="tcp-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (final port only after `start`)."""
        return (self.host, self.port)

    @property
    def url(self) -> str:
        """The ``sigfile://`` URL clients connect to."""
        return f"sigfile://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """`start` and block until :meth:`stop` is called."""
        self.start()
        assert self._accept_thread is not None
        while self._accept_thread.is_alive():
            self._accept_thread.join(timeout=0.5)

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting and close connections; idempotent.

        With ``drain=True`` every in-flight request finishes and its
        response is delivered (the per-connection lock guarantees the
        write completed) before the socket closes with a ``BYE``. With
        ``drain=False`` sockets are torn down immediately.
        """
        if not self._started or self._stopping.is_set():
            # Not started, or a previous stop already ran.
            if self._owns_service and not self._stopping.is_set():
                self._stopping.set()
                self.service.shutdown()
            return
        self._stopping.set()
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.close()
        with self._state_lock:
            connections = list(self._handlers.items())
        for connection, _thread in connections:
            if drain:
                # Waits for the in-flight request (if any) to finish and
                # flush its response, then wakes the blocked frame read.
                with connection.lock:
                    self._farewell(connection)
            else:
                self._farewell(connection)
        for _connection, thread in connections:
            thread.join(timeout=timeout)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)
        if self._owns_service:
            self.service.shutdown(wait=drain)

    def _farewell(self, connection: _Connection) -> None:
        """Best-effort BYE, then unblock the handler's pending read.

        ``SHUT_RDWR`` (not ``SHUT_RD``): only a full shutdown generates the
        poll event that wakes a handler blocked inside ``recv``. Queued
        outbound data — the BYE, a just-written response — is still
        delivered; shutdown is not close.
        """
        with contextlib.suppress(OSError, ProtocolError):
            wire.write_frame(connection.sock, wire.BYE, {}, self.max_frame_bytes)
        with contextlib.suppress(OSError):
            connection.sock.shutdown(socket.SHUT_RDWR)

    def __enter__(self) -> "TcpQueryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def __repr__(self) -> str:
        state = (
            "stopped"
            if self._stopping.is_set()
            else ("serving" if self._started else "idle")
        )
        return f"TcpQueryServer({self.host}:{self.port}, {state}, {self.service!r})"

    # ------------------------------------------------------------------
    # Accepting
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue  # periodic stop-flag check
            except OSError:
                break  # listener closed by stop()
            if self._stopping.is_set():
                with contextlib.suppress(OSError):
                    sock.close()
                break
            connection = _Connection(sock)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="tcp-conn",
                daemon=True,
            )
            with self._state_lock:
                self._handlers[connection] = thread
            self._m_connections.inc()
            thread.start()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _serve_connection(self, connection: _Connection) -> None:
        sock = connection.sock
        sock.settimeout(self.read_timeout_seconds)
        try:
            if not self._handshake(connection):
                return
            while not self._stopping.is_set():
                try:
                    frame = wire.read_frame(sock, self.max_frame_bytes)
                except ProtocolError as exc:
                    self._m_protocol_errors.inc()
                    self._send_error(connection, exc, request_id=None)
                    return
                except socket.timeout:
                    self._m_disconnects.inc()
                    return  # idle peer
                except (ConnectionLostError, ConnectionError, OSError):
                    self._m_disconnects.inc()
                    return
                if frame is None:
                    return  # orderly close between frames
                kind, payload = frame
                # A request that was already read is served even if a
                # draining stop() races in — drain means no accepted work
                # is dropped. The loop condition ends the connection after.
                with connection.lock:
                    if not self._dispatch(connection, kind, payload):
                        return
        except (ConnectionError, BrokenPipeError, OSError):
            # Peer vanished mid-response; nothing left to tell it.
            self._m_disconnects.inc()
        finally:
            with contextlib.suppress(OSError):
                sock.close()
            with self._state_lock:
                self._handlers.pop(connection, None)

    def _handshake(self, connection: _Connection) -> bool:
        """Require a HELLO; authenticate when tokens are configured."""
        try:
            frame = wire.read_frame(connection.sock, self.max_frame_bytes)
        except ProtocolError as exc:
            self._m_protocol_errors.inc()
            self._send_error(connection, exc, request_id=None)
            return False
        except (socket.timeout, ConnectionLostError, ConnectionError, OSError):
            self._m_disconnects.inc()
            return False
        if frame is None:
            return False
        kind, payload = frame
        if kind != wire.HELLO:
            self._m_protocol_errors.inc()
            self._send_error(
                connection,
                ProtocolError("first frame must be HELLO"),
                request_id=None,
            )
            return False
        if self.auth_tokens is not None:
            token = payload.get("token")
            tenant = self.auth_tokens.get(token) if token is not None else None
            if tenant is None:
                self._m_auth_failures.inc()
                self._send_error(
                    connection,
                    AuthenticationError("unknown or missing auth token"),
                    request_id=None,
                )
                return False
            connection.tenant = tenant
        from repro import __version__

        self._send(
            connection,
            wire.OK,
            {
                "protocol": wire.PROTOCOL_VERSION,
                "server": f"sigfile-repro/{__version__}",
                "tenant": connection.tenant,
            },
        )
        return True

    def _dispatch(
        self, connection: _Connection, kind: int, payload: Dict[str, Any]
    ) -> bool:
        """Serve one request frame; False ends the connection."""
        request_id = payload.get("id")
        if kind == wire.PING:
            self._send(connection, wire.PONG, {"id": request_id})
            return True
        if kind == wire.GOODBYE:
            self._send(connection, wire.BYE, {})
            return False
        if kind == wire.QUERY:
            self._m_requests.inc()
            try:
                result = self._execute(payload, connection.tenant)
            except Exception as exc:  # round-trips as a structured frame
                self._note_rejection(exc)
                self._send_error(connection, exc, request_id)
                return True
            self._send(
                connection,
                wire.RESULT,
                {"id": request_id, **wire.encode_result(result)},
            )
            return True
        if kind == wire.BATCH:
            texts = payload.get("texts", [])
            self._m_requests.inc(len(texts) or 1)
            try:
                results = [
                    self._execute({**payload, "text": text}, connection.tenant)
                    for text in texts
                ]
            except Exception as exc:
                self._note_rejection(exc)
                self._send_error(connection, exc, request_id)
                return True
            self._send(
                connection,
                wire.RESULTS,
                {
                    "id": request_id,
                    "results": [wire.encode_result(r) for r in results],
                },
            )
            return True
        # read_frame vetted the kind, so this is a *response* kind arriving
        # on the server — a confused client.
        self._m_protocol_errors.inc()
        self._send_error(
            connection,
            ProtocolError(f"unexpected frame kind {kind} from a client"),
            request_id,
        )
        return False

    def _note_rejection(self, exc: BaseException) -> None:
        if isinstance(exc, TenantQuotaError):
            self._m_quota_rejections.inc()

    def _execute(self, payload: Dict[str, Any], tenant: Optional[str]):
        text = payload.get("text")
        if not isinstance(text, str):
            raise ProtocolError("query frame is missing its text")
        options = ExecutionOptions.from_dict(payload.get("options"))
        # Server-local sanitization: a remote caller must not recurse into
        # another pool (or back out over the network), and span trees
        # cannot cross the wire.
        options = options.evolve(
            max_workers=None,
            execution_mode=None,
            remote_url=None,
            trace=False,
            tracer=None,
        )
        with self._tenant_slot(tenant):
            return self.service.execute(text, options)

    @contextlib.contextmanager
    def _tenant_slot(self, tenant: Optional[str]):
        """Hold one of the tenant's in-flight slots, or shed."""
        quota = self.tenant_quotas.get(tenant) if tenant is not None else None
        if quota is None:
            yield
            return
        with self._state_lock:
            inflight = self._tenant_inflight.get(tenant, 0)
            if inflight >= quota:
                raise TenantQuotaError(
                    f"tenant {tenant!r} is at its quota of {quota} "
                    f"in-flight quer{'y' if quota == 1 else 'ies'}"
                )
            self._tenant_inflight[tenant] = inflight + 1
        try:
            yield
        finally:
            with self._state_lock:
                self._tenant_inflight[tenant] -= 1

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------
    def _send(
        self, connection: _Connection, kind: int, payload: Dict[str, Any]
    ) -> None:
        wire.write_frame(connection.sock, kind, payload, self.max_frame_bytes)

    def _send_error(
        self,
        connection: _Connection,
        exc: BaseException,
        request_id: Optional[int],
    ) -> None:
        if not isinstance(exc, ReproError):
            self._m_errors_internal()
        payload = wire.encode_error(exc)
        payload["id"] = request_id
        with contextlib.suppress(OSError, ProtocolError, ConnectionError):
            self._send(connection, wire.ERROR, payload)

    @staticmethod
    def _m_errors_internal() -> None:
        REGISTRY.counter("server.net.internal_errors").inc()
