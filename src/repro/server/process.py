"""Process-pool query serving over a read-only snapshot.

Thread pools overlap the *simulated device latency* of a workload but not
its matching arithmetic — the GIL serializes the numpy-free bookkeeping
and every pure-Python drop test. :class:`ProcessQueryService` is the
CPU-bound counterpart of :class:`~repro.server.service.QueryService`: the
database is saved once (see :func:`~repro.persistence.snapshot.save_database`)
and each worker *process* lazily loads its own read-only replica on first
use, so query evaluation scales across cores with zero shared state.

Accounting still matches a sequential run exactly. Every query executes in
the worker under its own isolated I/O scope, so its
``QueryStatistics.io`` delta covers precisely that query (the replica
load is not charged); the parent folds each delta back into the serving
database's shared statistics with
:meth:`~repro.storage.stats.IOStatistics.merge_snapshot`, leaving the
golden page totals identical to ``execute_text`` in a loop.

Because workers serve replicas, the service is *read-only*: mutations to
the parent database after construction are invisible to the pool. Span
trees never cross the process boundary (results come back with
``trace=None``); if the database is WAL-bound, the save performs its usual
fuzzy checkpoint.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from concurrent.futures import Future, ProcessPoolExecutor
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.obs.metrics import REGISTRY
from repro.query.executor import QueryExecutor, QueryResult
from repro.query.options import ExecutionOptions

__all__ = ["ProcessQueryService"]

#: per-worker-process state: snapshot path + lazily loaded executor
_WORKER: dict = {}


def _init_worker(snapshot_path: str, pool_capacity: int) -> None:
    """Process-pool initializer: remember where the replica lives.

    Loading is deferred to the first chunk so pool construction stays
    cheap and a worker that never receives work never pays the load.
    """
    _WORKER.clear()
    _WORKER["path"] = snapshot_path
    _WORKER["pool_capacity"] = pool_capacity


def _worker_executor() -> QueryExecutor:
    executor = _WORKER.get("executor")
    if executor is None:
        from repro.persistence.snapshot import load_database

        database = load_database(
            _WORKER["path"], pool_capacity=_WORKER["pool_capacity"]
        )
        executor = QueryExecutor(database)
        _WORKER["executor"] = executor
    return executor


def _run_chunk(
    texts: List[str], options: Optional[ExecutionOptions]
) -> List[QueryResult]:
    """Execute one contiguous slice of the batch inside a worker process."""
    executor = _worker_executor()
    if options is not None and (options.batch_size or 1) > 1:
        results = executor.execute_batched(texts, options)
    else:
        results = [executor.execute_text(text, options) for text in texts]
    for result in results:
        # Span trees hold live Tracer/IOStatistics references; they are a
        # per-process debugging aid, not part of the serving contract.
        result.trace = None
    return results


class ProcessQueryService:
    """Serve query batches from worker processes over a snapshot replica.

    ``database``
        The :class:`~repro.objects.database.Database` to replicate. It is
        saved once at construction; the service answers against that
        frozen state.
    ``max_workers``
        Number of worker processes.
    ``batch_size``
        When > 1, workers run their slice through
        :meth:`~repro.query.executor.QueryExecutor.execute_batched`
        (shared-decode kernels) instead of a per-query loop. An explicit
        ``options.batch_size`` passed to :meth:`execute_many` wins.
    ``snapshot_path``
        Save location override; default is a private temporary directory
        removed on :meth:`shutdown`.

    The service is a context manager; leaving the block stops the pool and
    deletes the temporary replica.
    """

    def __init__(
        self,
        database,
        max_workers: int = 4,
        batch_size: Optional[int] = None,
        snapshot_path: Optional[str] = None,
    ):
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        from repro.persistence.snapshot import save_database

        self.database = database
        self.max_workers = max_workers
        self.batch_size = batch_size
        self._tmpdir: Optional[str] = None
        if snapshot_path is None:
            self._tmpdir = tempfile.mkdtemp(prefix="repro-procpool-")
            snapshot_path = os.path.join(self._tmpdir, "snapshot.db")
        self.snapshot_path = snapshot_path
        # Warm the planner's ANALYZE cache up front. A sequential run pays
        # this one-time scan on its first query; paying it here (a no-op
        # when already cached) keeps the parent's shared page totals
        # identical to that baseline — workers re-derive statistics on
        # their replicas, which stays replica-local like the load itself.
        for class_name, attribute in list(database._indexes):
            database.analyze(class_name, attribute, refresh=False)
        save_database(database, snapshot_path)
        pool_capacity = getattr(database.storage.pool, "capacity", 0) or 0
        self._pool = ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_worker,
            initargs=(snapshot_path, pool_capacity),
        )
        self._closed = False
        self._m_completed = REGISTRY.counter("server.completed")
        self._m_errors = REGISTRY.counter("server.errors")
        REGISTRY.gauge("server.process_workers").set(max_workers)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def execute_many(
        self,
        queries: List[str],
        options: Optional[ExecutionOptions] = None,
    ) -> List[QueryResult]:
        """Serve a batch across the pool; results in submission order.

        The batch is split into one contiguous chunk per worker (order
        inside a chunk is preserved, chunks are concatenated in order, so
        the result list lines up with ``queries``). Each result's I/O
        delta is folded into the serving database's shared statistics, so
        totals after the call equal a sequential run's.
        """
        if self._closed:
            raise ConfigurationError("process query service is shut down")
        if not queries:
            return []
        opts = self._worker_options(options)
        chunks = self._chunk(queries)
        futures: List["Future[List[QueryResult]]"] = [
            self._pool.submit(_run_chunk, chunk, opts) for chunk in chunks
        ]
        results: List[QueryResult] = []
        error: Optional[BaseException] = None
        for future in futures:
            exc = future.exception()
            if exc is not None:
                error = error or exc
                continue
            results.extend(future.result())
        if error is not None:
            self._m_errors.inc()
            raise error
        self._fold(results)
        self._m_completed.inc(len(results))
        return results

    def execute(
        self, text: str, options: Optional[ExecutionOptions] = None
    ) -> QueryResult:
        """Serve one query through a worker process and wait for it."""
        return self.submit(text, options).result()

    def submit(
        self, text: str, options: Optional[ExecutionOptions] = None
    ) -> "Future[QueryResult]":
        """Enqueue one query; returns a future for its result.

        The worker-side chunk future is adapted so the returned future
        resolves to the single :class:`QueryResult` with its I/O delta
        already folded into the serving database's shared statistics.
        """
        if self._closed:
            raise ConfigurationError("process query service is shut down")
        inner = self._pool.submit(_run_chunk, [text], self._worker_options(options))
        outer: "Future[QueryResult]" = Future()

        def _settle(done: "Future[List[QueryResult]]") -> None:
            exc = done.exception()
            if exc is not None:
                self._m_errors.inc()
                outer.set_exception(exc)
                return
            results = done.result()
            self._fold(results)
            self._m_completed.inc(len(results))
            outer.set_result(results[0])

        inner.add_done_callback(_settle)
        return outer

    def _fold(self, results: List[QueryResult]) -> None:
        """Merge worker-metered I/O deltas into the shared statistics."""
        stats = self.database.storage.stats
        for result in results:
            if result.statistics.io is not None:
                stats.merge_snapshot(result.statistics.io)

    def _worker_options(
        self, options: Optional[ExecutionOptions]
    ) -> Optional[ExecutionOptions]:
        """Options as shipped to workers: serial, trace-free, batch-aware."""
        opts = options or ExecutionOptions()
        batch = opts.batch_size if opts.batch_size is not None else self.batch_size
        # Workers must run the serial in-process path: no nested pools, no
        # tracers (spans cannot cross the pickle boundary).
        return opts.evolve(
            max_workers=None,
            execution_mode=None,
            batch_size=batch,
            trace=False,
            tracer=None,
        )

    def _chunk(self, queries: List[str]) -> List[List[str]]:
        per = max(1, (len(queries) + self.max_workers - 1) // self.max_workers)
        return [
            queries[start : start + per]
            for start in range(0, len(queries), per)
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool and delete the temporary replica; idempotent."""
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=wait)
            REGISTRY.gauge("server.process_workers").set(0)
            if self._tmpdir is not None:
                shutil.rmtree(self._tmpdir, ignore_errors=True)

    def close(self) -> None:
        """Alias of :meth:`shutdown` (the ``QueryBackend`` spelling)."""
        self.shutdown()

    def __enter__(self) -> "ProcessQueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"ProcessQueryService(workers={self.max_workers}, "
            f"batch_size={self.batch_size}, {state})"
        )
