"""Worker-pool query service with bounded admission.

The paper's experiments drive one query at a time; a served OODB answers
many at once. :class:`QueryService` is the serving layer: a fixed pool of
worker threads executes queries through one shared
:class:`~repro.query.executor.QueryExecutor`, relying on the facade latch
(readers share, mutators exclude) and the thread-safe storage substrate for
correctness, and on per-thread I/O scopes for exact per-query metering.

Admission is bounded: at most ``max_workers + queue_depth`` queries may be
in flight or waiting. A ``submit`` past that limit blocks for
``admission_timeout_seconds`` per attempt and retries per a
:class:`~repro.storage.faults.RetryPolicy` (the same retry/backoff
semantics the storage layer uses for transient device faults); when every
attempt times out the request is *shed* with
:class:`~repro.errors.AdmissionError` instead of queueing unboundedly —
overload surfaces at the edge, not as latency collapse inside.

Service traffic feeds the ``server.*`` metrics: ``server.submitted`` /
``server.admitted`` / ``server.shed`` / ``server.completed`` /
``server.errors`` counters, the ``server.workers`` gauge, and the
``server.admission_wait_seconds`` / ``server.query_seconds`` histograms.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import List, Optional

from repro.errors import (
    AdmissionError,
    ConfigurationError,
    DeadlineExceededError,
)
from repro.obs.metrics import REGISTRY
from repro.query.executor import QueryExecutor, QueryResult
from repro.query.options import ExecutionOptions
from repro.storage.faults import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = ["QueryService"]


class QueryService:
    """Serve queries from a bounded worker pool over one database.

    ``database``
        The :class:`~repro.objects.database.Database` to serve (or pass an
        existing ``executor``; exactly one of the two styles is used).
    ``max_workers``
        Pool width. Results are always returned in submission order by
        :meth:`execute_many`; the pool only changes wall-clock overlap.
    ``queue_depth``
        Admitted-but-not-running backlog on top of the running queries.
        Defaults to ``2 * max_workers``.
    ``admission_policy`` / ``admission_timeout_seconds``
        Shed behaviour: each admission attempt waits up to the timeout for
        a slot, retrying (with the policy's backoff schedule) up to the
        policy's ``max_attempts`` before raising
        :class:`~repro.errors.AdmissionError`.

    The service is a context manager; leaving the block drains the pool.
    """

    def __init__(
        self,
        database=None,
        max_workers: int = 4,
        queue_depth: Optional[int] = None,
        admission_policy: Optional[RetryPolicy] = None,
        admission_timeout_seconds: float = 1.0,
        executor: Optional[QueryExecutor] = None,
    ):
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if executor is None:
            if database is None:
                raise ConfigurationError(
                    "QueryService needs a database or an executor"
                )
            executor = QueryExecutor(database)
        self.executor = executor
        self.database = executor.database
        self.max_workers = max_workers
        self.queue_depth = (
            queue_depth if queue_depth is not None else 2 * max_workers
        )
        if self.queue_depth < 0:
            raise ConfigurationError(
                f"queue_depth must be >= 0, got {self.queue_depth}"
            )
        self.admission_policy = admission_policy or DEFAULT_RETRY_POLICY
        if admission_timeout_seconds <= 0:
            raise ConfigurationError(
                "admission_timeout_seconds must be positive, "
                f"got {admission_timeout_seconds}"
            )
        self.admission_timeout_seconds = admission_timeout_seconds
        self._slots = threading.BoundedSemaphore(max_workers + self.queue_depth)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="query-worker"
        )
        self._closed = False
        self._m_submitted = REGISTRY.counter("server.submitted")
        self._m_deadline = REGISTRY.counter("server.deadline_rejections")
        self._m_admitted = REGISTRY.counter("server.admitted")
        self._m_shed = REGISTRY.counter("server.shed")
        self._m_completed = REGISTRY.counter("server.completed")
        self._m_batched = REGISTRY.counter("server.batched_queries")
        self._m_errors = REGISTRY.counter("server.errors")
        self._h_wait = REGISTRY.histogram("server.admission_wait_seconds")
        self._h_query = REGISTRY.histogram("server.query_seconds")
        REGISTRY.gauge("server.workers").set(max_workers)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        """Take one in-flight slot or shed, per the admission policy."""
        policy = self.admission_policy
        waited_from = time.perf_counter()
        for attempt in range(1, policy.max_attempts + 1):
            if self._slots.acquire(timeout=self.admission_timeout_seconds):
                self._m_admitted.inc()
                self._h_wait.record(time.perf_counter() - waited_from)
                return
            if attempt < policy.max_attempts:
                delay = policy.sleep_for(attempt)
                if delay > 0:
                    time.sleep(delay)
        self._m_shed.inc()
        raise AdmissionError(
            f"query shed: no admission slot within "
            f"{policy.max_attempts} attempt(s) of "
            f"{self.admission_timeout_seconds}s "
            f"({self.max_workers} workers + {self.queue_depth} queued)"
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(
        self, text: str, options: Optional[ExecutionOptions] = None
    ) -> "Future[QueryResult]":
        """Enqueue one query text; returns a future for its result.

        Raises :class:`~repro.errors.AdmissionError` (without enqueueing)
        when the service is saturated past its admission policy.
        """
        if self._closed:
            raise AdmissionError("query service is shut down")
        deadline_at = self._deadline_at(options)
        self._m_submitted.inc()
        self._admit()
        try:
            return self._pool.submit(self._run_one, text, options, deadline_at)
        except RuntimeError:
            # Pool shut down between the check and the submit.
            self._slots.release()
            self._m_shed.inc()
            raise AdmissionError("query service is shut down") from None

    def _deadline_at(self, options: Optional[ExecutionOptions]) -> Optional[float]:
        """Anchor the request's remaining budget to this process's clock.

        ``deadline_ms`` is a duration; anchoring happens once, at
        submission, so queue time counts against the budget. A budget that
        is already spent is rejected here — before it takes an admission
        slot a live request could have used.
        """
        budget_ms = getattr(options, "deadline_ms", None)
        if budget_ms is None:
            return None
        if budget_ms <= 0:
            self._m_deadline.inc()
            raise DeadlineExceededError(
                f"deadline budget exhausted before submission "
                f"({budget_ms:.1f}ms remaining)"
            )
        return time.monotonic() + budget_ms / 1000.0

    def _run_one(
        self,
        text: str,
        options: Optional[ExecutionOptions],
        deadline_at: Optional[float] = None,
    ) -> QueryResult:
        if deadline_at is not None and time.monotonic() >= deadline_at:
            # Spent its whole budget queued; answering now helps nobody.
            self._m_deadline.inc()
            self._slots.release()
            raise DeadlineExceededError(
                "deadline expired while the request waited for a worker"
            )
        started = time.perf_counter()
        try:
            result = self.executor.execute_text(text, options)
        except Exception:
            self._m_errors.inc()
            raise
        else:
            self._m_completed.inc()
            trace = getattr(result, "trace", None)
            if trace is not None:
                # Per-worker span attribution: which pool thread served it.
                trace.set("worker", threading.current_thread().name)
            return result
        finally:
            self._h_query.record(time.perf_counter() - started)
            self._slots.release()

    def execute(
        self, text: str, options: Optional[ExecutionOptions] = None
    ) -> QueryResult:
        """Serve one query through the pool and wait for its result."""
        return self.submit(text, options).result()

    def execute_many(
        self,
        queries: List[str],
        options: Optional[ExecutionOptions] = None,
    ) -> List[QueryResult]:
        """Serve a batch; results come back in submission order.

        With ``options.batch_size > 1`` (and tracing off) the batch drains
        in groups: each group of up to ``batch_size`` consecutive queries
        is admitted as one unit and served by one worker through
        :meth:`~repro.query.executor.QueryExecutor.execute_batched`, so
        the facility-level shared-decode fast path applies *and* groups
        overlap across the pool. Per-query results and page accounting are
        identical to one-at-a-time serving.

        Admission backpressure applies while submitting: if the pool and
        queue stay full through the whole admission policy, the batch
        fails with :class:`~repro.errors.AdmissionError` after the results
        already in flight complete. A query that itself raises re-raises
        here, after all futures have settled.
        """
        batch_size = getattr(options, "batch_size", None) or 1
        tracing = options is not None and options.tracing_requested
        if batch_size > 1 and not tracing:
            return self._execute_many_batched(queries, options, batch_size)
        futures: List["Future[QueryResult]"] = []
        try:
            for text in queries:
                futures.append(self.submit(text, options))
        finally:
            done = [
                (future.exception(), future) for future in futures
            ]
        for error, _ in done:
            if error is not None:
                raise error
        return [future.result() for _, future in done]

    def _execute_many_batched(
        self,
        queries: List[str],
        options: Optional[ExecutionOptions],
        batch_size: int,
    ) -> List[QueryResult]:
        """Drain the batch in ``batch_size`` groups across the pool."""
        # Each worker runs its group serially in-process; stripping the
        # pool knobs stops execute_many from recursing into a new service.
        opts = (options or ExecutionOptions()).evolve(
            max_workers=None, execution_mode=None
        )
        chunks = [
            queries[start : start + batch_size]
            for start in range(0, len(queries), batch_size)
        ]
        futures: List["Future[List[QueryResult]]"] = []
        try:
            for chunk in chunks:
                if self._closed:
                    raise AdmissionError("query service is shut down")
                self._m_submitted.inc(len(chunk))
                self._admit()
                try:
                    futures.append(
                        self._pool.submit(self._run_chunk, chunk, opts)
                    )
                except RuntimeError:
                    self._slots.release()
                    self._m_shed.inc()
                    raise AdmissionError(
                        "query service is shut down"
                    ) from None
        finally:
            done = [(future.exception(), future) for future in futures]
        for error, _ in done:
            if error is not None:
                raise error
        results: List[QueryResult] = []
        for _, future in done:
            results.extend(future.result())
        return results

    def _run_chunk(
        self, chunk: List[str], options: ExecutionOptions
    ) -> List[QueryResult]:
        started = time.perf_counter()
        try:
            results = self.executor.execute_batched(chunk, options)
        except Exception:
            self._m_errors.inc()
            raise
        else:
            self._m_completed.inc(len(results))
            self._m_batched.inc(len(results))
            return results
        finally:
            self._h_query.record(time.perf_counter() - started)
            self._slots.release()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Drain (by default) and stop the pool; idempotent."""
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=wait)
            REGISTRY.gauge("server.workers").set(0)

    def close(self) -> None:
        """Alias of :meth:`shutdown` (the ``QueryBackend`` spelling)."""
        self.shutdown()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"QueryService(workers={self.max_workers}, "
            f"queue_depth={self.queue_depth}, {state})"
        )
