"""Registry mapping experiment ids to their generator functions.

Used by the CLI (``python -m repro <id>``) and the benchmark harness so
that every paper table/figure is regenerable by name.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.experiments import extensions, figures, tables
from repro.experiments.conclusions import summary
from repro.experiments.empirical import (
    EmpiricalConfig,
    empirical_sweep,
    empirical_update_costs,
)

ANALYTICAL_EXPERIMENTS: Dict[str, Callable] = {
    "figure4": figures.figure4,
    "figure5": figures.figure5,
    "figure6": figures.figure6,
    "figure7": figures.figure7,
    "figure8": figures.figure8,
    "figure9": figures.figure9,
    "figure10": figures.figure10,
    "table5": tables.table5,
    "table6": tables.table6,
    "table7": tables.table7,
    "optimal_m": tables.optimal_m_table,
    "summary": summary,
    "variable_cardinality": extensions.variable_cardinality,
}


def _empirical_superset():
    config = EmpiricalConfig()
    return empirical_sweep(config, "superset", (1, 2, 3, 5, 8, 10))


def _empirical_subset():
    config = EmpiricalConfig()
    return empirical_sweep(config, "subset", (10, 30, 100, 300))


def _empirical_updates():
    return empirical_update_costs(EmpiricalConfig())


EMPIRICAL_EXPERIMENTS: Dict[str, Callable] = {
    "empirical_superset": _empirical_superset,
    "empirical_subset": _empirical_subset,
    "empirical_updates": _empirical_updates,
    "false_drop_validation": extensions.false_drop_validation,
}

ALL_EXPERIMENTS: Dict[str, Callable] = {
    **ANALYTICAL_EXPERIMENTS,
    **EMPIRICAL_EXPERIMENTS,
}


def experiment_ids() -> List[str]:
    return sorted(ALL_EXPERIMENTS)


def run_experiment(experiment_id: str):
    try:
        generator = ALL_EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(experiment_ids())}"
        ) from None
    return generator()
