"""The paper's Section 6 conclusions, evaluated as data.

Each row of the summary table is one claim from the paper's summary
section together with the numbers our reproduction computes for it and a
HOLDS / FAILS verdict. ``sigfile-repro run summary`` therefore gives a
one-screen answer to "did the paper reproduce?".
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.false_drop import rounded_optimal_m
from repro.costmodel.bssf_model import BSSFCostModel
from repro.costmodel.nix_model import NIXCostModel
from repro.costmodel.parameters import PAPER_PARAMETERS, CostParameters
from repro.costmodel.smart import (
    smart_subset_bssf,
    smart_superset_bssf,
    smart_superset_nix,
)
from repro.costmodel.ssf_model import SSFCostModel
from repro.experiments.result import TableResult


def _verdict(holds: bool) -> str:
    return "HOLDS" if holds else "FAILS"


def summary(params: Optional[CostParameters] = None) -> TableResult:
    """Evaluate every §6 claim at the paper's parameters."""
    params = params or PAPER_PARAMETERS
    rows: List[List] = []

    # -- storage ordering: SSF <= BSSF << NIX at every design point -------
    ordering_ok = True
    for Dt, design_points in ((10, ((250, 2), (500, 2))),
                              (100, ((1000, 3), (2500, 3)))):
        nix_sc = NIXCostModel(params, Dt).storage_cost()
        for F, m in design_points:
            ssf_sc = SSFCostModel(params, F, m).storage_cost()
            bssf_sc = BSSFCostModel(params, F, m).storage_cost()
            ordering_ok &= ssf_sc <= bssf_sc <= nix_sc
    rows.append(
        ["storage costs rise SSF → BSSF → NIX (§6)",
         "checked at all 4 design points", _verdict(ordering_ok)]
    )

    # -- flagship point: BSSF F=250 storage ≈ half of NIX -----------------
    ratio = (
        BSSFCostModel(params, 250, 2).storage_cost()
        / NIXCostModel(params, 10).storage_cost()
    )
    rows.append(
        ["BSSF(F=250) storage ≈ half of NIX (§6)",
         f"ratio = {ratio:.2f}", _verdict(0.40 <= ratio <= 0.55)]
    )

    # -- retrieval T⊇Q: BSSF small-m comparable to NIX except Dq=1 --------
    bssf = BSSFCostModel(params, 500, 2)
    nix = NIXCostModel(params, 10)
    dq1_nix_wins = (
        smart_superset_nix(nix, 1).cost < smart_superset_bssf(bssf, 10, 1).cost
    )
    rest_comparable = all(
        smart_superset_bssf(bssf, 10, dq).cost
        <= smart_superset_nix(nix, dq).cost + 1e-9
        for dq in range(2, 11)
    )
    rows.append(
        ["T⊇Q: NIX wins only at Dq=1 (smart, §5.1.3/§6)",
         f"NIX@1={smart_superset_nix(nix, 1).cost:.1f} vs "
         f"BSSF@1={smart_superset_bssf(bssf, 10, 1).cost:.1f}; "
         f"BSSF ≤ NIX for Dq∈[2,10]",
         _verdict(dq1_nix_wins and rest_comparable)]
    )

    # -- retrieval: SSF inferior to BSSF for both query types -------------
    ssf = SSFCostModel(params, 500, 2)
    ssf_loses = all(
        bssf.retrieval_cost_superset(10, dq) < ssf.retrieval_cost_superset(10, dq)
        for dq in range(1, 11)
    ) and all(
        bssf.retrieval_cost_subset(10, dq) < ssf.retrieval_cost_subset(10, dq)
        for dq in (10, 100, 1000)
    )
    rows.append(
        ["SSF inferior to BSSF for T⊇Q and T⊆Q (§6)",
         "same (F, m), all swept Dq", _verdict(ssf_loses)]
    )

    # -- T⊆Q: BSSF small constant cost, overwhelms NIX --------------------
    subset_costs = [smart_subset_bssf(bssf, 10, dq).cost for dq in (10, 50, 100)]
    flat = max(subset_costs) - min(subset_costs) < 1e-6
    beats_nix = all(
        smart_subset_bssf(bssf, 10, dq).cost < nix.retrieval_cost_subset(dq)
        for dq in (10, 50, 100, 300)
    )
    rows.append(
        ["T⊆Q: BSSF constant & far below NIX (§5.2.2/§6)",
         f"BSSF flat at {subset_costs[0]:.0f} pages; "
         f"NIX {nix.retrieval_cost_subset(10):.0f}+ pages",
         _verdict(flat and beats_nix)]
    )

    # -- tuning: small m beats m_opt for total retrieval ------------------
    m_opt = rounded_optimal_m(500, 10)
    small_total = sum(
        BSSFCostModel(params, 500, 2).retrieval_cost_superset(10, dq)
        for dq in range(2, 11)
    )
    opt_total = sum(
        BSSFCostModel(params, 500, m_opt).retrieval_cost_superset(10, dq)
        for dq in range(2, 11)
    )
    rows.append(
        ["set a far smaller m than m_opt (§6 headline)",
         f"Σ RC(m=2) = {small_total:.0f} vs Σ RC(m_opt={m_opt}) = {opt_total:.0f}",
         _verdict(small_total < opt_total)]
    )

    # -- update: SSF cheapest inserts; BSSF F+1 is worst case -------------
    rows.append(
        ["SSF insert cheapest; BSSF UC_I=F+1 is worst case (§6)",
         f"SSF 2, NIX {nix.insert_cost():.0f}, BSSF worst {bssf.insert_cost():.0f} "
         f"vs expected {bssf.insert_cost_expected(10):.1f}",
         _verdict(
             2 < nix.insert_cost() < bssf.insert_cost()
             and bssf.insert_cost_expected(10) < bssf.insert_cost()
         )]
    )

    return TableResult(
        experiment_id="summary",
        title="Section 6 conclusions, evaluated (paper parameters)",
        columns=["claim", "evidence", "verdict"],
        rows=rows,
    )
