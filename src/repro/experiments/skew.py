"""Domain-skew ablation (beyond the paper's uniform-domain assumption).

Section 4 assumes set elements drawn uniformly from the V-element domain.
Real attributes are skewed; this experiment loads Zipf(s) workloads at
increasing exponents and reports what skew does to each facility:

* **NIX** concentrates postings on the hot head: the longest posting list
  grows toward N, inflating leaf storage and hot-query costs — and past
  the point where a posting list exceeds one page, this implementation
  (like the paper's single-leaf entry layout) cannot index the attribute
  at all.
* **Signatures** are skew-oblivious by construction (hashing decorrelates
  element identity from bit positions): storage is unchanged and search
  costs move only through the actual-drop count.

The table reports, per exponent: NIX max/mean posting length and leaf
pages (or BUILD FAILS), plus measured hot-query superset page costs for
BSSF and NIX.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import AccessFacilityError
from repro.experiments.result import TableResult
from repro.objects.database import Database
from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionOptions
from repro.query.parser import ParsedQuery
from repro.query.planner import CostContext
from repro.query.predicates import has_subset
from repro.workloads.generator import (
    EVAL_ATTRIBUTE,
    EVAL_CLASS,
    SetWorkloadGenerator,
    WorkloadSpec,
    load_workload,
)


def _posting_profile(nix) -> tuple:
    """(max, mean) posting-list length across the tree."""
    lengths = [len(oids) for _, oids in nix.tree.iterate_entries()]
    if not lengths:
        return 0, 0.0
    return max(lengths), sum(lengths) / len(lengths)


def _measure_hot_query(database, generator, Dq: int, facility: str,
                       context: CostContext) -> float:
    executor = QueryExecutor(database)
    query = generator.hot_elements(Dq)
    parsed = ParsedQuery(
        class_name=EVAL_CLASS,
        predicates=(has_subset(EVAL_ATTRIBUTE, *query),),
    )
    result = executor.execute(
        parsed,
        ExecutionOptions(context=context, prefer_facility=facility, smart=False),
    )
    return float(result.statistics.page_accesses)


def skew_ablation(
    exponents: Sequence[float] = (0.0, 0.4, 0.8),
    num_objects: int = 1500,
    domain_cardinality: int = 600,
    target_cardinality: int = 8,
    signature_bits: int = 256,
    bits_per_element: int = 2,
    hot_query_cardinality: int = 2,
    seed: int = 23,
    overflow_chains: bool = False,
) -> TableResult:
    """Build one database per exponent and profile both facilities.

    ``overflow_chains=True`` builds NIX with posting-list chains — the
    extension that survives skew the paper's single-leaf layout cannot.
    """
    rows: List[List] = []
    for exponent in exponents:
        spec = WorkloadSpec(
            num_objects=num_objects,
            domain_cardinality=domain_cardinality,
            target_cardinality=target_cardinality,
            seed=seed,
            zipf_exponent=exponent,
        )
        database = Database()
        load_workload(database, spec)
        generator = SetWorkloadGenerator(spec)
        context = CostContext(
            num_objects=num_objects,
            domain_cardinality=domain_cardinality,
            target_cardinality=target_cardinality,
        )
        bssf = database.create_bssf_index(
            EVAL_CLASS, EVAL_ATTRIBUTE, signature_bits, bits_per_element,
            seed=seed,
        )
        bssf_pages = bssf.total_storage_pages()
        bssf_hot = _measure_hot_query(
            database, generator, hot_query_cardinality, "bssf", context
        )
        try:
            nix = database.create_nested_index(
                EVAL_CLASS, EVAL_ATTRIBUTE, overflow_chains=overflow_chains
            )
        except AccessFacilityError:
            rows.append(
                [exponent, "BUILD FAILS", "-", "-",
                 bssf_pages, round(bssf_hot, 1), "-"]
            )
            continue
        longest, mean = _posting_profile(nix)
        nix_hot = _measure_hot_query(
            database, generator, hot_query_cardinality, "nix", context
        )
        rows.append(
            [
                exponent,
                longest,
                round(mean, 1),
                nix.storage_pages()["leaf"],
                bssf_pages,
                round(bssf_hot, 1),
                round(nix_hot, 1),
            ]
        )
    return TableResult(
        experiment_id=(
            "ablation_skew_chained" if overflow_chains else "ablation_skew"
        ),
        title=(
            f"Domain-skew ablation: N={num_objects}, V={domain_cardinality}, "
            f"Dt={target_cardinality}, hot T⊇Q with Dq={hot_query_cardinality}"
        ),
        columns=[
            "zipf s", "NIX max posting", "NIX mean posting", "NIX leaves",
            "BSSF pages", "BSSF hot-query pages", "NIX hot-query pages",
        ],
        rows=rows,
        notes=[
            "signature storage and filtering are skew-oblivious; NIX "
            "postings concentrate on the hot head"
            + (
                " but overflow chains keep the build viable"
                if overflow_chains
                else " and eventually overflow the single-leaf entry "
                "layout (BUILD FAILS)"
            ),
        ],
    )
