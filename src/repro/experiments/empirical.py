"""Empirical validation: measured page accesses vs the analytical model.

The paper's evaluation is purely analytical. This harness builds a real
(simulated-disk) database at a scaled-down design point, indexes the same
set attribute with SSF, BSSF and NIX simultaneously, executes actual
queries through the planner/executor, and compares the *measured* logical
page accesses with the Section 4 model evaluated at the scaled parameters.
The claim under test is the model's: the shape (who wins, by what factor)
must match; individual queries fluctuate around the expectation because a
concrete query signature's weight is a random variable.

Scaling keeps the paper's density invariant ``d = Dt·N/V`` so the NIX
geometry stays representative; N defaults to 4096 (slice files stay one
page, like the paper's single-page slices at N = 32,000).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.costmodel.bssf_model import BSSFCostModel
from repro.costmodel.nix_model import NIXCostModel
from repro.costmodel.parameters import CostParameters
from repro.costmodel.smart import smart_subset_bssf, smart_superset_bssf
from repro.costmodel.ssf_model import SSFCostModel
from repro.errors import ConfigurationError
from repro.experiments.result import SeriesResult, TableResult
from repro.objects.database import Database
from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionOptions
from repro.query.parser import ParsedQuery
from repro.query.planner import CostContext
from repro.query.predicates import SetPredicate, has_subset, in_subset
from repro.workloads.generator import (
    EVAL_ATTRIBUTE,
    EVAL_CLASS,
    SetWorkloadGenerator,
    WorkloadSpec,
    load_workload,
)

FACILITIES = ("ssf", "bssf", "nix")


@dataclass(frozen=True)
class EmpiricalConfig:
    """A scaled design point for simulator runs."""

    num_objects: int = 4096
    domain_cardinality: int = 1664   # keeps d = Dt·N/V at the paper's 24.6
    target_cardinality: int = 10
    signature_bits: int = 500
    bits_per_element: int = 2
    seed: int = 42
    queries_per_point: int = 3

    def workload(self) -> WorkloadSpec:
        return WorkloadSpec(
            num_objects=self.num_objects,
            domain_cardinality=self.domain_cardinality,
            target_cardinality=self.target_cardinality,
            seed=self.seed,
        )

    def parameters(self, page_bytes: int = 4096) -> CostParameters:
        return CostParameters(
            num_objects=self.num_objects,
            page_bytes=page_bytes,
            domain_cardinality=self.domain_cardinality,
        )

    def context(self) -> CostContext:
        return CostContext(
            num_objects=self.num_objects,
            domain_cardinality=self.domain_cardinality,
            target_cardinality=self.target_cardinality,
        )


@dataclass
class Testbed:
    """One loaded database with all three facilities on the same attribute."""

    config: EmpiricalConfig
    database: Database
    executor: QueryExecutor
    generator: SetWorkloadGenerator
    oids: List = field(default_factory=list)

    @classmethod
    def build(cls, config: EmpiricalConfig) -> "Testbed":
        database = Database(page_size=4096, pool_capacity=0)
        spec = config.workload()
        oids = load_workload(database, spec)
        database.create_ssf_index(
            EVAL_CLASS, EVAL_ATTRIBUTE,
            config.signature_bits, config.bits_per_element, seed=config.seed,
        )
        database.create_bssf_index(
            EVAL_CLASS, EVAL_ATTRIBUTE,
            config.signature_bits, config.bits_per_element, seed=config.seed,
        )
        database.create_nested_index(EVAL_CLASS, EVAL_ATTRIBUTE)
        query_spec = WorkloadSpec(
            num_objects=0,
            domain_cardinality=spec.domain_cardinality,
            target_cardinality=spec.target_cardinality,
            seed=spec.seed + 1,
        )
        return cls(
            config=config,
            database=database,
            executor=QueryExecutor(database),
            generator=SetWorkloadGenerator(query_spec),
            oids=list(oids),
        )

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def _predicate(self, mode: str, query: frozenset) -> SetPredicate:
        if mode == "superset":
            return has_subset(EVAL_ATTRIBUTE, *query)
        if mode == "subset":
            return in_subset(EVAL_ATTRIBUTE, *query)
        raise ConfigurationError(f"unknown mode: {mode!r}")

    def measure_query(
        self, facility: str, mode: str, query: frozenset, smart: bool
    ) -> Tuple[float, int]:
        """(logical page accesses, result rows) for one executed query."""
        parsed = ParsedQuery(
            class_name=EVAL_CLASS,
            predicates=(self._predicate(mode, query),),
        )
        result = self.executor.execute(
            parsed,
            ExecutionOptions(
                context=self.config.context(),
                prefer_facility=facility,
                smart=smart,
            ),
        )
        return float(result.statistics.page_accesses), len(result)

    def measure_point(
        self, facility: str, mode: str, Dq: int, smart: bool
    ) -> float:
        """Mean page accesses over ``queries_per_point`` random queries."""
        total = 0.0
        for _ in range(self.config.queries_per_point):
            query = self.generator.random_query_set(Dq)
            pages, _ = self.measure_query(facility, mode, query, smart)
            total += pages
        return total / self.config.queries_per_point

    def planted_query(self, mode: str, Dq: int, index: int = 0) -> frozenset:
        """A query guaranteed to hit the ``index``-th stored object.

        The paper's Fd analysis assumes unsuccessful search; this generates
        the *successful* counterpart — a subquery of a stored target for
        ``T ⊇ Q``, a superquery for ``T ⊆ Q`` — so the ``Ps·A`` term of
        the cost model is exercised with A ≥ 1.
        """
        oid = self.oids[index % len(self.oids)]
        target = sorted(
            self.database.objects.set_attribute_value(oid, EVAL_ATTRIBUTE)
        )
        if mode == "superset":
            return self.generator.subquery_of(target, min(Dq, len(target)))
        if mode == "subset":
            return self.generator.superquery_of(target, max(Dq, len(target)))
        raise ConfigurationError(f"unknown mode: {mode!r}")

    def measure_successful_point(
        self, facility: str, mode: str, Dq: int, smart: bool = False
    ) -> Tuple[float, float]:
        """(mean pages, mean result rows) over planted successful queries."""
        pages_total = 0.0
        rows_total = 0
        for i in range(self.config.queries_per_point):
            query = self.planted_query(mode, Dq, index=i * 37)
            pages, rows = self.measure_query(facility, mode, query, smart)
            pages_total += pages
            rows_total += rows
        n = self.config.queries_per_point
        return pages_total / n, rows_total / n

    # ------------------------------------------------------------------
    # Model predictions at the scaled parameters
    # ------------------------------------------------------------------
    def predicted_point(self, facility: str, mode: str, Dq: int, smart: bool) -> float:
        params = self.config.parameters()
        Dt = self.config.target_cardinality
        F, m = self.config.signature_bits, self.config.bits_per_element
        if facility == "ssf":
            model = SSFCostModel(params, F, m)
            if mode == "superset":
                return model.retrieval_cost_superset(Dt, Dq)
            return model.retrieval_cost_subset(Dt, Dq)
        if facility == "bssf":
            model = BSSFCostModel(params, F, m)
            if mode == "superset":
                if smart:
                    return smart_superset_bssf(model, Dt, Dq).cost
                return model.retrieval_cost_superset(Dt, Dq)
            if smart:
                return smart_subset_bssf(model, Dt, Dq).cost
            return model.retrieval_cost_subset(Dt, Dq)
        if facility == "nix":
            # Use the *real* tree's lookup cost so geometry, not the paper's
            # f = 218 assumption, drives the prediction at scale.
            nix_facility = self.database.index(EVAL_CLASS, EVAL_ATTRIBUTE, "nix")
            model = NIXCostModel(params, Dt)
            rc = nix_facility.lookup_cost_pages()
            if mode == "superset":
                return rc * Dq + model.retrieval_cost_superset(Dq) - model.lookup_cost * Dq
            return rc * Dq + model.retrieval_cost_subset(Dq) - model.lookup_cost * Dq
        raise ConfigurationError(f"unknown facility: {facility!r}")


def empirical_sweep(
    config: EmpiricalConfig,
    mode: str,
    dq_values: Sequence[int],
    facilities: Sequence[str] = FACILITIES,
    smart: bool = False,
    testbed: Optional[Testbed] = None,
) -> SeriesResult:
    """Measured-vs-model sweep; series come in (measured, model) pairs."""
    testbed = testbed or Testbed.build(config)
    series: Dict[str, List[float]] = {}
    for facility in facilities:
        series[f"{facility} measured"] = [
            testbed.measure_point(facility, mode, dq, smart) for dq in dq_values
        ]
        series[f"{facility} model"] = [
            testbed.predicted_point(facility, mode, dq, smart) for dq in dq_values
        ]
    label = "T ⊇ Q" if mode == "superset" else "T ⊆ Q"
    strategy = "smart" if smart else "naive"
    return SeriesResult(
        experiment_id=f"empirical_{mode}{'_smart' if smart else ''}",
        title=(
            f"Simulator vs model, {label} ({strategy}), "
            f"N={config.num_objects}, V={config.domain_cardinality}, "
            f"Dt={config.target_cardinality}, F={config.signature_bits}, "
            f"m={config.bits_per_element}"
        ),
        x_label="Dq",
        x_values=list(dq_values),
        series=series,
        notes=["measured = logical page accesses averaged over "
               f"{config.queries_per_point} random queries per point"],
    )


def empirical_update_costs(
    config: EmpiricalConfig, operations: int = 16, testbed: Optional[Testbed] = None
) -> TableResult:
    """Measured insert/delete page accesses per facility vs the model.

    Inserts ``operations`` fresh objects and deletes ``operations`` existing
    ones, attributing per-file I/O to facilities by file-name prefix.
    """
    testbed = testbed or Testbed.build(config)
    database = testbed.database
    params = config.parameters()
    F, m = config.signature_bits, config.bits_per_element
    Dt = config.target_cardinality

    def facility_pages(snapshot, prefix: str) -> float:
        return sum(
            counts.logical_total
            for name, counts in snapshot.per_file.items()
            if name.startswith(prefix)
        )

    generator = SetWorkloadGenerator(
        WorkloadSpec(
            num_objects=operations,
            domain_cardinality=config.domain_cardinality,
            target_cardinality=Dt,
            seed=config.seed + 7,
        )
    )
    inserted = []
    before = database.io_snapshot()
    for target in generator.target_sets():
        inserted.append(
            database.insert(EVAL_CLASS, {EVAL_ATTRIBUTE: set(target)})
        )
    insert_delta = database.io_snapshot() - before

    before = database.io_snapshot()
    for oid in inserted:
        database.delete(oid)
    delete_delta = database.io_snapshot() - before

    ssf_model = SSFCostModel(params, F, m)
    bssf_model = BSSFCostModel(params, F, m)
    nix_model = NIXCostModel(params, Dt)
    nix_facility = database.index(EVAL_CLASS, EVAL_ATTRIBUTE, "nix")
    nix_rc = nix_facility.lookup_cost_pages()
    rows = [
        [
            "ssf",
            facility_pages(insert_delta, "ssf:") / operations,
            ssf_model.insert_cost(),
            facility_pages(delete_delta, "ssf:") / operations,
            ssf_model.delete_cost(),
        ],
        [
            "bssf",
            facility_pages(insert_delta, "bssf:") / operations,
            bssf_model.insert_cost_expected(Dt),
            facility_pages(delete_delta, "bssf:") / operations,
            bssf_model.delete_cost(),
        ],
        [
            "nix",
            facility_pages(insert_delta, "nix:") / operations,
            float(nix_rc * Dt),
            facility_pages(delete_delta, "nix:") / operations,
            float(nix_rc * Dt),
        ],
    ]
    return TableResult(
        experiment_id="empirical_updates",
        title=f"Measured vs model update cost (pages/op, {operations} ops)",
        columns=["facility", "insert measured", "insert model",
                 "delete measured", "delete model"],
        rows=rows,
        notes=[
            "BSSF model column is the expected case (m_t + 1); the paper's "
            "Table 7 quotes the worst case F + 1",
            "measured counts include read+write page touches, so appends "
            "cost ~2 where the model idealizes 1",
            "model delete for SSF/BSSF is the expected half-file scan",
        ],
    )
