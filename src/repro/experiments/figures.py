"""Analytical reproductions of every figure in the paper's Section 5.

Each function evaluates the Section 4 cost model over the same sweeps the
paper plots and returns a :class:`SeriesResult` whose series carry the
figure's legend labels. These are exact reproductions of the analysis (the
paper's evaluation is analytical); the *empirical* counterparts, measured
on the simulator, live in :mod:`repro.experiments.empirical`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.false_drop import rounded_optimal_m
from repro.costmodel.bssf_model import BSSFCostModel
from repro.costmodel.nix_model import NIXCostModel
from repro.costmodel.parameters import PAPER_PARAMETERS, CostParameters
from repro.costmodel.smart import (
    smart_subset_bssf,
    smart_subset_dq_opt,
    smart_superset_bssf,
    smart_superset_nix,
)
from repro.costmodel.ssf_model import SSFCostModel
from repro.experiments.result import SeriesResult

#: Dq sweep of the subset figures (log-ish spacing from Dt to 1000).
SUBSET_SWEEP_DT10 = (10, 20, 30, 50, 70, 100, 150, 200, 300, 500, 700, 1000)
SUBSET_SWEEP_DT100 = (100, 150, 200, 300, 500, 700, 1000, 1500, 2000)


def figure4(params: Optional[CostParameters] = None) -> SeriesResult:
    """Fig. 4 — RC for ``T ⊇ Q``, Dt = 10, m = m_opt, SSF/BSSF/NIX."""
    params = params or PAPER_PARAMETERS
    Dt = 10
    dq_values = list(range(1, 11))
    series: Dict[str, List[float]] = {}
    for F in (250, 500):
        m_opt = rounded_optimal_m(F, Dt)
        ssf = SSFCostModel(params, F, m_opt)
        bssf = BSSFCostModel(params, F, m_opt)
        series[f"SSF F={F} m={m_opt}"] = [
            ssf.retrieval_cost_superset(Dt, dq) for dq in dq_values
        ]
        series[f"BSSF F={F} m={m_opt}"] = [
            bssf.retrieval_cost_superset(Dt, dq) for dq in dq_values
        ]
    nix = NIXCostModel(params, Dt)
    series["NIX"] = [nix.retrieval_cost_superset(dq) for dq in dq_values]
    return SeriesResult(
        experiment_id="figure4",
        title="Retrieval cost RC, T ⊇ Q, Dt=10 (m = m_opt)",
        x_label="Dq",
        x_values=dq_values,
        series=series,
        notes=["pages per query; m_opt = F·ln2/Dt as in text retrieval"],
    )


def figure5(params: Optional[CostParameters] = None) -> SeriesResult:
    """Fig. 5 — RC for ``T ⊇ Q``, Dt = 10, F = 500, small m vs NIX."""
    params = params or PAPER_PARAMETERS
    Dt, F = 10, 500
    dq_values = list(range(1, 11))
    series: Dict[str, List[float]] = {}
    for m in (1, 2, 3, 4):
        bssf = BSSFCostModel(params, F, m)
        series[f"BSSF m={m}"] = [
            bssf.retrieval_cost_superset(Dt, dq) for dq in dq_values
        ]
    nix = NIXCostModel(params, Dt)
    series["NIX"] = [nix.retrieval_cost_superset(dq) for dq in dq_values]
    return SeriesResult(
        experiment_id="figure5",
        title="Retrieval cost RC, T ⊇ Q, Dt=10, F=500, m = 1..4",
        x_label="Dq",
        x_values=dq_values,
        series=series,
        notes=["small m beats m_opt on total cost despite worse Fd (§5.1.2)"],
    )


def _smart_superset_figure(
    experiment_id: str,
    params: CostParameters,
    Dt: int,
    design_points: Sequence,
) -> SeriesResult:
    dq_values = list(range(1, 11))
    series: Dict[str, List[float]] = {}
    for F, m in design_points:
        bssf = BSSFCostModel(params, F, m)
        series[f"BSSF F={F} m={m} (smart)"] = [
            smart_superset_bssf(bssf, Dt, dq).cost for dq in dq_values
        ]
    nix = NIXCostModel(params, Dt)
    series["NIX (smart)"] = [
        smart_superset_nix(nix, dq).cost for dq in dq_values
    ]
    return SeriesResult(
        experiment_id=experiment_id,
        title=f"Smart retrieval cost, T ⊇ Q, Dt={Dt}",
        x_label="Dq",
        x_values=dq_values,
        series=series,
        notes=[
            "costs flatten for Dq beyond the strategy's element budget "
            "(§5.1.3); NIX wins only at Dq=1"
        ],
    )


def figure6(params: Optional[CostParameters] = None) -> SeriesResult:
    """Fig. 6 — smart ``T ⊇ Q`` retrieval, Dt = 10."""
    return _smart_superset_figure(
        "figure6", params or PAPER_PARAMETERS, 10, ((250, 2), (500, 2))
    )


def figure7(params: Optional[CostParameters] = None) -> SeriesResult:
    """Fig. 7 — smart ``T ⊇ Q`` retrieval, Dt = 100."""
    return _smart_superset_figure(
        "figure7", params or PAPER_PARAMETERS, 100, ((1000, 3), (2500, 3))
    )


def figure8(params: Optional[CostParameters] = None) -> SeriesResult:
    """Fig. 8 — RC for ``T ⊆ Q``, Dt = 10, F = 500, SSF/BSSF/NIX."""
    params = params or PAPER_PARAMETERS
    Dt, F = 10, 500
    dq_values = list(SUBSET_SWEEP_DT10)
    m_opt = rounded_optimal_m(F, Dt)
    series: Dict[str, List[float]] = {}
    for m in (2, m_opt):
        ssf = SSFCostModel(params, F, m)
        bssf = BSSFCostModel(params, F, m)
        series[f"SSF m={m}"] = [
            ssf.retrieval_cost_subset(Dt, dq) for dq in dq_values
        ]
        series[f"BSSF m={m}"] = [
            bssf.retrieval_cost_subset(Dt, dq) for dq in dq_values
        ]
    nix = NIXCostModel(params, Dt)
    series["NIX"] = [nix.retrieval_cost_subset(dq) for dq in dq_values]
    return SeriesResult(
        experiment_id="figure8",
        title="Retrieval cost RC, T ⊆ Q, Dt=10, F=500",
        x_label="Dq",
        x_values=dq_values,
        series=series,
        notes=[
            "SSF/BSSF approach Pu·N for large Dq (Fd → 1); "
            "BSSF dominates the matching SSF at every Dq (§5.2.1)"
        ],
    )


def _smart_subset_figure(
    experiment_id: str,
    params: CostParameters,
    Dt: int,
    design_points: Sequence,
    dq_values: Sequence[int],
) -> SeriesResult:
    series: Dict[str, List[float]] = {}
    notes = []
    for F, m in design_points:
        bssf = BSSFCostModel(params, F, m)
        series[f"BSSF F={F} m={m} (smart)"] = [
            smart_subset_bssf(bssf, Dt, dq).cost for dq in dq_values
        ]
        notes.append(
            f"Dq_opt(F={F}, m={m}) ≈ {smart_subset_dq_opt(bssf, Dt):.0f}"
        )
    nix = NIXCostModel(params, Dt)
    series["NIX"] = [nix.retrieval_cost_subset(dq) for dq in dq_values]
    notes.append(
        "BSSF cost is constant below Dq_opt (§5.2.2); NIX grows with Dq"
    )
    return SeriesResult(
        experiment_id=experiment_id,
        title=f"Smart retrieval cost, T ⊆ Q, Dt={Dt}",
        x_label="Dq",
        x_values=list(dq_values),
        series=series,
        notes=notes,
    )


def figure9(params: Optional[CostParameters] = None) -> SeriesResult:
    """Fig. 9 — smart ``T ⊆ Q`` retrieval, Dt = 10."""
    return _smart_subset_figure(
        "figure9",
        params or PAPER_PARAMETERS,
        10,
        ((250, 2), (500, 2)),
        SUBSET_SWEEP_DT10,
    )


def figure10(params: Optional[CostParameters] = None) -> SeriesResult:
    """Fig. 10 — smart ``T ⊆ Q`` retrieval, Dt = 100."""
    return _smart_subset_figure(
        "figure10",
        params or PAPER_PARAMETERS,
        100,
        ((1000, 3), (2500, 3)),
        SUBSET_SWEEP_DT100,
    )
