"""Experiment result containers and plain-text rendering.

Every paper figure reproduces as a :class:`SeriesResult` (an x-sweep with
one or more named series) and every paper table as a :class:`TableResult`
(rows of named columns). Rendering is plain monospace text: the benchmark
harness prints the same rows/series the paper plots, and EXPERIMENTS.md
embeds the output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def _format_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e7:
            return f"{value:.3g}"
        if value == int(value) and abs(value) < 1e7:
            return str(int(value))
        return f"{value:.2f}"
    return str(value)


@dataclass
class SeriesResult:
    """One figure: x sweep + named y series."""

    experiment_id: str
    title: str
    x_label: str
    x_values: Sequence
    series: "Dict[str, List[float]]"
    notes: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        for label, values in self.series.items():
            if len(values) != len(self.x_values):
                raise ValueError(
                    f"series {label!r} has {len(values)} points for "
                    f"{len(self.x_values)} x values"
                )

    def column_labels(self) -> List[str]:
        return [self.x_label] + list(self.series)

    def rows(self) -> List[List]:
        return [
            [x] + [self.series[label][i] for label in self.series]
            for i, x in enumerate(self.x_values)
        ]

    def render(self) -> str:
        header = [self.column_labels()] + [
            [_format_value(v) for v in row] for row in self.rows()
        ]
        widths = [
            max(len(str(row[col])) for row in header)
            for col in range(len(header[0]))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for i, row in enumerate(header):
            lines.append(
                "  ".join(str(cell).rjust(width) for cell, width in zip(row, widths))
            )
            if i == 0:
                lines.append("  ".join("-" * width for width in widths))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def value(self, label: str, x) -> float:
        index = list(self.x_values).index(x)
        return self.series[label][index]

    def render_csv(self) -> str:
        """Comma-separated rows (header + data), for external plotting."""
        return _csv(self.column_labels(), self.rows())


@dataclass
class TableResult:
    """One paper table: column labels plus value rows."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[List]
    notes: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"row of {len(row)} cells for {len(self.columns)} columns"
                )

    def render(self) -> str:
        header = [self.columns] + [
            [_format_value(v) for v in row] for row in self.rows
        ]
        widths = [
            max(len(str(row[col])) for row in header)
            for col in range(len(header[0]))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for i, row in enumerate(header):
            lines.append(
                "  ".join(str(cell).rjust(width) for cell, width in zip(row, widths))
            )
            if i == 0:
                lines.append("  ".join("-" * width for width in widths))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def cell(self, row_key, column: str):
        """Value at (first row whose first cell == row_key, column)."""
        column_index = self.columns.index(column)
        for row in self.rows:
            if row[0] == row_key:
                return row[column_index]
        raise KeyError(f"no row keyed {row_key!r}")

    def render_csv(self) -> str:
        """Comma-separated rows (header + data), for external plotting."""
        return _csv(self.columns, self.rows)


ExperimentResult = object  # SeriesResult | TableResult (3.9-compatible alias)


def _csv_cell(value) -> str:
    text = _format_value(value) if not isinstance(value, str) else value
    if any(ch in text for ch in ',"\n'):
        return '"' + text.replace('"', '""') + '"'
    return text


def _csv(columns, rows) -> str:
    lines = [",".join(_csv_cell(c) for c in columns)]
    lines.extend(",".join(_csv_cell(cell) for cell in row) for row in rows)
    return "\n".join(lines)


def render_result(result, fmt: str = "text") -> str:
    """Render either result kind as ``text`` (default) or ``csv``."""
    if not isinstance(result, (SeriesResult, TableResult)):
        raise TypeError(f"not an experiment result: {type(result).__name__}")
    if fmt == "csv":
        return result.render_csv()
    if fmt == "text":
        return result.render()
    raise ValueError(f"unknown format {fmt!r}; expected 'text' or 'csv'")
