"""Experiment definitions: one generator per paper table/figure, plus the
simulator-based empirical validation."""

from repro.experiments.empirical import (
    EmpiricalConfig,
    Testbed,
    empirical_sweep,
    empirical_update_costs,
)
from repro.experiments.figures import (
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
)
from repro.experiments.registry import (
    ALL_EXPERIMENTS,
    experiment_ids,
    run_experiment,
)
from repro.experiments.result import SeriesResult, TableResult, render_result
from repro.experiments.tables import optimal_m_table, table5, table6, table7

__all__ = [
    "ALL_EXPERIMENTS",
    "EmpiricalConfig",
    "SeriesResult",
    "TableResult",
    "Testbed",
    "empirical_sweep",
    "empirical_update_costs",
    "experiment_ids",
    "figure10",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "optimal_m_table",
    "render_result",
    "run_experiment",
    "table5",
    "table6",
    "table7",
]
