"""Analytical reproductions of the paper's Tables 5, 6 and 7."""

from __future__ import annotations

from typing import List, Optional

from repro.core.false_drop import rounded_optimal_m
from repro.costmodel.bssf_model import BSSFCostModel
from repro.costmodel.nix_model import NIXCostModel
from repro.costmodel.parameters import (
    PAPER_DESIGN_POINTS,
    PAPER_PARAMETERS,
    CostParameters,
)
from repro.costmodel.ssf_model import SSFCostModel
from repro.experiments.result import TableResult


def table5(params: Optional[CostParameters] = None) -> TableResult:
    """Table 5 — NIX storage cost (lp, nlp, SC) for Dt = 10 and 100."""
    params = params or PAPER_PARAMETERS
    rows: List[List] = []
    for Dt in (10, 100):
        nix = NIXCostModel(params, Dt)
        rows.append([Dt, nix.leaf_pages, nix.nonleaf_pages, nix.storage_cost()])
    return TableResult(
        experiment_id="table5",
        title="Storage cost of NIX",
        columns=["Dt", "lp", "nlp", "SC"],
        rows=rows,
        notes=["paper values: Dt=10 → 685/5/690, Dt=100 → 6500/31/6531"],
    )


def table6(params: Optional[CostParameters] = None) -> TableResult:
    """Table 6 — storage costs of SSF, BSSF and NIX across design points."""
    params = params or PAPER_PARAMETERS
    rows: List[List] = []
    for Dt, design_points in sorted(PAPER_DESIGN_POINTS.items()):
        nix = NIXCostModel(params, Dt)
        for F, small_m in design_points:
            ssf = SSFCostModel(params, F, small_m)
            bssf = BSSFCostModel(params, F, small_m)
            rows.append(
                [
                    Dt,
                    F,
                    ssf.storage_cost(),
                    bssf.storage_cost(),
                    nix.storage_cost(),
                    round(ssf.storage_cost() / nix.storage_cost(), 2),
                ]
            )
    return TableResult(
        experiment_id="table6",
        title="Storage cost (pages): SSF vs BSSF vs NIX",
        columns=["Dt", "F", "SSF", "BSSF", "NIX", "SSF/NIX"],
        rows=rows,
        notes=[
            "paper anchors: SSF/NIX ≈ 0.45 and 0.80 for Dt=10; "
            "≈ 0.16 and 0.38 for Dt=100"
        ],
    )


def table7(params: Optional[CostParameters] = None) -> TableResult:
    """Table 7 — update costs UC_I / UC_D of the three facilities."""
    params = params or PAPER_PARAMETERS
    rows: List[List] = []
    for Dt, design_points in sorted(PAPER_DESIGN_POINTS.items()):
        nix = NIXCostModel(params, Dt)
        for F, small_m in design_points:
            ssf = SSFCostModel(params, F, small_m)
            bssf = BSSFCostModel(params, F, small_m)
            rows.append(
                [
                    Dt,
                    F,
                    ssf.insert_cost(),
                    ssf.delete_cost(),
                    bssf.insert_cost(),
                    bssf.delete_cost(),
                    nix.insert_cost(),
                    nix.delete_cost(),
                ]
            )
    return TableResult(
        experiment_id="table7",
        title="Update cost (pages): insert UC_I / delete UC_D",
        columns=[
            "Dt", "F",
            "SSF UC_I", "SSF UC_D",
            "BSSF UC_I", "BSSF UC_D",
            "NIX UC_I", "NIX UC_D",
        ],
        rows=rows,
        notes=[
            "BSSF UC_I = F+1 is the paper's worst case; the simulator's "
            "expected-case insert touches ~m_t+1 pages (§6)"
        ],
    )


def optimal_m_table(params: Optional[CostParameters] = None) -> TableResult:
    """Companion table: m_opt per (F, Dt) — the text-retrieval default."""
    params = params or PAPER_PARAMETERS
    rows = []
    for Dt, design_points in sorted(PAPER_DESIGN_POINTS.items()):
        for F, small_m in design_points:
            rows.append([Dt, F, rounded_optimal_m(F, Dt), small_m])
    return TableResult(
        experiment_id="optimal_m",
        title="m_opt (eq. 3) vs the paper's recommended small m",
        columns=["Dt", "F", "m_opt", "recommended m"],
        rows=rows,
    )
