"""Extension experiments beyond the paper's published artifacts.

1. ``variable_cardinality`` — the §6 future-work analysis: how a spread of
   target-set sizes (same mean) changes retrieval costs vs the fixed-Dt
   Section 4 model.
2. ``false_drop_validation`` — measure actual false-drop rates of the real
   hashing scheme on the simulator and compare them with equations (2)
   and (6); the theory/practice bridge the paper assumes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.false_drop import false_drop_subset, false_drop_superset
from repro.costmodel.actual_drop import subset_probability, superset_probability
from repro.costmodel.parameters import PAPER_PARAMETERS, CostParameters
from repro.costmodel.variable import (
    CardinalityDistribution,
    VariableCardinalityModel,
)
from repro.experiments.empirical import EmpiricalConfig, Testbed
from repro.experiments.result import SeriesResult, TableResult


def variable_cardinality(
    params: Optional[CostParameters] = None,
    F: int = 500,
    m: int = 2,
    mean_dt: int = 10,
) -> SeriesResult:
    """Fixed Dt vs a mean-preserving uniform spread — BSSF ``T ⊇ Q`` cost."""
    params = params or PAPER_PARAMETERS
    fixed = VariableCardinalityModel(
        params, CardinalityDistribution.fixed(mean_dt), F, m
    )
    spread = VariableCardinalityModel(
        params, CardinalityDistribution.uniform(1, 2 * mean_dt - 1), F, m
    )
    dq_values = list(range(1, 11))
    return SeriesResult(
        experiment_id="variable_cardinality",
        title=(
            f"Variable target cardinality (§6 future work): BSSF F={F} m={m}, "
            f"E[Dt]={mean_dt}"
        ),
        x_label="Dq",
        x_values=dq_values,
        series={
            f"fixed Dt={mean_dt}": [
                fixed.bssf_retrieval_superset(dq) for dq in dq_values
            ],
            f"uniform Dt∈[1,{2 * mean_dt - 1}]": [
                spread.bssf_retrieval_superset(dq) for dq in dq_values
            ],
        },
        notes=[
            "same mean cardinality; the spread costs more because the "
            "false-drop probability is convex in Dt (big sets drop far "
            "more often than small sets save)"
        ],
    )


def false_drop_validation(
    config: Optional[EmpiricalConfig] = None,
    superset_dq: Sequence[int] = (1, 2, 3),
    subset_dq: Sequence[int] = (30, 60, 100),
    queries_per_point: int = 4,
    testbed: Optional[Testbed] = None,
) -> TableResult:
    """Measured vs predicted false-drop probability on the simulator.

    For each query the SSF search reports its raw drop count; subtracting
    the true answers (drop resolution) and dividing by ``N − actual`` gives
    the measured ``Fd`` of §3.2's definition, compared here against
    equations (2)/(6) at the testbed's parameters.
    """
    config = config or EmpiricalConfig(
        num_objects=2048,
        domain_cardinality=832,
        signature_bits=64,  # small F so false drops are actually observable
        bits_per_element=2,
        queries_per_point=queries_per_point,
    )
    testbed = testbed or Testbed.build(config)
    ssf = testbed.database.index("EvalObject", "elements", "ssf")
    N = config.num_objects
    F, m, Dt = (
        config.signature_bits,
        config.bits_per_element,
        config.target_cardinality,
    )
    V = config.domain_cardinality

    rows = []
    for mode, dq_values in (("T⊇Q", superset_dq), ("T⊆Q", subset_dq)):
        for dq in dq_values:
            measured_total = 0.0
            for _ in range(queries_per_point):
                query = testbed.generator.random_query_set(dq)
                if mode == "T⊇Q":
                    result = ssf.search_superset(query)
                    actual = sum(
                        1 for oid in result.candidates
                        if query
                        <= testbed.database.objects.set_attribute_value(
                            oid, "elements"
                        )
                    )
                else:
                    result = ssf.search_subset(query)
                    actual = sum(
                        1 for oid in result.candidates
                        if testbed.database.objects.set_attribute_value(
                            oid, "elements"
                        )
                        <= query
                    )
                false_drops = result.detail["drops"] - actual
                denominator = N - actual
                measured_total += false_drops / denominator if denominator else 0.0
            measured = measured_total / queries_per_point
            if mode == "T⊇Q":
                predicted = false_drop_superset(F, m, Dt, dq, exact=True)
                actual_rate = superset_probability(V, Dt, dq)
            else:
                predicted = false_drop_subset(F, m, Dt, dq, exact=True)
                actual_rate = subset_probability(V, Dt, dq)
            rows.append(
                [mode, dq, round(measured, 6), round(predicted, 6),
                 round(N * actual_rate, 3)]
            )
    return TableResult(
        experiment_id="false_drop_validation",
        title=(
            f"Measured vs predicted false-drop probability "
            f"(N={N}, V={V}, Dt={Dt}, F={F}, m={m})"
        ),
        columns=["query type", "Dq", "measured Fd", "predicted Fd", "E[actual]"],
        rows=rows,
        notes=[
            "measured = (drops − actual) / (N − actual), averaged over "
            f"{queries_per_point} random queries; predicted = eq. (2)/(6) "
            "in exact binomial form",
            "eq. (6) treats the m·Dt target bits as independent; at the "
            "small F used here (so drops are observable at all) the true "
            "signature weight is below m·Dt, biasing the prediction low "
            "by up to ~2× for T⊆Q — at the paper's F ≥ 250 the bias "
            "vanishes",
        ],
    )
