"""Scatter-gather query routing over hash-partitioned shards.

:class:`ShardRouter` is a :class:`~repro.serving.QueryBackend` whose
"database" is N shard backends — in-process
:class:`~repro.server.service.QueryService` instances, snapshot-replica
process services, plain :class:`~repro.client.RemoteClient` connections,
or whole replicated fleets behind a
:class:`~repro.client.failover.FailoverClient`. Every query fans out to
all shards (the set predicates are evaluated per object, so each shard
answers for exactly its hash slice), and the router merges: rows in OID
order, statistics counters summed, per-shard :class:`IOSnapshot` deltas
added file by file. With healthy shards over a
:func:`~repro.sharding.partition_database` split, the merged rows and the
object-file page counts are bit-identical to the unsharded answers.

The robustness policy — the reason this module exists — wraps every
sub-request:

* **Deadline budget.** One ``deadline_ms`` (from the options or the
  router default) bounds the whole scatter-gather; each sub-request and
  retry ships the *remaining* budget, and a shard that cannot answer in
  time counts as missing rather than hanging the request.
* **Bounded retries with jittered backoff**, per shard, for transport-
  class failures only (a parse error is the same on every shard and
  propagates immediately).
* **Hedged reads** (optional): when a shard's response is slower than the
  hedge delay — a fixed value, or ``"p99"`` of that shard's recent
  latencies — a backup sub-request races it and the first answer wins.
  Only the winner's rows and I/O are merged, so accounting never double
  counts.
* **Per-shard circuit breakers** with jittered cool-downs; an open
  breaker fast-fails the shard in degraded mode (strict mode still
  probes — it must either get a complete answer or fail loudly anyway).
* **Partial-result policy.** ``partial_results="strict"`` raises a typed
  :class:`~repro.errors.ShardUnavailableError` the moment a complete
  answer is impossible; ``"degraded"`` returns the merged survivors with
  ``partial=True`` and the missing-shard list — an exact *subset* of the
  complete answer (disjoint slices can under-report, never invent rows).

Traffic feeds the ``router.*`` metrics and, when tracing is requested,
one ``router.execute`` span carrying per-shard outcomes.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import wait as futures_wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.errors import (
    AdmissionError,
    ConfigurationError,
    ConnectionLostError,
    DeadlineExceededError,
    ShardUnavailableError,
    TransientIOError,
)
from repro.obs.metrics import REGISTRY
from repro.obs.tracer import Tracer
from repro.query.executor import QueryResult, QueryStatistics
from repro.query.options import ExecutionOptions
from repro.storage.faults import RetryPolicy

__all__ = ["ShardRouter", "DEFAULT_SHARD_RETRY", "merge_results"]

#: per-shard sub-request budget: quick retries with decorrelating jitter
DEFAULT_SHARD_RETRY = RetryPolicy(
    max_attempts=3, backoff_seconds=0.02, multiplier=2.0, jitter_seconds=0.02
)

#: failures worth retrying / routing around — transport and overload, not
#: query semantics (a parse error is identical on every shard)
_SHARD_FAULTS = (
    ConnectionLostError,
    ConnectionError,
    socket.timeout,
    OSError,
    AdmissionError,
    TransientIOError,
)

#: latency window per shard for the adaptive ("p99") hedge delay
_LATENCY_WINDOW = 64


class _ShardDown(Exception):
    """Internal: one shard stayed unavailable through its retry budget."""

    def __init__(self, cause: BaseException):
        super().__init__(str(cause))
        self.cause = cause


class _ShardState:
    """Router-side bookkeeping for one shard: breaker + latency window."""

    __slots__ = (
        "name",
        "backend",
        "consecutive_failures",
        "open_until",
        "latencies",
        "requests",
        "failures",
        "lock",
    )

    def __init__(self, name: str, backend: Any):
        self.name = name
        self.backend = backend
        self.consecutive_failures = 0
        self.open_until = 0.0
        self.latencies: List[float] = []
        self.requests = 0
        self.failures = 0
        self.lock = threading.Lock()

    def breaker_open(self, now: float) -> bool:
        return now < self.open_until

    def note_success(self, elapsed: float) -> None:
        with self.lock:
            self.consecutive_failures = 0
            self.open_until = 0.0
            self.latencies.append(elapsed)
            if len(self.latencies) > _LATENCY_WINDOW:
                del self.latencies[: -_LATENCY_WINDOW]

    def note_failure(
        self, threshold: int, cooldown_seconds: float, now: float
    ) -> None:
        with self.lock:
            self.consecutive_failures += 1
            if self.consecutive_failures >= threshold:
                past = min(self.consecutive_failures - threshold, 6)
                cooldown = min(cooldown_seconds * (2.0 ** past), 5.0)
                # Jittered (±15%) for the same reason the failover client
                # jitters: a fleet of routers must not re-probe a
                # recovered shard on the same tick.
                self.open_until = now + cooldown * random.uniform(0.85, 1.15)

    def p99_seconds(self) -> Optional[float]:
        with self.lock:
            if len(self.latencies) < 8:
                return None
            ordered = sorted(self.latencies)
            return ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]


def merge_results(
    results: Sequence[QueryResult],
    *,
    missing: Sequence[str] = (),
    elapsed_seconds: float = 0.0,
) -> QueryResult:
    """Union per-shard answers into one :class:`QueryResult`.

    Rows sort by OID (disjoint hash slices — a plain merge, no dedup);
    candidate / false-drop / result counters sum exactly because the
    signature test is per object; I/O snapshots add file by file, which
    keeps the object-file page counts equal to an unsharded run (each
    qualified candidate costs one logical object-page read on whichever
    side it lives).
    """
    rows = sorted(
        (row for result in results for row in result.rows),
        key=lambda row: row[0].to_int(),
    )
    io = None
    for result in results:
        snapshot = result.statistics.io
        if snapshot is not None:
            io = snapshot if io is None else io + snapshot
    plans = sorted({result.statistics.plan for result in results})
    plan = plans[0] if len(plans) == 1 else f"mixed({', '.join(plans)})"
    statistics = QueryStatistics(
        plan=plan,
        candidates=sum(r.statistics.candidates for r in results),
        false_drops=sum(r.statistics.false_drops for r in results),
        results=sum(r.statistics.results for r in results),
        io=io,
        elapsed_seconds=elapsed_seconds,
        detail={
            "sharding": {
                "merged": len(results),
                "missing": list(missing),
            }
        },
    )
    return QueryResult(
        rows=rows,
        statistics=statistics,
        partial=bool(missing),
        missing_shards=list(missing),
    )


class ShardRouter:
    """One ``QueryBackend`` over N shard backends (scatter-gather).

    ``shards``
        The shard backends, in shard-index order (index i serves hash
        slice i). Anything with ``execute(text, options)`` /
        ``execute_many`` / ``close`` qualifies: services, remote clients,
        failover clients, nested routers.
    ``partial_results``
        ``"strict"`` (default) — a missing shard raises
        :class:`~repro.errors.ShardUnavailableError`; ``"degraded"`` —
        merged survivors come back flagged ``partial=True``.
    ``deadline_ms``
        Default per-request budget when the options carry none;
        ``None`` means unbounded.
    ``retry_policy``
        Per-shard sub-request retries (transport-class failures only).
    ``hedge_delay_seconds``
        ``None`` disables hedging; a float hedges after that fixed delay;
        ``"p99"`` adapts to each shard's recent latency (no hedging until
        a window accumulates).
    ``failure_threshold`` / ``breaker_cooldown_seconds``
        Consecutive sub-request failures before a shard's breaker opens,
        and the base cool-down (exponential per further failure, jittered,
        capped at 5s).
    ``owns_shards``
        Close the shard backends with the router (default); pass
        ``False`` when the caller manages their lifecycle.
    """

    def __init__(
        self,
        shards: Sequence[Any],
        *,
        partial_results: str = "strict",
        deadline_ms: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        hedge_delay_seconds: Union[float, str, None] = None,
        failure_threshold: int = 3,
        breaker_cooldown_seconds: float = 0.5,
        max_workers: Optional[int] = None,
        owns_shards: bool = True,
    ):
        shards = list(shards)
        if not shards:
            raise ConfigurationError("ShardRouter needs at least one shard")
        if partial_results not in ("strict", "degraded"):
            raise ConfigurationError(
                f"partial_results must be 'strict' or 'degraded', "
                f"got {partial_results!r}"
            )
        if deadline_ms is not None and deadline_ms <= 0:
            raise ConfigurationError(
                f"deadline_ms must be positive, got {deadline_ms}"
            )
        if isinstance(hedge_delay_seconds, str) and hedge_delay_seconds != "p99":
            raise ConfigurationError(
                "hedge_delay_seconds must be a float, 'p99', or None, "
                f"got {hedge_delay_seconds!r}"
            )
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.partial_results = partial_results
        self.deadline_ms = deadline_ms
        self.retry_policy = retry_policy or DEFAULT_SHARD_RETRY
        self.hedge_delay_seconds = hedge_delay_seconds
        self.failure_threshold = failure_threshold
        self.breaker_cooldown_seconds = breaker_cooldown_seconds
        self._owns_shards = owns_shards
        self._shards = [
            _ShardState(getattr(b, "url", None) or f"shard-{i}", b)
            for i, b in enumerate(shards)
        ]
        self._closed = False
        self._lock = threading.Lock()
        # Fan-out threads (one per shard per in-flight request) and hedge
        # backups run on separate pools so a hedging fan-out thread can
        # never deadlock waiting for a slot its own request occupies.
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers or 2 * len(shards),
            thread_name_prefix="shard-router",
        )
        self._hedge_pool = ThreadPoolExecutor(
            max_workers=2 * len(shards),
            thread_name_prefix="shard-hedge",
        )
        self._submit_pool: Optional[ThreadPoolExecutor] = None
        self._m_requests = REGISTRY.counter("router.requests")
        self._m_sub_requests = REGISTRY.counter("router.sub_requests")
        self._m_retries = REGISTRY.counter("router.retries")
        self._m_shard_failures = REGISTRY.counter("router.shard_failures")
        self._m_partial = REGISTRY.counter("router.partial_results")
        self._m_hedges = REGISTRY.counter("router.hedges")
        self._m_hedge_wins = REGISTRY.counter("router.hedge_wins")
        self._m_breaker_skips = REGISTRY.counter("router.breaker_skips")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def url(self) -> str:
        """The shard map as one ``;``-joined spec (``connect`` syntax)."""
        return ";".join(state.name for state in self._shards)

    def status(self) -> List[Dict[str, Any]]:
        """One entry per shard: health, breaker, and latency summary."""
        now = time.monotonic()
        return [
            {
                "shard": index,
                "name": state.name,
                "requests": state.requests,
                "failures": state.failures,
                "consecutive_failures": state.consecutive_failures,
                "breaker_open": state.breaker_open(now),
                "p99_seconds": state.p99_seconds(),
            }
            for index, state in enumerate(self._shards)
        ]

    @property
    def server_info(self) -> Dict[str, Any]:
        """Shell-facing identity (mirrors ``RemoteClient.server_info``)."""
        return {"server": "shard-router", "shards": self.shard_count}

    def ping(self) -> Dict[str, Any]:
        """Ping every shard that supports it; in-process shards are free."""
        reachable = 0
        for state in self._shards:
            probe = getattr(state.backend, "ping", None)
            if probe is None:
                reachable += 1  # in-process backend: nothing to reach
                continue
            probe()  # surfaces the first unreachable shard's error
            reachable += 1
        return {"shards": self.shard_count, "reachable": reachable}

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def execute(
        self, text: str, options: Optional[ExecutionOptions] = None
    ) -> QueryResult:
        """Scatter one query to every shard and merge the answers."""
        return self._scatter(
            lambda state, sub_options: state.backend.execute(text, sub_options),
            options,
            merge=merge_results,
        )

    def execute_many(
        self,
        queries: List[str],
        options: Optional[ExecutionOptions] = None,
    ) -> List[QueryResult]:
        """Scatter an ordered batch — one round trip per shard."""
        if not queries:
            return []

        def merge_batch(
            per_shard: Sequence[List[QueryResult]],
            *,
            missing: Sequence[str] = (),
            elapsed_seconds: float = 0.0,
        ) -> List[QueryResult]:
            return [
                merge_results(
                    [shard_results[i] for shard_results in per_shard],
                    missing=missing,
                    elapsed_seconds=elapsed_seconds,
                )
                for i in range(len(queries))
            ]

        return self._scatter(
            lambda state, sub_options: state.backend.execute_many(
                queries, sub_options
            ),
            options,
            merge=merge_batch,
        )

    def submit(
        self, text: str, options: Optional[ExecutionOptions] = None
    ) -> "Future[QueryResult]":
        """Enqueue one scatter-gather; resolves off-thread."""
        with self._lock:
            if self._closed:
                raise ConnectionLostError("shard router is closed")
            if self._submit_pool is None:
                self._submit_pool = ThreadPoolExecutor(
                    max_workers=max(2, len(self._shards)),
                    thread_name_prefix="router-submit",
                )
            pool = self._submit_pool
        return pool.submit(self.execute, text, options)

    # ------------------------------------------------------------------
    # Scatter-gather core
    # ------------------------------------------------------------------
    def _scatter(
        self,
        call: Callable[[_ShardState, Optional[ExecutionOptions]], Any],
        options: Optional[ExecutionOptions],
        merge: Callable[..., Any],
    ):
        if self._closed:
            raise ConnectionLostError("shard router is closed")
        self._m_requests.inc()
        opts = options or ExecutionOptions()
        budget_ms = (
            opts.deadline_ms if opts.deadline_ms is not None else self.deadline_ms
        )
        deadline_at = (
            time.monotonic() + budget_ms / 1000.0
            if budget_ms is not None
            else None
        )
        tracer = (
            (opts.tracer or Tracer()) if opts.tracing_requested else None
        )
        started = time.perf_counter()
        strict = self.partial_results == "strict"
        now = time.monotonic()
        span = (
            tracer.span(
                "router.execute",
                shards=len(self._shards),
                mode=self.partial_results,
            )
            if tracer is not None
            else None
        )
        if span is not None:
            span.__enter__()
        try:
            futures: Dict[int, "Future[Any]"] = {}
            missing: Dict[int, BaseException] = {}
            for index, state in enumerate(self._shards):
                if not strict and state.breaker_open(now):
                    # Degraded mode fast-fails a tripped shard; strict
                    # mode probes anyway — it either completes the answer
                    # (half-open success) or fails loudly, which it would
                    # have done regardless.
                    self._m_breaker_skips.inc()
                    missing[index] = ConnectionLostError(
                        f"circuit breaker open for {state.name}"
                    )
                    continue
                futures[index] = self._pool.submit(
                    self._call_shard, state, call, opts, deadline_at
                )
            answers: Dict[int, Any] = {}
            for index, future in futures.items():
                remaining = (
                    None
                    if deadline_at is None
                    else max(0.0, deadline_at - time.monotonic())
                )
                try:
                    answers[index] = future.result(timeout=remaining)
                except FutureTimeoutError:
                    # The worker thread keeps running (its own sub-request
                    # deadline will cut it short); the gather moves on.
                    future.cancel()
                    missing[index] = DeadlineExceededError(
                        f"shard {self._shards[index].name} missed the "
                        f"{budget_ms:.0f}ms deadline"
                    )
                except _ShardDown as down:
                    missing[index] = down.cause
            elapsed = time.perf_counter() - started
            missing_names = [self._shards[i].name for i in sorted(missing)]
            if span is not None:
                span.set("answered", sorted(answers))
                span.set("missing", missing_names)
                if missing:
                    span.set(
                        "missing_causes",
                        {
                            self._shards[i].name: type(exc).__name__
                            for i, exc in missing.items()
                        },
                    )
            if missing:
                self._m_shard_failures.inc(len(missing))
                if strict:
                    causes = "; ".join(
                        f"{self._shards[i].name}: {exc}"
                        for i, exc in sorted(missing.items())
                    )
                    raise ShardUnavailableError(
                        f"{len(missing)} of {len(self._shards)} shard(s) "
                        f"unavailable ({causes})",
                        missing_shards=missing_names,
                    )
                self._m_partial.inc()
            merged = merge(
                [answers[i] for i in sorted(answers)],
                missing=missing_names,
                elapsed_seconds=elapsed,
            )
            if span is not None and isinstance(merged, QueryResult):
                merged.trace = span
            return merged
        finally:
            if span is not None:
                span.__exit__(None, None, None)

    def _call_shard(
        self,
        state: _ShardState,
        call: Callable[[_ShardState, Optional[ExecutionOptions]], Any],
        options: ExecutionOptions,
        deadline_at: Optional[float],
    ):
        """One shard's sub-request: retries, backoff, hedging, breaker.

        Returns the backend's answer or raises :class:`_ShardDown` with
        the last transport-class cause. Non-transport errors (parse,
        planning, …) propagate as themselves — they are properties of the
        query, not of this shard's health.
        """
        policy = self.retry_policy
        last_fault: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                self._m_retries.inc()
                delay = policy.sleep_for(attempt - 1)
                if deadline_at is not None:
                    delay = min(delay, max(0.0, deadline_at - time.monotonic()))
                if delay > 0:
                    time.sleep(delay)
            remaining = (
                None
                if deadline_at is None
                else deadline_at - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                raise _ShardDown(
                    last_fault
                    or DeadlineExceededError(
                        f"deadline budget exhausted before shard "
                        f"{state.name} could be asked"
                    )
                )
            sub_options = (
                options
                if remaining is None
                else options.evolve(deadline_ms=remaining * 1000.0)
            )
            state.requests += 1
            self._m_sub_requests.inc()
            started = time.perf_counter()
            try:
                answer = self._one_attempt(state, call, sub_options, remaining)
            except _SHARD_FAULTS as exc:
                last_fault = exc
                state.failures += 1
                state.note_failure(
                    self.failure_threshold,
                    self.breaker_cooldown_seconds,
                    time.monotonic(),
                )
                continue
            except DeadlineExceededError as exc:
                # The shard (or its server) rejected an exhausted budget;
                # retrying cannot help — the budget only shrinks.
                state.failures += 1
                raise _ShardDown(exc)
            state.note_success(time.perf_counter() - started)
            return answer
        assert last_fault is not None
        raise _ShardDown(last_fault)

    def _one_attempt(
        self,
        state: _ShardState,
        call: Callable[[_ShardState, Optional[ExecutionOptions]], Any],
        sub_options: ExecutionOptions,
        remaining: Optional[float],
    ):
        """One sub-request, hedged when configured and worthwhile."""
        hedge_after = self._hedge_delay(state, remaining)
        if hedge_after is None:
            return call(state, sub_options)
        attempt_deadline = (
            None if remaining is None else time.monotonic() + remaining
        )
        primary = self._hedge_pool.submit(call, state, sub_options)
        try:
            return primary.result(timeout=hedge_after)
        except FutureTimeoutError:
            pass  # slow: race a backup against it
        self._m_hedges.inc()
        backup = self._hedge_pool.submit(call, state, sub_options)
        pending = {primary, backup}
        last_fault: Optional[BaseException] = None
        while pending:
            timeout = (
                None
                if attempt_deadline is None
                else max(0.0, attempt_deadline - time.monotonic())
            )
            done, not_done = futures_wait(
                pending, timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                self._abandon(not_done)
                raise DeadlineExceededError(
                    f"shard {state.name} missed its deadline "
                    f"(hedged attempt included)"
                )
            for future in done:
                pending.discard(future)
                fault = future.exception()
                if fault is None:
                    if future is backup:
                        self._m_hedge_wins.inc()
                    self._abandon(pending)
                    return future.result()
                last_fault = fault
        assert last_fault is not None
        raise last_fault  # both racers failed; the retry loop classifies

    @staticmethod
    def _abandon(futures) -> None:
        """Detach losing racers: swallow their eventual outcome.

        A loser's result is never merged (no double-counted rows or I/O)
        and its exception must not surface as an unretrieved-future
        warning.
        """
        for future in futures:
            future.cancel()
            future.add_done_callback(lambda f: f.exception())

    def _hedge_delay(
        self, state: _ShardState, remaining: Optional[float]
    ) -> Optional[float]:
        delay = self.hedge_delay_seconds
        if delay is None:
            return None
        if delay == "p99":
            adaptive = state.p99_seconds()
            if adaptive is None:
                return None  # not enough history to hedge sensibly yet
            delay = adaptive
        if remaining is not None and delay >= remaining:
            return None  # the hedge would fire after the deadline anyway
        return float(delay)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the router down; closes owned shards. Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            submit_pool, self._submit_pool = self._submit_pool, None
        if submit_pool is not None:
            submit_pool.shutdown(wait=True)
        self._pool.shutdown(wait=True)
        self._hedge_pool.shutdown(wait=True)
        if self._owns_shards:
            for state in self._shards:
                close = getattr(state.backend, "close", None)
                if close is not None:
                    close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"ShardRouter({len(self._shards)} shard(s), "
            f"{self.partial_results}, {state})"
        )
