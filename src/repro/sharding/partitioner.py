"""Hash partitioning: which shard owns which object.

The paper's set predicates (``T ⊇ Q``, ``T ⊆ Q``) are evaluated object by
object, so a horizontal partitioning by OID splits the work without
changing any answer: every shard runs the same signature test over its
slice and the union of the drops is exactly the unsharded drop set.

:class:`HashPartitioner` is the placement function — a process-stable hash
of ``(class name, OID)`` modulo the shard count, identical across runs,
machines and Python versions (CRC32, not ``hash()``, which is seeded per
process). :func:`partition_database` applies it: given one populated
:class:`~repro.objects.database.Database`, it builds N shard databases
with the same schemas and access facilities and places every object on
its owner shard *under its original OID* (the explicit-OID insert path),
so sharded results are row-for-row identical to unsharded ones.
"""

from __future__ import annotations

import zlib
from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from repro.objects.database import Database
from repro.objects.oid import OID

__all__ = ["HashPartitioner", "partition_database"]


class HashPartitioner:
    """Stable ``(class, OID) -> shard index`` placement."""

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.num_shards = num_shards

    def shard_of(self, class_name: str, oid: OID) -> int:
        """The shard that owns this object; stable across processes."""
        key = f"{class_name}:{oid.to_int()}".encode("utf-8")
        return zlib.crc32(key) % self.num_shards

    def __repr__(self) -> str:
        return f"HashPartitioner(num_shards={self.num_shards})"


def _replicate_schema(source: Database, shard: Database) -> None:
    """Mirror class definitions and access facilities onto one shard.

    Classes are defined in ascending class-id order so the shard mints the
    *same* class ids as the source — OIDs embed the class id, and the
    explicit-OID insert path refuses a mismatch.
    """
    ids = source.objects.class_ids()
    for class_name in sorted(ids, key=ids.__getitem__):
        shard.define_class(source.schema(class_name))
    for class_name, attribute in source.indexed_paths():
        for name, facility in source.indexes_on(class_name, attribute).items():
            if getattr(facility, "is_lsm", False):
                creator = (
                    shard.create_ssf_index
                    if facility.kind == "ssf"
                    else shard.create_bssf_index
                )
                kwargs = dict(
                    seed=facility.scheme.seed,
                    lsm=True,
                    flush_threshold=facility.flush_threshold,
                    fanout=facility.fanout,
                )
                if facility.kind == "bssf":
                    kwargs["worst_case_insert"] = facility.worst_case_insert
                creator(
                    class_name,
                    attribute,
                    facility.scheme.signature_bits,
                    facility.scheme.bits_per_element,
                    **kwargs,
                )
            elif name == "ssf":
                shard.create_ssf_index(
                    class_name,
                    attribute,
                    facility.scheme.signature_bits,
                    facility.scheme.bits_per_element,
                    seed=facility.scheme.seed,
                )
            elif name == "bssf":
                shard.create_bssf_index(
                    class_name,
                    attribute,
                    facility.scheme.signature_bits,
                    facility.scheme.bits_per_element,
                    seed=facility.scheme.seed,
                    worst_case_insert=facility.worst_case_insert,
                )
            elif name == "nix":
                shard.create_nested_index(
                    class_name,
                    attribute,
                    overflow_chains=facility.overflow_chains,
                )
            else:
                raise ConfigurationError(
                    f"cannot replicate unknown facility {name!r} on "
                    f"{class_name}.{attribute} onto a shard"
                )


def partition_database(
    source: Database,
    num_shards: int,
    *,
    partitioner: Optional[HashPartitioner] = None,
    shard_factory: Optional[Callable[[int], Database]] = None,
) -> List[Database]:
    """Split one database into ``num_shards`` hash-partitioned databases.

    Each shard receives the full schema and the same facilities
    (identical signature scheme parameters), then exactly the objects the
    partitioner assigns it, inserted under their original OIDs. Facilities
    are created *before* the objects arrive, so per-object index
    maintenance runs in the same OID order as an unsharded load.

    ``shard_factory(index)`` builds each empty shard; the default mirrors
    the source's page size with in-memory durability (callers that want
    WAL-mode shards pass their own factory).
    """
    partitioner = partitioner or HashPartitioner(num_shards)
    if partitioner.num_shards != num_shards:
        raise ConfigurationError(
            f"partitioner covers {partitioner.num_shards} shard(s), "
            f"but {num_shards} were requested"
        )
    if shard_factory is None:
        page_size = source.storage.page_size

        def shard_factory(_index: int) -> Database:
            return Database(page_size=page_size, durability="none")

    shards = [shard_factory(index) for index in range(num_shards)]
    for shard in shards:
        _replicate_schema(source, shard)
    for class_name in source.objects.class_names():
        for oid, values in source.objects.scan(class_name):
            owner = partitioner.shard_of(class_name, oid)
            shards[owner].insert_with_oid(class_name, oid, values)
    return shards
