"""Horizontal sharding: hash partitioning plus a scatter-gather router.

The placement function and the loader live in
:mod:`repro.sharding.partitioner`; the fault-tolerant
:class:`~repro.serving.QueryBackend` that fans queries out over the
shards and merges the answers lives in :mod:`repro.sharding.router`.

Typical in-process use::

    from repro.sharding import ShardRouter, partition_database

    shards = partition_database(db, 4)
    router = ShardRouter(
        [QueryService(s, max_workers=2) for s in shards],
        partial_results="degraded",
        deadline_ms=500,
    )
    result = router.execute("find Student superset hobbies {chess}")

Networked topologies come from :func:`repro.serving.connect` with a
``;``-separated shard spec (each shard may itself be a comma-separated
replicated fleet) or from ``sigfile-repro route`` on the command line.
"""

from repro.sharding.partitioner import HashPartitioner, partition_database
from repro.sharding.router import (
    DEFAULT_SHARD_RETRY,
    ShardRouter,
    merge_results,
)

__all__ = [
    "HashPartitioner",
    "partition_database",
    "ShardRouter",
    "DEFAULT_SHARD_RETRY",
    "merge_results",
]
