"""One serving surface: the ``QueryBackend`` protocol and its factories.

Three ways of serving queries grew up side by side — the thread-pool
:class:`~repro.server.service.QueryService`, the snapshot-replica
:class:`~repro.server.process.ProcessQueryService`, and the networked
:class:`~repro.client.RemoteClient`. They now share one structural
contract, :class:`QueryBackend`::

    execute(text, options=None)       -> QueryResult
    execute_many(queries, options=None) -> List[QueryResult]
    submit(text, options=None)        -> Future[QueryResult]
    close()                           # also a context manager

and two blessed constructors pick the right one:

:func:`connect`
    ``connect("sigfile://host:port")`` → a :class:`RemoteClient`.

:func:`make_service`
    ``make_service(db_or_url, mode=...)`` → any backend, keyed by
    :class:`~repro.query.options.ExecutionMode` (``SERIAL`` and ``THREAD``
    are a :class:`QueryService`; ``PROCESS`` a
    :class:`ProcessQueryService`; ``REMOTE`` — or a URL instead of a
    database — a :class:`RemoteClient`).

Direct construction of the three classes keeps working; the factories are
the documented entry point, and legacy keyword spellings (``workers=``,
``process_workers=`` — the pre-unification CLI vocabulary) are accepted
for one release with a ``DeprecationWarning``, mirroring the
``ExecutionOptions`` migration.
"""

from __future__ import annotations

import warnings
from concurrent.futures import Future
from typing import Any, List, Optional, Protocol, Union, runtime_checkable

from repro.client import RemoteClient
from repro.errors import ConfigurationError
from repro.query.executor import QueryResult
from repro.query.options import ExecutionMode, ExecutionOptions
from repro.server.process import ProcessQueryService
from repro.server.service import QueryService

__all__ = ["QueryBackend", "connect", "make_service"]


@runtime_checkable
class QueryBackend(Protocol):
    """Structural contract every serving backend satisfies.

    ``isinstance(obj, QueryBackend)`` checks the method surface at
    runtime; the conformance test suite checks the behaviour (ordering,
    context-manager semantics, error classes).
    """

    def execute(
        self, text: str, options: Optional[ExecutionOptions] = None
    ) -> QueryResult:
        """Run one query text and block for its result."""
        ...

    def execute_many(
        self,
        queries: List[str],
        options: Optional[ExecutionOptions] = None,
    ) -> List[QueryResult]:
        """Run an ordered batch; results line up with ``queries``."""
        ...

    def submit(
        self, text: str, options: Optional[ExecutionOptions] = None
    ) -> "Future[QueryResult]":
        """Enqueue one query; returns a future for its result."""
        ...

    def close(self) -> None:
        """Release the backend's resources; idempotent."""
        ...

    def __enter__(self) -> "QueryBackend":
        ...

    def __exit__(self, exc_type, exc, tb) -> bool:
        ...


#: ``connect`` keywords that configure the router, not its member clients
_ROUTER_KEYS = (
    "partial_results",
    "deadline_ms",
    "hedge_delay_seconds",
    "shard_retry_policy",
    "breaker_cooldown_seconds",
)


def connect(url, **kwargs: Any):
    """Open a remote backend: one URL, a replicated fleet, or a shard map.

    A single ``sigfile://host:port`` URL (scheme optional; port defaults
    to :data:`repro.wire.DEFAULT_PORT`) opens a
    :class:`~repro.client.RemoteClient`. A list/tuple of URLs — or one
    string with commas — opens a
    :class:`~repro.client.failover.FailoverClient` that discovers which
    endpoint is the primary and routes around failures. Keyword arguments
    — ``token``, ``pool_size``, ``retry_policy``, timeouts, and (fleet
    only) ``prefer_replicas`` / ``failure_threshold`` — pass through to
    the chosen client.

    A ``;``-separated string — or a list whose elements are themselves
    lists/comma-strings — is a *shard map*: each ``;`` segment is one
    shard (itself a single server or a replicated fleet), and the result
    is a :class:`~repro.sharding.ShardRouter` over per-shard clients
    built by this same function. Router policy keywords
    (``partial_results``, ``deadline_ms``, ``hedge_delay_seconds``,
    ``shard_retry_policy`` — the router's ``retry_policy`` —
    ``breaker_cooldown_seconds``) configure the router; everything else
    passes through to every member client::

        connect("s0a,s0b;s1a,s1b", partial_results="degraded")
    """
    if isinstance(url, str) and ";" in url:
        # A ';' always means sharding, even when every shard is a single
        # server ("a;b;c" is three shards, not a three-way fleet).
        segments = [part.strip() for part in url.split(";") if part.strip()]
        return _shard_router(segments, kwargs)
    if isinstance(url, (list, tuple)):
        nested = any(
            isinstance(item, (list, tuple))
            or (isinstance(item, str) and "," in item)
            for item in url
        )
        if nested:
            return _shard_router(list(url), kwargs)
        # A flat list of single URLs stays a replicated fleet (the PR 8
        # behaviour); only nesting or ';' introduces sharding.
        from repro.client.failover import FailoverClient

        return FailoverClient(url, **kwargs)
    if isinstance(url, str) and "," in url:
        from repro.client.failover import FailoverClient

        return FailoverClient(url, **kwargs)
    return RemoteClient.from_url(url, **kwargs)


def _shard_router(shard_specs, kwargs):
    """A router whose shards each come from :func:`connect` recursively."""
    from repro.sharding import ShardRouter

    router_kwargs = {
        key: kwargs.pop(key) for key in _ROUTER_KEYS if key in kwargs
    }
    if "shard_retry_policy" in router_kwargs:
        router_kwargs["retry_policy"] = router_kwargs.pop("shard_retry_policy")
    shards = []
    try:
        for spec in shard_specs:
            shards.append(connect(spec, **kwargs))
    except Exception:
        for shard in shards:
            shard.close()
        raise
    return ShardRouter(shards, **router_kwargs)


#: legacy keyword -> (new keyword, implied mode); shimmed for one release
_LEGACY_SERVICE_KEYS = {
    "workers": ("max_workers", None),
    "process_workers": ("max_workers", ExecutionMode.PROCESS),
}


def make_service(
    db_or_url,
    mode: Union[ExecutionMode, str, None] = None,
    *,
    max_workers: Optional[int] = None,
    **kwargs: Any,
):
    """Build the right :class:`QueryBackend` for a database or URL.

    ``db_or_url``
        A :class:`~repro.objects.database.Database` (in-process backends),
        a ``sigfile://host:port`` string (remote), or a list of shard
        databases / backends — e.g. straight from
        :func:`repro.sharding.partition_database` — which builds a
        :class:`~repro.sharding.ShardRouter` whose members are made by
        this same factory (``mode`` / ``max_workers`` apply per shard;
        router policy keywords — ``partial_results``, ``deadline_ms``,
        ``hedge_delay_seconds``, ``shard_retry_policy``,
        ``breaker_cooldown_seconds`` — configure the router).
    ``mode``
        An :class:`~repro.query.options.ExecutionMode` or its string value
        (``"serial"`` / ``"thread"`` / ``"process"`` / ``"remote"``).
        Defaults to ``THREAD`` for a database and ``REMOTE`` for a URL;
        ``SERIAL`` is a single-worker :class:`QueryService` (admission
        control without overlap).
    ``max_workers`` and remaining keywords
        Forwarded to the chosen backend's constructor
        (``queue_depth`` / ``admission_policy`` for thread serving,
        ``batch_size`` / ``snapshot_path`` for process serving,
        ``token`` / ``pool_size`` / ``retry_policy`` for remote).
    """
    for legacy, (replacement, implied_mode) in _LEGACY_SERVICE_KEYS.items():
        if legacy in kwargs:
            warnings.warn(
                f"make_service({legacy}=...) is deprecated; pass "
                f"{replacement}="
                + (
                    f" with mode=ExecutionMode.{implied_mode.name}"
                    if implied_mode is not None
                    else ""
                ),
                DeprecationWarning,
                stacklevel=2,
            )
            value = kwargs.pop(legacy)
            if max_workers is None:
                max_workers = value
            if implied_mode is not None and mode is None:
                mode = implied_mode
    if isinstance(mode, str):
        try:
            mode = ExecutionMode(mode.lower())
        except ValueError:
            raise ConfigurationError(
                f"unknown serving mode {mode!r}; expected one of "
                f"{[m.value for m in ExecutionMode]}"
            ) from None
    if isinstance(db_or_url, (list, tuple)):
        from repro.sharding import ShardRouter

        router_kwargs = {
            key: kwargs.pop(key) for key in _ROUTER_KEYS if key in kwargs
        }
        if "shard_retry_policy" in router_kwargs:
            router_kwargs["retry_policy"] = router_kwargs.pop(
                "shard_retry_policy"
            )
        shards = []
        try:
            for member in db_or_url:
                if isinstance(member, QueryBackend):
                    # Already a backend (a service, client, or nested
                    # router): used as-is, lifecycle owned by the router.
                    shards.append(member)
                else:
                    shards.append(
                        make_service(
                            member, mode, max_workers=max_workers, **kwargs
                        )
                    )
        except Exception:
            for shard in shards:
                shard.close()
            raise
        return ShardRouter(shards, **router_kwargs)
    if isinstance(db_or_url, str):
        if mode not in (None, ExecutionMode.REMOTE):
            raise ConfigurationError(
                f"a server URL implies REMOTE serving, not {mode.value!r}"
            )
        if max_workers is not None:
            kwargs.setdefault("pool_size", max_workers)
        return connect(db_or_url, **kwargs)
    if mode is ExecutionMode.REMOTE:
        raise ConfigurationError(
            "REMOTE serving needs a sigfile://host:port URL, not a database"
        )
    if mode is ExecutionMode.PROCESS:
        return ProcessQueryService(
            db_or_url, max_workers=max_workers or 4, **kwargs
        )
    if mode is ExecutionMode.SERIAL:
        return QueryService(db_or_url, max_workers=1, **kwargs)
    # None or THREAD: the default in-process serving backend.
    return QueryService(db_or_url, max_workers=max_workers or 4, **kwargs)
