"""Whole-database snapshots: save a :class:`Database` to one file, load it
back byte-identically.

The snapshot captures the full durable state: every stored page image, the
class schemas, the OID allocator and directory, and the definitions of all
access facilities (which rehydrate against their existing files rather than
being rebuilt). In-memory-only state (buffer pool contents, I/O counters)
is deliberately not part of a snapshot — loading starts with a cold cache
and fresh statistics, like a restarted database would.

Usage::

    from repro.persistence import load_database, save_database

    save_database(db, "campus.sigdb")
    db2 = load_database("campus.sigdb")
"""

from __future__ import annotations

import base64
import os
import shutil
from typing import Any, Dict, List, Tuple, Union

from repro.access.bssf import BitSlicedSignatureFile
from repro.access.nix import NestedIndex
from repro.access.ssf import SequentialSignatureFile
from repro.core.signature import SignatureScheme
from repro.errors import CorruptPageError, StorageError
from repro.objects.database import Database
from repro.objects.object_file import ObjectFile, RecordAddress
from repro.objects.oid import OID
from repro.objects.schema import Attribute, AttributeKind, ClassSchema
from repro.obs.metrics import REGISTRY
from repro.persistence.format import read_header, read_pages, write_snapshot

PathLike = Union[str, "os.PathLike[str]"]


# ----------------------------------------------------------------------
# Saving
# ----------------------------------------------------------------------
def _index_descriptor(class_name: str, attribute: str, facility) -> Dict[str, Any]:
    base = {"class": class_name, "attribute": attribute, "facility": facility.name}
    if getattr(facility, "is_lsm", False):
        # Runs and manifest slots are ordinary storage files; the catalog
        # only needs the memtable + counters (serde blob — element sets
        # are not JSON-safe) and the scheme to re-attach them.
        base.update(
            F=facility.scheme.signature_bits,
            m=facility.scheme.bits_per_element,
            seed=facility.scheme.seed,
            entry_count=facility.entry_count,
            worst_case_insert=facility.worst_case_insert,
            file_prefix=facility.file_prefix,
            lsm=base64.b64encode(facility.state_blob()).decode("ascii"),
        )
    elif isinstance(facility, SequentialSignatureFile):
        base.update(
            F=facility.signature_bits,
            m=facility.scheme.bits_per_element,
            seed=facility.scheme.seed,
            entry_count=facility.entry_count,
            file_prefix=facility.signature_file.name.rsplit(":signatures", 1)[0],
        )
    elif isinstance(facility, BitSlicedSignatureFile):
        base.update(
            F=facility.signature_bits,
            m=facility.scheme.bits_per_element,
            seed=facility.scheme.seed,
            entry_count=facility.entry_count,
            worst_case_insert=facility.worst_case_insert,
            file_prefix=facility.oid_file.file.name.rsplit(":oids", 1)[0],
        )
    elif isinstance(facility, NestedIndex):
        base.update(
            file_prefix=facility.tree.file.name.rsplit(":btree", 1)[0],
            overflow_chains=facility.overflow_chains,
        )
    else:
        raise StorageError(
            f"cannot snapshot facility of type {type(facility).__name__}"
        )
    return base


def build_catalog(db: Database) -> Dict[str, Any]:
    """The JSON-serializable description of everything but page payloads."""
    store = db.storage.store
    objects = db.objects
    classes = []
    for name in objects.class_names():
        schema = objects.schema(name)
        classes.append(
            {
                "name": name,
                "class_id": objects._class_ids[name],
                "attributes": [
                    {
                        "name": attr.name,
                        "kind": attr.kind.value,
                        "ref_class": attr.ref_class,
                    }
                    for attr in schema.attributes
                ],
            }
        )
    indexes = [
        _index_descriptor(cls, attr, facility)
        for (cls, attr), per_path in sorted(db._indexes.items())
        for facility in per_path.values()
    ]
    wal_stamp = (
        {"checkpoint_lsn": db.wal.end_lsn} if db.wal is not None else None
    )
    return {
        **({"wal": wal_stamp} if wal_stamp is not None else {}),
        "page_size": store.page_size,
        "files": [
            {
                "name": name,
                "pages": store.num_pages(name),
                # Recorded CRC32s travel with the snapshot, so corruption of
                # the snapshot file itself (or of a page before saving) is
                # detectable at load time and by the read path afterwards.
                "checksums": store.page_checksums(name),
            }
            for name in store.file_names()
        ],
        "classes": classes,
        "next_class_id": objects._next_class_id,
        "allocator": {
            str(class_id): serial
            for class_id, serial in objects._allocator._next_serial.items()
        },
        "directory": [
            [oid.to_int(), address.page_no, address.slot]
            for oid, address in sorted(objects._directory.items())
        ],
        "indexes": indexes,
    }


def save_database(db: Database, path: PathLike) -> None:
    """Flush and snapshot ``db`` into a single file at ``path``.

    The write is atomic: the snapshot is assembled in ``<path>.tmp``,
    flushed and fsynced, then renamed over ``path`` with ``os.replace``.
    A crash (or any exception) mid-save leaves a previous snapshot at
    ``path`` untouched and cleans up the partial temporary file.

    In WAL mode this is a *fuzzy checkpoint*: ``checkpoint_begin`` is
    logged first, the snapshot's catalog is stamped with the log position
    it captures, the snapshot also lands at the WAL directory's checkpoint
    path, and only then are records before the stamp dropped from the log
    (a crash anywhere in between still recovers — either from the old
    checkpoint plus the full log, or from the new one plus the tail).
    """
    wal = db.wal if db.wal is not None and db.wal.accepts_logical_records else None
    if wal is not None:
        wal.append(["checkpoint_begin"])
    checkpoint_lsn = wal.end_lsn if wal is not None else 0
    db.storage.flush()
    catalog = build_catalog(db)
    store = db.storage.store
    payloads: List[Tuple[str, List[bytes]]] = [
        (
            entry["name"],
            [
                store.read_page(entry["name"], page_no).image()
                for page_no in range(entry["pages"])
            ],
        )
        for entry in catalog["files"]
    ]
    path_str = os.fspath(path)
    tmp_path = f"{path_str}.tmp"
    try:
        with open(tmp_path, "wb") as stream:
            write_snapshot(stream, catalog, payloads)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_path, path_str)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    if wal is not None:
        checkpoint_path = db.checkpoint_path
        if os.path.abspath(path_str) != os.path.abspath(checkpoint_path):
            _copy_file_durably(path_str, checkpoint_path)
        wal.truncate_until(checkpoint_lsn)
        wal.append(["checkpoint_end", checkpoint_lsn])
        db.wal_applied_lsn = wal.end_lsn
        REGISTRY.counter("wal.checkpoints").inc()


def _copy_file_durably(source: str, target: str) -> None:
    """Copy ``source`` over ``target`` with the same atomicity as a save."""
    tmp_path = f"{target}.tmp"
    try:
        with open(source, "rb") as src, open(tmp_path, "wb") as dst:
            shutil.copyfileobj(src, dst)
            dst.flush()
            os.fsync(dst.fileno())
        os.replace(tmp_path, target)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def _rehydrate_schema(entry: Dict[str, Any]) -> ClassSchema:
    return ClassSchema(
        name=entry["name"],
        attributes=[
            Attribute(
                name=attr["name"],
                kind=AttributeKind(attr["kind"]),
                ref_class=attr["ref_class"],
            )
            for attr in entry["attributes"]
        ],
    )


def _rehydrate_index(db: Database, descriptor: Dict[str, Any]) -> None:
    storage = db.storage
    kind = descriptor["facility"]
    class_name, attribute = descriptor["class"], descriptor["attribute"]
    prefix = descriptor["file_prefix"]
    if "lsm" in descriptor:
        from repro.lsm.facility import LSMSignatureFacility

        scheme = SignatureScheme(descriptor["F"], descriptor["m"],
                                 seed=descriptor["seed"])
        facility = LSMSignatureFacility.attach(
            storage,
            scheme,
            prefix,
            base64.b64decode(descriptor["lsm"]),
            worst_case_insert=descriptor.get("worst_case_insert", False),
        )
    elif kind == "ssf":
        scheme = SignatureScheme(descriptor["F"], descriptor["m"],
                                 seed=descriptor["seed"])
        facility = SequentialSignatureFile.attach(
            storage, scheme, prefix, descriptor["entry_count"]
        )
    elif kind == "bssf":
        scheme = SignatureScheme(descriptor["F"], descriptor["m"],
                                 seed=descriptor["seed"])
        facility = BitSlicedSignatureFile.attach(
            storage,
            scheme,
            prefix,
            descriptor["entry_count"],
            worst_case_insert=descriptor["worst_case_insert"],
        )
    elif kind == "nix":
        facility = NestedIndex.attach(
            storage, prefix,
            overflow_chains=descriptor.get("overflow_chains", False),
        )
    else:
        raise StorageError(f"unknown facility kind in snapshot: {kind!r}")
    db._indexes.setdefault((class_name, attribute), {})[facility.name] = facility


_REQUIRED_CATALOG_KEYS = (
    "page_size", "files", "classes", "next_class_id", "allocator",
    "directory", "indexes",
)


def _validate_catalog(catalog: Dict[str, Any]) -> None:
    missing = [key for key in _REQUIRED_CATALOG_KEYS if key not in catalog]
    if missing:
        raise StorageError(f"catalog is missing key(s) {missing}")
    for entry in catalog["files"]:
        if "name" not in entry or "pages" not in entry:
            raise StorageError(f"malformed file entry in catalog: {entry!r}")


def load_database(
    path: PathLike,
    pool_capacity: int = 0,
    verify_checksums: bool = True,
) -> Database:
    """Load a snapshot into a fresh :class:`Database`.

    Malformed snapshots — bad magic, unsupported version, truncated
    catalog or page section — raise :class:`StorageError` naming ``path``.
    With ``verify_checksums`` (the default) every loaded page is checked
    against the CRC32s recorded in the catalog and a mismatch raises
    :class:`~repro.errors.CorruptPageError`; ``fsck`` loads with
    ``verify_checksums=False`` so it can report the damage instead.
    """
    path_str = os.fspath(path)
    try:
        with open(path_str, "rb") as stream:
            header = read_header(stream)
            catalog = header.catalog
            _validate_catalog(catalog)
            page_images = read_pages(stream, catalog, catalog["page_size"])
    except OSError as exc:
        raise StorageError(f"cannot read snapshot {path_str!r}: {exc}") from exc
    except StorageError as exc:
        raise StorageError(f"snapshot {path_str!r}: {exc}") from exc

    db = Database(page_size=catalog["page_size"], pool_capacity=pool_capacity)
    populate_database(
        db,
        catalog,
        page_images,
        verify_checksums=verify_checksums,
        source=f"snapshot {path_str!r}",
    )
    return db


def populate_database(
    db: Database,
    catalog: Dict[str, Any],
    page_images: Dict[str, List[bytes]],
    verify_checksums: bool = True,
    source: str = "catalog",
) -> Database:
    """Rehydrate a *fresh* :class:`Database` from a catalog plus page images.

    The shared landing for snapshot loads and replication anti-entropy:
    both arrive at "a catalog and every file's page images" and need the
    same store adoption, schema/allocator/directory registration, and
    facility re-attachment. ``db`` must be empty (its page size matching
    the catalog's); ``source`` labels error messages.
    """
    store = db.storage.store
    for entry in catalog["files"]:
        store.create_file(entry["name"])
        store.adopt_pages(
            entry["name"],
            page_images[entry["name"]],
            checksums=entry.get("checksums"),
        )
        if verify_checksums:
            bad = store.corrupt_pages(entry["name"])
            if bad:
                raise CorruptPageError(
                    f"{source}: file {entry['name']!r} page(s) "
                    f"{bad} do not match their recorded checksums"
                )

    objects = db.objects
    for class_entry in sorted(catalog["classes"], key=lambda c: c["class_id"]):
        schema = _rehydrate_schema(class_entry)
        # register manually: the object file already exists in the store
        class_id = class_entry["class_id"]
        objects._schemas[schema.name] = schema
        objects._class_ids[schema.name] = class_id
        objects._class_names[class_id] = schema.name
        paged = db.storage.open_file(objects.object_file_name(schema.name))
        objects._files[schema.name] = ObjectFile(paged)
    objects._next_class_id = catalog["next_class_id"]
    objects._allocator._next_serial = {
        int(class_id): serial
        for class_id, serial in catalog["allocator"].items()
    }
    objects._directory = {
        OID.from_int(oid_int): RecordAddress(page_no, slot)
        for oid_int, page_no, slot in catalog["directory"]
    }
    live_counts = {}
    for oid in objects._directory:
        live_counts[oid.class_id] = live_counts.get(oid.class_id, 0) + 1
    objects._live_counts = live_counts

    for descriptor in catalog["indexes"]:
        _rehydrate_index(db, descriptor)
    # A WAL-stamped snapshot (a checkpoint) records the log position its
    # state reflects; replay skips records below it.
    db.wal_applied_lsn = (catalog.get("wal") or {}).get("checkpoint_lsn", 0)
    return db
