"""On-disk snapshot container format.

A database snapshot is a single binary file::

    magic "SIGREPRO"  | u16 version | u32 catalog_len | catalog (JSON, UTF-8)
    then, for every file listed in the catalog, its page images
    concatenated in catalog order (page_size bytes each).

The catalog is JSON for debuggability; everything that JSON cannot carry
natively (OIDs, byte strings) is encoded explicitly by the snapshot layer
before it reaches the catalog. Page payloads stay raw binary — they are
the bulk of a snapshot and already have their own internal formats.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, BinaryIO, Dict, List, Tuple

from repro.errors import StorageError

MAGIC = b"SIGREPRO"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sHI")


@dataclass
class SnapshotHeader:
    version: int
    catalog: Dict[str, Any]


def write_snapshot(
    stream: BinaryIO,
    catalog: Dict[str, Any],
    page_payloads: List[Tuple[str, List[bytes]]],
) -> None:
    """Write header + catalog + page images.

    ``page_payloads`` must list files in exactly the catalog's
    ``files`` order; this is validated to prevent silent corruption.
    """
    catalog_files = [entry["name"] for entry in catalog.get("files", [])]
    payload_files = [name for name, _ in page_payloads]
    if catalog_files != payload_files:
        raise StorageError(
            "catalog/payload file order mismatch: "
            f"{catalog_files[:3]}... vs {payload_files[:3]}..."
        )
    encoded = json.dumps(catalog, separators=(",", ":"), sort_keys=True).encode("utf-8")
    stream.write(_HEADER.pack(MAGIC, FORMAT_VERSION, len(encoded)))
    stream.write(encoded)
    for entry, (_, pages) in zip(catalog["files"], page_payloads):
        if entry["pages"] != len(pages):
            raise StorageError(
                f"file {entry['name']!r}: catalog says {entry['pages']} pages, "
                f"payload has {len(pages)}"
            )
        for page in pages:
            stream.write(page)


def read_header(stream: BinaryIO) -> SnapshotHeader:
    raw = stream.read(_HEADER.size)
    if len(raw) != _HEADER.size:
        raise StorageError("truncated snapshot header")
    magic, version, catalog_len = _HEADER.unpack(raw)
    if magic != MAGIC:
        raise StorageError(f"not a snapshot file (magic {magic!r})")
    if version != FORMAT_VERSION:
        raise StorageError(f"unsupported snapshot version {version}")
    encoded = stream.read(catalog_len)
    if len(encoded) != catalog_len:
        raise StorageError("truncated snapshot catalog")
    try:
        catalog = json.loads(encoded.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageError(f"corrupt snapshot catalog: {exc}") from exc
    return SnapshotHeader(version=version, catalog=catalog)


def read_pages(
    stream: BinaryIO, catalog: Dict[str, Any], page_size: int
) -> Dict[str, List[bytes]]:
    """Read every file's page images following the catalog."""
    result: Dict[str, List[bytes]] = {}
    for entry in catalog.get("files", []):
        pages = []
        for _ in range(entry["pages"]):
            payload = stream.read(page_size)
            if len(payload) != page_size:
                raise StorageError(
                    f"truncated page data in file {entry['name']!r}"
                )
            pages.append(payload)
        result[entry["name"]] = pages
    trailing = stream.read(1)
    if trailing:
        raise StorageError("trailing bytes after snapshot payload")
    return result
