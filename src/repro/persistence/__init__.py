"""Database snapshots: save/load a full Database to/from a single file."""

from repro.persistence.format import FORMAT_VERSION, MAGIC
from repro.persistence.snapshot import (
    build_catalog,
    load_database,
    populate_database,
    save_database,
)

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "build_catalog",
    "load_database",
    "populate_database",
    "save_database",
]
