"""Database consistency check (``fsck``).

Sweeps every stored page against its CRC32 sidecar checksum, structurally
verifies every access facility, and lists facilities currently marked
degraded. ``deep=True`` additionally cross-validates facilities against
the object store via :meth:`Database.check_consistency`.

The sweep is offline: it reads stored images directly (no buffer pool, no
I/O accounting), so running fsck never perturbs metered page counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List

from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.objects.database import Database


@dataclass(frozen=True)
class FsckIssue:
    """One problem found by :func:`run_fsck`."""

    kind: str  # "checksum" | "structure" | "degraded" | "consistency"
    subject: str  # file name or class.attribute/facility path
    detail: str

    def render(self) -> str:
        return f"[{self.kind}] {self.subject}: {self.detail}"


@dataclass
class FsckReport:
    """Outcome of one fsck pass."""

    issues: List[FsckIssue] = field(default_factory=list)
    files_checked: int = 0
    pages_checked: int = 0
    facilities_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues

    def render(self) -> str:
        lines = [
            f"fsck: {self.files_checked} files / {self.pages_checked} pages / "
            f"{self.facilities_checked} facilities checked"
        ]
        if self.ok:
            lines.append("fsck: clean")
        else:
            lines.extend(issue.render() for issue in self.issues)
            lines.append(f"fsck: {len(self.issues)} issue(s) found")
        return "\n".join(lines)


def run_fsck(database: "Database", deep: bool = False) -> FsckReport:
    """Check the whole database; never raises for problems it finds."""
    report = FsckReport()
    # Dirty frames in the pool may supersede stored images; flush first so
    # the sweep sees exactly what a restart would see.
    database.storage.flush()
    store = database.storage.store
    for file_name in store.file_names():
        report.files_checked += 1
        report.pages_checked += store.num_pages(file_name)
        bad = store.corrupt_pages(file_name)
        if bad:
            report.issues.append(
                FsckIssue(
                    "checksum",
                    file_name,
                    f"page(s) {bad} fail CRC32 verification",
                )
            )
    for (class_name, attribute), per_path in sorted(database._indexes.items()):
        for name, facility in sorted(per_path.items()):
            report.facilities_checked += 1
            subject = f"{class_name}.{attribute}/{name}"
            try:
                facility.verify()
            except ReproError as exc:
                report.issues.append(FsckIssue("structure", subject, str(exc)))
    for path, reason in sorted(database.degraded_facilities().items()):
        report.issues.append(
            FsckIssue("degraded", path, f"marked degraded: {reason}")
        )
    if deep:
        try:
            database.check_consistency()
        except ReproError as exc:
            report.issues.append(FsckIssue("consistency", "database", str(exc)))
    return report
