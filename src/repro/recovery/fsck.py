"""Database consistency check (``fsck``).

Sweeps every stored page against its CRC32 sidecar checksum, structurally
verifies every access facility, and lists facilities currently marked
degraded. ``deep=True`` additionally cross-validates facilities against
the object store via :meth:`Database.check_consistency`.

The sweep is offline: it reads stored images directly (no buffer pool, no
I/O accounting), so running fsck never perturbs metered page counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.errors import ReproError, WalCorruptError, WalError

if TYPE_CHECKING:
    from repro.objects.database import Database


@dataclass(frozen=True)
class FsckIssue:
    """One problem found by :func:`run_fsck`."""

    kind: str  # "checksum" | "structure" | "degraded" | "consistency" | "wal"
    subject: str  # file name or class.attribute/facility path
    detail: str

    def render(self) -> str:
        return f"[{self.kind}] {self.subject}: {self.detail}"


@dataclass
class FsckReport:
    """Outcome of one fsck pass."""

    issues: List[FsckIssue] = field(default_factory=list)
    files_checked: int = 0
    pages_checked: int = 0
    facilities_checked: int = 0
    #: intact records in the attached WAL (0 when no WAL)
    wal_records: int = 0
    #: one-line WAL summary, or ``None`` when the database has no WAL
    wal_status: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.issues

    def render(self) -> str:
        lines = [
            f"fsck: {self.files_checked} files / {self.pages_checked} pages / "
            f"{self.facilities_checked} facilities checked"
        ]
        if self.wal_status is not None:
            lines.append(f"fsck: wal {self.wal_status}")
        if self.ok:
            lines.append("fsck: clean")
        else:
            lines.extend(issue.render() for issue in self.issues)
            lines.append(f"fsck: {len(self.issues)} issue(s) found")
        return "\n".join(lines)


def run_fsck(database: "Database", deep: bool = False) -> FsckReport:
    """Check the whole database; never raises for problems it finds."""
    report = FsckReport()
    # Dirty frames in the pool may supersede stored images; flush first so
    # the sweep sees exactly what a restart would see.
    database.storage.flush()
    store = database.storage.store
    for file_name in store.file_names():
        report.files_checked += 1
        report.pages_checked += store.num_pages(file_name)
        bad = store.corrupt_pages(file_name)
        if bad:
            report.issues.append(
                FsckIssue(
                    "checksum",
                    file_name,
                    f"page(s) {bad} fail CRC32 verification",
                )
            )
    for (class_name, attribute), per_path in sorted(database._indexes.items()):
        for name, facility in sorted(per_path.items()):
            report.facilities_checked += 1
            subject = f"{class_name}.{attribute}/{name}"
            try:
                facility.verify()
            except ReproError as exc:
                report.issues.append(FsckIssue("structure", subject, str(exc)))
    for path, reason in sorted(database.degraded_facilities().items()):
        report.issues.append(
            FsckIssue("degraded", path, f"marked degraded: {reason}")
        )
    if database.wal is not None:
        _check_wal(database, report)
    if deep:
        try:
            database.check_consistency()
        except ReproError as exc:
            report.issues.append(FsckIssue("consistency", "database", str(exc)))
    return report


def _check_wal(database: "Database", report: FsckReport) -> None:
    """Scan the attached write-ahead log and summarize its health."""
    from repro.wal.log import scan_wal

    wal = database.wal
    try:
        scan = scan_wal(wal.path)
    except WalCorruptError as exc:
        report.wal_status = f"CORRUPT at lsn {exc.lsn}"
        report.issues.append(
            FsckIssue(
                "wal",
                wal.path,
                f"{exc}; repair with `wal truncate --lsn {exc.lsn}` "
                "(work at and past that lsn is lost)",
            )
        )
        return
    except WalError as exc:
        report.wal_status = "UNREADABLE"
        report.issues.append(FsckIssue("wal", wal.path, str(exc)))
        return
    report.wal_records = len(scan.records)
    report.wal_status = (
        f"ok: {len(scan.records)} record(s), lsn [{scan.base_lsn}, "
        f"{scan.end_lsn}], applied through {database.wal_applied_lsn}"
    )
    if scan.torn_bytes:
        # Can only appear if the file was damaged after the log was opened
        # (opening truncates torn tails); recovery would drop it silently,
        # but fsck reports everything it sees.
        report.issues.append(
            FsckIssue(
                "wal",
                wal.path,
                f"torn tail of {scan.torn_bytes} byte(s) after lsn "
                f"{scan.end_lsn} (will be truncated on recovery)",
            )
        )
    if database.wal_applied_lsn < scan.end_lsn:
        report.issues.append(
            FsckIssue(
                "wal",
                wal.path,
                f"log extends past the applied watermark "
                f"({database.wal_applied_lsn} < {scan.end_lsn}); "
                "records await replay",
            )
        )
