"""Facility reconstruction from the object file.

SSF, BSSF and NIX are *derived* structures: every bit of their content is a
function of the live objects, so losing or corrupting one is never fatal —
it can be dropped and bulk-loaded again from the object store. This module
is the single implementation of that rebuild, shared by
:meth:`Database.rebuild_facility`, :meth:`Database.vacuum_index` (a rebuild
is exactly a vacuum: tombstones do not survive it), auto-rebuild-on-access
in the executor, and ``fsck --repair``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.access.bssf import BitSlicedSignatureFile
from repro.access.ssf import SequentialSignatureFile
from repro.errors import AccessFacilityError
from repro.obs.metrics import REGISTRY

if TYPE_CHECKING:
    from repro.access.base import SetAccessFacility
    from repro.objects.database import Database

#: File-name prefixes of the three facility kinds (`{kind}:{Class}.{attr}:...`).
FACILITY_KINDS = ("ssf", "bssf", "nix")


def facility_of_file(file_name: str) -> Optional[Tuple[str, str, str]]:
    """``(class_name, attribute, facility_name)`` owning a storage file.

    Facility files are named ``{kind}:{Class}.{attr}:{part}``; anything
    else (object files, OID catalogs) returns ``None``.
    """
    parts = file_name.split(":", 2)
    if len(parts) < 3 or parts[0] not in FACILITY_KINDS:
        return None
    path = parts[1]
    if "." not in path:
        return None
    class_name, attribute = path.split(".", 1)
    return class_name, attribute, parts[0]


def rebuild_facility(
    database: "Database",
    class_name: str,
    attribute: str,
    facility_name: Optional[str] = None,
) -> "SetAccessFacility":
    """Drop one facility's files and bulk-load a fresh one from the objects.

    Works whether or not the old files are readable — configuration
    (signature scheme, option flags) lives on the in-memory handle, and the
    new content comes entirely from the object file. Clears the facility's
    degraded mark and increments the ``recovery.rebuilds`` metric. Returns
    the new facility; the old handle is invalid afterwards.
    """
    old = database.index(class_name, attribute, facility_name)
    name = old.name
    with database._wal_op(lambda: ["rebuild", class_name, attribute, name]):
        return _rebuild_body(database, old, class_name, attribute, name)


def _rebuild_body(
    database: "Database",
    old: "SetAccessFacility",
    class_name: str,
    attribute: str,
    name: str,
) -> "SetAccessFacility":
    key = (class_name, attribute)
    del database._indexes[key][name]
    prefix = f"{name}:{class_name}.{attribute}:"
    for file_name in list(database.storage.store.file_names()):
        if file_name.startswith(prefix):
            database.storage.drop_file(file_name)
    try:
        if getattr(old, "is_lsm", False):
            # Recreate the LSM facility with its layout options; the
            # create path's backfill seals the surviving objects into a
            # fresh level-0 run (the prefix drop above removed every run
            # file and manifest slot).
            creator = (
                database.create_ssf_index
                if old.kind == "ssf"
                else database.create_bssf_index
            )
            kwargs = dict(
                seed=old.scheme.seed,
                lsm=True,
                flush_threshold=old.flush_threshold,
                fanout=old.fanout,
            )
            if old.kind == "bssf":
                kwargs["worst_case_insert"] = old.worst_case_insert
            rebuilt = creator(
                class_name, attribute,
                old.signature_bits, old.scheme.bits_per_element,
                **kwargs,
            )
        elif isinstance(old, SequentialSignatureFile):
            rebuilt = database.create_ssf_index(
                class_name, attribute,
                old.signature_bits, old.scheme.bits_per_element,
                seed=old.scheme.seed,
            )
        elif isinstance(old, BitSlicedSignatureFile):
            rebuilt = database.create_bssf_index(
                class_name, attribute,
                old.signature_bits, old.scheme.bits_per_element,
                seed=old.scheme.seed,
                worst_case_insert=old.worst_case_insert,
            )
        else:
            rebuilt = database.create_nested_index(
                class_name, attribute, overflow_chains=old.overflow_chains
            )
    except Exception:
        # The facility is gone and could not be recreated; leave the
        # degraded mark in place so queries keep falling back to scans.
        database.mark_degraded(class_name, attribute, name, "rebuild failed")
        raise
    database.clear_degraded(class_name, attribute, name)
    REGISTRY.counter("recovery.rebuilds").inc()
    return rebuilt


def rebuild_degraded(database: "Database") -> List[str]:
    """Rebuild every facility currently marked degraded.

    Returns the rebuilt paths as ``class.attribute/facility`` strings.
    Facilities whose registration disappeared (e.g. dropped concurrently)
    are skipped rather than fatal.
    """
    rebuilt = []
    for (class_name, attribute, name) in sorted(database._degraded):
        try:
            rebuild_facility(database, class_name, attribute, name)
        except AccessFacilityError:
            continue
        rebuilt.append(f"{class_name}.{attribute}/{name}")
    return rebuilt
