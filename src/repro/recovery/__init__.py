"""Recovery: fsck sweeps and facility reconstruction.

Access facilities are derived data — anything fault injection (or a real
fault) destroys can be rebuilt from the object file. :func:`run_fsck`
finds the damage; :func:`rebuild_facility` repairs it.
"""

from repro.recovery.fsck import FsckIssue, FsckReport, run_fsck
from repro.recovery.rebuild import (
    FACILITY_KINDS,
    facility_of_file,
    rebuild_degraded,
    rebuild_facility,
)

__all__ = [
    "FACILITY_KINDS",
    "FsckIssue",
    "FsckReport",
    "facility_of_file",
    "rebuild_degraded",
    "rebuild_facility",
    "run_fsck",
]
