"""repro — signature files as set access facilities in OODBs.

A full reproduction of Ishikawa, Kitagawa & Ohbo, *"Evaluation of Signature
Files as Set Access Facilities in OODBs"* (SIGMOD 1993): the superimposed-
coding signature scheme, the sequential (SSF) and bit-sliced (BSSF)
signature file organizations, the nested index (NIX), the Section 4
analytical cost model, the Section 5 smart retrieval strategies, and an
executable paged-storage OODB simulator that validates the model's page-
access predictions.

Quick start::

    from repro import Database, ClassSchema, QueryExecutor

    db = Database()
    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    db.create_bssf_index("Student", "hobbies", signature_bits=64, bits_per_element=2)
    db.insert("Student", {"name": "Jeff", "hobbies": {"Baseball", "Fishing"}})

    executor = QueryExecutor(db)
    result = executor.execute_text(
        'select Student where hobbies has-subset ("Baseball")'
    )

Served over the network (``sigfile-repro serve`` on the other end)::

    from repro import connect

    with connect("sigfile://127.0.0.1:7731") as db:
        result = db.execute('select Student where hobbies has-subset ("Chess")')
"""

from repro.client import RemoteClient
from repro.concurrency import RWLatch, ShardedLatch
from repro.core.signature import SetPredicateKind, SignatureScheme
from repro.objects.database import Database
from repro.objects.oid import OID
from repro.objects.schema import Attribute, AttributeKind, ClassSchema
from repro.persistence.snapshot import load_database, save_database
from repro.query.executor import QueryExecutor, QueryResult
from repro.query.options import ExecutionMode, ExecutionOptions
from repro.query.parser import parse_query
from repro.query.planner import CostContext, plan_query
from repro.server.net import TcpQueryServer
from repro.server.service import QueryService
from repro.serving import QueryBackend, connect, make_service

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "AttributeKind",
    "ClassSchema",
    "CostContext",
    "Database",
    "ExecutionMode",
    "ExecutionOptions",
    "OID",
    "QueryBackend",
    "QueryExecutor",
    "QueryResult",
    "QueryService",
    "RWLatch",
    "RemoteClient",
    "SetPredicateKind",
    "ShardedLatch",
    "SignatureScheme",
    "TcpQueryServer",
    "connect",
    "load_database",
    "make_service",
    "parse_query",
    "plan_query",
    "save_database",
    "__version__",
]
