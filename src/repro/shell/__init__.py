"""Interactive shell: DDL/DML statements and a REPL over one database."""

from repro.shell.ddl import execute_statement, parse_statement
from repro.shell.repl import Shell, interactive_loop

__all__ = [
    "Shell",
    "execute_statement",
    "interactive_loop",
    "parse_statement",
]
