"""Interactive shell over one database.

Supports the full statement language of :mod:`repro.shell.ddl` plus shell
meta-commands::

    \\save "file.sigdb"     snapshot the database
    \\load "file.sigdb"     replace the session database from a snapshot
    \\tables               list classes and their object counts
    \\indexes              list facilities and their page counts
    \\trace on|off         append a span tree with per-span page counts
                          to every query result (see repro.obs)
    \\check                run the consistency checker
    \\health               run fsck: checksum sweep, facility verification,
                          degraded-facility listing, replication role
    \\replicas             replication topology: this session's role, or —
                          when \\connect'ed — the fleet's roles and lag
    \\shards               sharding topology: per-shard health when
                          \\connect'ed to a shard map ("a;b;c") or router,
                          or the server's own shard-of announcement
    \\rebuild Class.attr [facility]
                          reconstruct a facility from the object file
    \\workers N            serve select queries through an N-worker
                          QueryService pool (1 restores sequential)
    \\connect URL [TOKEN]  serve select queries through a remote
                          sigfile://host:port server (see `sigfile-repro
                          serve`); DDL and mutations stay local
    \\disconnect           drop the remote connection
    \\batch N              in scripts, run consecutive select statements
                          in groups of N through the batched kernel path
                          (1 restores statement-at-a-time execution)
    \\help                 this text
    \\quit                 leave

Use programmatically (``Shell.run_line``) or interactively
(``sigfile-repro shell``). A statement script can be replayed with
:meth:`Shell.run_script`, which is also how the shell tests drive it.
"""

from __future__ import annotations

import shlex
import sys
from typing import Iterable, List, Optional

from repro.errors import ReproError
from repro.objects.database import Database
from repro.persistence.snapshot import load_database, save_database
from repro.shell.ddl import (
    execute_statement,
    format_query_result,
    is_plain_select,
)

_HELP = __doc__

_PROMPT = "sigdb> "


class Shell:
    """Statement-at-a-time driver for one database session."""

    def __init__(self, database: Optional[Database] = None):
        self.database = database or Database()
        self.finished = False
        self.tracing = False
        self.service = None  # QueryService when \workers N (N > 1) is active
        self.remote = None  # RemoteClient when \connect is active
        self.batch_size = 1  # \batch N groups script selects when N > 1

    def _backend(self):
        """The serving backend selects go through; remote wins over pool."""
        return self.remote if self.remote is not None else self.service

    def _replication_line(self) -> str:
        """One-line replication role for ``\\health``."""
        db = self.database
        if getattr(db, "read_only", False):
            return (
                "replication: read-only replica "
                f"(watermark lsn {db.wal_applied_lsn})"
            )
        if db.wal is not None:
            return (
                "replication: wal-mode primary "
                f"(end lsn {db.wal.end_lsn}; serve with `sigfile-repro "
                "serve --wal-dir` to accept subscribers)"
            )
        return "replication: standalone (no wal attached)"

    def _replicas_report(self) -> str:
        """Topology for ``\\replicas``: fleet status when connected."""
        if self.remote is not None:
            try:
                if hasattr(self.remote, "_endpoints"):  # FailoverClient
                    entries = self.remote.status()
                    return "\n".join(
                        "{url}: {role}{lsn}{fails}".format(
                            url=entry["url"],
                            role=entry["role"] if entry["alive"] else "down",
                            lsn=(
                                f" @ lsn {entry['lsn']}"
                                if entry["alive"]
                                else ""
                            ),
                            fails=(
                                f" ({entry['consecutive_failures']} recent "
                                "failure(s))"
                                if entry["consecutive_failures"]
                                else ""
                            ),
                        )
                        for entry in entries
                    )
                status = self.remote.status()
                role = status.get("role", "standalone")
                lines = [
                    f"{self.remote.url}: {role} @ lsn {status.get('lsn', 0)}"
                ]
                for replica in status.get("replicas", []):
                    lines.append(
                        "  replica {name}: acked lsn {acked_lsn}, "
                        "lag {lag_bytes} byte(s)".format(**replica)
                    )
                if role == "primary" and len(lines) == 1:
                    lines.append("  (no subscribed replicas)")
                return "\n".join(lines)
            except (ReproError, OSError) as exc:
                return f"error: {exc}"
        return self._replication_line()

    def _shards_report(self) -> str:
        """Topology for ``\\shards``: router health or PONG announcement."""
        if self.remote is None:
            return "not connected (use \\connect with a ';' shard map)"
        if hasattr(self.remote, "shard_count"):  # ShardRouter
            lines = []
            for entry in self.remote.status():
                p99 = entry["p99_seconds"]
                lines.append(
                    "shard {shard} {name}: {health}, "
                    "{requests} request(s), {failures} failure(s), "
                    "p99 {p99}".format(
                        shard=entry["shard"],
                        name=entry["name"],
                        health=(
                            "breaker open"
                            if entry["breaker_open"]
                            else "healthy"
                        ),
                        requests=entry["requests"],
                        failures=entry["failures"],
                        p99=f"{p99 * 1000:.1f} ms" if p99 else "n/a",
                    )
                )
            return "\n".join(lines)
        if hasattr(self.remote, "_endpoints"):  # FailoverClient
            return (
                f"{self.remote.url}: replicated fleet, not a shard map "
                "(see \\replicas)"
            )
        try:
            status = self.remote.status()  # PONG carries the announcement
        except (ReproError, OSError) as exc:
            return f"error: {exc}"
        shard = status.get("shard")
        if shard:
            return (
                f"{self.remote.url}: shard {shard['index']} of "
                f"{shard['count']} (hash-partitioned)"
            )
        return f"{self.remote.url}: not sharded"

    def _disconnect(self) -> None:
        """Close and drop the remote connection, if any."""
        if self.remote is not None:
            try:
                self.remote.close()
            except OSError:
                pass
            self.remote = None

    def _set_workers(self, workers: int) -> None:
        """Install (or drain) the session QueryService for ``\\workers``."""
        if self.service is not None:
            self.service.shutdown()
            self.service = None
        if workers > 1:
            from repro.server.service import QueryService

            self.service = QueryService(self.database, max_workers=workers)

    # ------------------------------------------------------------------
    # Line handling
    # ------------------------------------------------------------------
    def run_line(self, line: str) -> str:
        """Execute one input line; returns the printable response."""
        line = line.strip()
        if not line or line.startswith("--"):
            return ""
        if line.startswith("\\"):
            return self._meta(line)
        try:
            return execute_statement(
                self.database, line, trace=self.tracing, service=self._backend()
            )
        except ReproError as exc:
            return f"error: {exc}"

    def run_script(self, lines: Iterable[str]) -> List[str]:
        """Run many lines; returns non-empty responses in order.

        With ``\\batch N`` (N > 1) active and tracing off, consecutive
        plain ``select`` statements are grouped and executed through the
        batched kernel path; responses still come back one per statement,
        in statement order, identical to line-at-a-time execution.
        """
        responses: List[str] = []
        batch: List[str] = []

        def flush() -> None:
            if batch:
                responses.extend(self._run_select_batch(batch))
                batch.clear()

        for line in lines:
            if self.finished:
                break
            stripped = line.strip()
            if (
                self.batch_size > 1
                and not self.tracing
                and stripped
                and not stripped.startswith(("\\", "--"))
                and is_plain_select(stripped)
            ):
                batch.append(stripped)
                continue
            flush()
            response = self.run_line(line)
            if response:
                responses.append(response)
        flush()
        return responses

    def _run_select_batch(self, texts: List[str]) -> List[str]:
        """Serve one group of selects through the batched executor path."""
        from repro.query.executor import QueryExecutor
        from repro.query.options import ExecutionOptions

        options = ExecutionOptions(batch_size=self.batch_size)
        backend = self._backend()
        try:
            if backend is not None:
                results = backend.execute_many(texts, options)
            else:
                results = QueryExecutor(self.database).execute_batched(
                    texts, options
                )
        except ReproError:
            # One bad statement (e.g. a parse error) fails a whole group;
            # re-running line-at-a-time preserves per-statement errors.
            return [self.run_line(text) for text in texts]
        return [format_query_result(result) for result in results]

    # ------------------------------------------------------------------
    # Meta-commands
    # ------------------------------------------------------------------
    def _meta(self, line: str) -> str:
        try:
            parts = shlex.split(line[1:])
        except ValueError as exc:
            return f"error: {exc}"
        if not parts:
            return "error: empty meta-command"
        command, args = parts[0].lower(), parts[1:]
        if command in ("quit", "exit", "q"):
            self.finished = True
            if self.service is not None:
                self.service.shutdown()
                self.service = None
            self._disconnect()
            return "bye"
        if command == "help":
            return _HELP
        if command == "tables":
            names = self.database.objects.class_names()
            if not names:
                return "(no classes)"
            return "\n".join(
                f"{name}: {self.database.count(name)} object(s)"
                for name in names
            )
        if command == "indexes":
            report = self.database.facility_storage_report()
            if not report:
                return "(no indexes)"
            return "\n".join(
                f"{path}: {pages} ({sum(pages.values())} pages)"
                for path, pages in sorted(report.items())
            )
        if command == "trace":
            if len(args) != 1 or args[0].lower() not in ("on", "off"):
                return "usage: \\trace on|off"
            self.tracing = args[0].lower() == "on"
            return f"tracing {'on' if self.tracing else 'off'}"
        if command == "check":
            try:
                checked = self.database.check_consistency()
            except ReproError as exc:
                return f"INCONSISTENT: {exc}"
            if not checked:
                return "consistent (no indexes)"
            body = ", ".join(f"{path}×{n}" for path, n in sorted(checked.items()))
            return f"consistent ({body})"
        if command == "health":
            from repro.recovery import run_fsck

            report = run_fsck(self.database, deep="deep" in args)
            rendered = report.render()
            if report.wal_status is None:
                rendered += "\nfsck: wal disabled (durability: {})".format(
                    self.database.durability
                )
            rendered += "\n" + self._replication_line()
            return rendered
        if command == "replicas":
            return self._replicas_report()
        if command == "shards":
            return self._shards_report()
        if command == "rebuild":
            if not 1 <= len(args) <= 2 or "." not in args[0]:
                return "usage: \\rebuild Class.attribute [facility]"
            class_name, attribute = args[0].split(".", 1)
            facility_name = args[1] if len(args) == 2 else None
            try:
                facility = self.database.rebuild_facility(
                    class_name, attribute, facility_name
                )
            except ReproError as exc:
                return f"error: {exc}"
            return f"rebuilt {facility.name} on {class_name}.{attribute}"
        if command == "connect":
            if not 1 <= len(args) <= 2:
                return "usage: \\connect sigfile://host:port [token]"
            from repro.serving import connect

            try:
                client = connect(
                    args[0], token=args[1] if len(args) == 2 else None
                )
                client.ping()
            except (ReproError, OSError) as exc:
                return f"error: cannot connect to {args[0]}: {exc}"
            self._disconnect()
            self.remote = client
            info = client.server_info or {}
            server = info.get("server", "sigfile-repro")
            return f"connected to {client.url} ({server})"
        if command == "disconnect":
            if self.remote is None:
                return "not connected"
            url = self.remote.url
            self._disconnect()
            return f"disconnected from {url}"
        if command == "workers":
            if len(args) != 1 or not args[0].isdigit() or int(args[0]) < 1:
                return "usage: \\workers N (N >= 1)"
            workers = int(args[0])
            try:
                self._set_workers(workers)
            except ReproError as exc:
                return f"error: {exc}"
            if workers == 1:
                return "serving sequentially"
            return f"serving through {workers} worker(s)"
        if command == "batch":
            if len(args) != 1 or not args[0].isdigit() or int(args[0]) < 1:
                return "usage: \\batch N (N >= 1)"
            self.batch_size = int(args[0])
            if self.batch_size == 1:
                return "batched execution off"
            return f"batching script selects in groups of {self.batch_size}"
        if command == "save":
            if len(args) != 1:
                return "usage: \\save <path>"
            try:
                save_database(self.database, args[0])
            except (ReproError, OSError) as exc:
                return f"error: {exc}"
            return f"saved to {args[0]}"
        if command == "load":
            if len(args) != 1:
                return "usage: \\load <path>"
            try:
                self.database = load_database(args[0])
            except (ReproError, OSError) as exc:
                return f"error: {exc}"
            if self.service is not None:
                # Rebind the worker pool to the freshly loaded database.
                self._set_workers(self.service.max_workers)
            return f"loaded {args[0]}"
        return f"error: unknown meta-command \\{command}"


def interactive_loop(
    database: Optional[Database] = None,
    input_stream=None,
    output_stream=None,
) -> int:
    """Blocking read-eval-print loop (the ``sigfile-repro shell`` command)."""
    input_stream = input_stream or sys.stdin
    output_stream = output_stream or sys.stdout
    shell = Shell(database)
    output_stream.write(
        "signature-file OODB shell — \\help for commands, \\quit to exit\n"
    )
    while not shell.finished:
        output_stream.write(_PROMPT)
        output_stream.flush()
        line = input_stream.readline()
        if not line:
            break
        response = shell.run_line(line)
        if response:
            output_stream.write(response + "\n")
    return 0
