"""DDL/DML statements for driving a database interactively.

Beyond the paper's query language (handled by :mod:`repro.query.parser`),
the shell accepts schema and maintenance statements::

    create class Student (name scalar, hobbies set, courses set of Course)
    create index bssf on Student.hobbies (F = 500, m = 2)
    create index nix on Student.courses
    insert into Student (name = "Jeff", hobbies = {"Baseball", "Fishing"})
    analyze Student.hobbies
    explain select Student where hobbies contains "Baseball"
    select Student where hobbies has-subset ("Baseball", "Fishing")

Each statement is parsed against the same tokenizer as the query language
and executed against a :class:`~repro.objects.database.Database`;
:func:`execute_statement` returns a human-readable result string.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ParseError, QueryError
from repro.objects.database import Database
from repro.objects.schema import ClassSchema
from repro.obs.sinks import render_span_tree
from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionOptions
from repro.query.parser import Token, tokenize

_INDEX_KINDS = ("ssf", "bssf", "nix")
_SIGNATURE_DEFAULTS = {"F": 128, "m": 2, "seed": 0}


class _Cursor:
    """Token cursor (statement-level twin of the query parser's)."""

    def __init__(self, tokens: List[Token], source: str):
        self.tokens = tokens
        self.source = source
        self.index = 0

    def peek(self) -> Optional[Token]:
        if self.index >= len(self.tokens):
            return None
        return self.tokens[self.index]

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of statement: {self.source!r}")
        self.index += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.next()
        if token.kind != kind or (text is not None and token.text.lower() != text):
            raise ParseError(
                f"expected {(text or kind)!r} at offset {token.position}, "
                f"got {token.text!r}"
            )
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token is None or token.kind != kind:
            return None
        if text is not None and token.text.lower() != text:
            return None
        return self.next()

    def done(self) -> bool:
        return self.index >= len(self.tokens)

    def require_done(self) -> None:
        if not self.done():
            token = self.peek()
            raise ParseError(
                f"unexpected {token.text!r} at offset {token.position}"
            )


def _literal(cursor: _Cursor) -> Any:
    token = cursor.next()
    if token.kind == "string":
        return token.text[1:-1].replace('\\"', '"').replace("\\\\", "\\")
    if token.kind == "int":
        return int(token.text)
    if token.kind == "float":
        return float(token.text)
    raise ParseError(
        f"expected a literal at offset {token.position}, got {token.text!r}"
    )


def _value(cursor: _Cursor) -> Any:
    """A literal, or a set literal ``{a, b, c}`` / ``{}``."""
    if cursor.accept("lbrace"):
        if cursor.accept("rbrace"):
            return set()
        elements = [_literal(cursor)]
        while cursor.accept("comma"):
            elements.append(_literal(cursor))
        cursor.expect("rbrace")
        return set(elements)
    return _literal(cursor)


def _path(cursor: _Cursor) -> Tuple[str, str]:
    """``Class.attribute``."""
    class_name = cursor.expect("ident").text
    cursor.expect("dot")
    attribute = cursor.expect("ident").text
    return class_name, attribute


# ----------------------------------------------------------------------
# Statement ASTs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CreateClass:
    schema: ClassSchema


@dataclass(frozen=True)
class CreateIndex:
    kind: str
    class_name: str
    attribute: str
    options: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class InsertObject:
    class_name: str
    values: Dict[str, Any]


@dataclass(frozen=True)
class Analyze:
    class_name: str
    attribute: str


@dataclass(frozen=True)
class RunQuery:
    text: str
    explain: bool


Statement = object  # union of the dataclasses above


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def parse_statement(text: str) -> Statement:
    stripped = text.strip().rstrip(";")
    tokens = tokenize(stripped)
    if not tokens:
        raise ParseError("empty statement")
    head = tokens[0]
    if head.kind != "ident":
        raise ParseError(f"statement must start with a keyword, got {head.text!r}")
    keyword = head.text.lower()
    if keyword == "select":
        return RunQuery(text=stripped, explain=False)
    if keyword == "explain":
        rest = stripped[head.position + len(head.text):].strip()
        if not rest.lower().startswith("select"):
            raise ParseError("explain takes a select query")
        return RunQuery(text=rest, explain=True)
    cursor = _Cursor(tokens, stripped)
    if keyword == "create":
        return _parse_create(cursor)
    if keyword == "insert":
        return _parse_insert(cursor)
    if keyword == "analyze":
        cursor.expect("ident", "analyze")
        class_name, attribute = _path(cursor)
        cursor.require_done()
        return Analyze(class_name=class_name, attribute=attribute)
    raise ParseError(
        f"unknown statement {keyword!r}; expected create / insert / "
        "analyze / select / explain"
    )


def _parse_create(cursor: _Cursor) -> Statement:
    cursor.expect("ident", "create")
    what = cursor.expect("ident").text.lower()
    if what == "class":
        return _parse_create_class(cursor)
    if what == "index":
        return _parse_create_index(cursor)
    raise ParseError(f"create {what!r} is not supported (class / index)")


def _parse_create_class(cursor: _Cursor) -> CreateClass:
    class_name = cursor.expect("ident").text
    cursor.expect("lparen")
    specs: Dict[str, str] = {}
    while True:
        attr_name = cursor.expect("ident").text
        kind = cursor.expect("ident").text.lower()
        if kind not in ("scalar", "set"):
            raise ParseError(
                f"attribute kind must be 'scalar' or 'set', got {kind!r}"
            )
        spec = kind
        if cursor.accept("ident", "of"):
            spec += ":" + cursor.expect("ident").text
        if attr_name in specs:
            raise ParseError(f"duplicate attribute {attr_name!r}")
        specs[attr_name] = spec
        if not cursor.accept("comma"):
            break
    cursor.expect("rparen")
    cursor.require_done()
    return CreateClass(schema=ClassSchema.build(class_name, **specs))


def _parse_create_index(cursor: _Cursor) -> CreateIndex:
    kind = cursor.expect("ident").text.lower()
    if kind not in _INDEX_KINDS:
        raise ParseError(
            f"index kind must be one of {_INDEX_KINDS}, got {kind!r}"
        )
    cursor.expect("ident", "on")
    class_name, attribute = _path(cursor)
    options: Dict[str, int] = {}
    if cursor.accept("lparen"):
        while True:
            name = cursor.expect("ident").text
            cursor.expect("eq")
            value = _literal(cursor)
            if not isinstance(value, int):
                raise ParseError(f"index option {name!r} must be an integer")
            options[name] = value
            if not cursor.accept("comma"):
                break
        cursor.expect("rparen")
    cursor.require_done()
    if kind == "nix" and options:
        raise ParseError("nix takes no options")
    unknown = set(options) - set(_SIGNATURE_DEFAULTS)
    if unknown:
        raise ParseError(
            f"unknown index options {sorted(unknown)}; "
            f"expected {sorted(_SIGNATURE_DEFAULTS)}"
        )
    return CreateIndex(
        kind=kind, class_name=class_name, attribute=attribute, options=options
    )


def _parse_insert(cursor: _Cursor) -> InsertObject:
    cursor.expect("ident", "insert")
    cursor.expect("ident", "into")
    class_name = cursor.expect("ident").text
    cursor.expect("lparen")
    values: Dict[str, Any] = {}
    while True:
        attr_name = cursor.expect("ident").text
        cursor.expect("eq")
        if attr_name in values:
            raise ParseError(f"duplicate attribute {attr_name!r}")
        values[attr_name] = _value(cursor)
        if not cursor.accept("comma"):
            break
    cursor.expect("rparen")
    cursor.require_done()
    return InsertObject(class_name=class_name, values=values)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def execute_statement(
    database: Database,
    text: str,
    max_rows: int = 20,
    trace: bool = False,
    service=None,
) -> str:
    """Parse and run one statement; returns a printable result.

    With ``trace=True`` (the shell's ``\\trace on`` mode), queries are
    executed with tracing enabled and the rendered span tree is appended
    to the normal result listing. With a ``service`` (a
    :class:`~repro.server.service.QueryService`, the shell's ``\\workers``
    mode), select queries are served through its worker pool; DDL and
    mutations always run on the calling thread.
    """
    statement = parse_statement(text)
    executor = QueryExecutor(database)

    if isinstance(statement, CreateClass):
        database.define_class(statement.schema)
        return f"class {statement.schema.name} created"

    if isinstance(statement, CreateIndex):
        options = {**_SIGNATURE_DEFAULTS, **statement.options}
        if statement.kind == "ssf":
            database.create_ssf_index(
                statement.class_name, statement.attribute,
                options["F"], options["m"], seed=options["seed"],
            )
        elif statement.kind == "bssf":
            database.create_bssf_index(
                statement.class_name, statement.attribute,
                options["F"], options["m"], seed=options["seed"],
            )
        else:
            database.create_nested_index(
                statement.class_name, statement.attribute
            )
        return (
            f"{statement.kind} index created on "
            f"{statement.class_name}.{statement.attribute}"
        )

    if isinstance(statement, InsertObject):
        oid = database.insert(statement.class_name, statement.values)
        return f"inserted {oid}"

    if isinstance(statement, Analyze):
        stats = database.analyze(statement.class_name, statement.attribute)
        return (
            f"{stats.class_name}.{stats.attribute}: N={stats.num_objects}, "
            f"V≈{stats.distinct_elements}, "
            f"Dt={stats.mean_cardinality:.1f} "
            f"[{stats.min_cardinality}, {stats.max_cardinality}]"
        )

    if isinstance(statement, RunQuery):
        if statement.explain:
            return executor.explain(statement.text)
        options = ExecutionOptions(trace=trace)
        if service is not None:
            result = service.execute(statement.text, options)
        else:
            result = executor.execute_text(statement.text, options)
        return format_query_result(result, max_rows=max_rows, trace=trace)

    raise QueryError(f"unhandled statement type: {type(statement).__name__}")


def is_plain_select(text: str) -> bool:
    """True when ``text`` is a bare ``select`` statement.

    These are the statements the shell's ``\\batch`` mode may group into
    one :meth:`~repro.query.executor.QueryExecutor.execute_batched` call;
    ``explain``, DDL and mutations always run one at a time.
    """
    stripped = text.strip().rstrip(";").lower()
    return stripped.startswith("select") and (
        len(stripped) == len("select") or not stripped[len("select")].isalnum()
    )


def format_query_result(result, max_rows: int = 20, trace: bool = False) -> str:
    """Render one :class:`~repro.query.executor.QueryResult` for the shell."""
    summary = (
        f"{len(result)} row(s); plan: {result.statistics.plan}; "
        f"pages: {result.statistics.page_accesses}; "
        f"false drops: {result.statistics.false_drops}"
    )
    if getattr(result, "partial", False):
        missing = ", ".join(getattr(result, "missing_shards", ()) or ())
        summary += f" — PARTIAL (missing shards: {missing})"
    lines = [summary]
    for oid, values in result.rows[:max_rows]:
        rendered = ", ".join(
            f"{name}={_render(value)}" for name, value in sorted(values.items())
        )
        lines.append(f"  {oid}: {rendered}")
    if len(result) > max_rows:
        lines.append(f"  ... {len(result) - max_rows} more")
    if trace and result.trace is not None:
        lines.append(render_span_tree(result.trace))
    return "\n".join(lines)


def _render(value: Any) -> str:
    if isinstance(value, (set, frozenset)):
        inner = ", ".join(sorted(repr(v) for v in value))
        return "{" + inner + "}"
    return repr(value)
