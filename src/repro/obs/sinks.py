"""Trace sinks and the human-readable span-tree renderer.

A sink receives every finished *root* span from a
:class:`~repro.obs.tracer.Tracer`:

* :class:`RingBufferSink` — bounded in-memory buffer (tests, REPL);
* :class:`JsonLinesSink` — one JSON object per root span, append-only
  (offline analysis, ``jq``-able);
* :func:`render_span_tree` — ``EXPLAIN ANALYZE``-style text tree, the
  backend of :meth:`QueryExecutor.explain_analyze` and the shell's
  ``\\trace on`` mode.
"""

from __future__ import annotations

import io
import json
from collections import deque
from pathlib import Path
from typing import Any, List, Optional, Union

from repro.obs.metrics import file_kind
from repro.obs.tracer import Span

__all__ = ["JsonLinesSink", "RingBufferSink", "render_span_tree"]


class RingBufferSink:
    """Keeps the last ``capacity`` root spans in memory."""

    def __init__(self, capacity: int = 128):
        if capacity <= 0:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._spans: "deque[Span]" = deque(maxlen=capacity)

    def emit(self, span: Span) -> None:
        self._spans.append(span)

    def spans(self) -> List[Span]:
        """Buffered root spans, oldest first."""
        return list(self._spans)

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)


class JsonLinesSink:
    """Writes each root span as one JSON line.

    Accepts a path (opened append-mode, closed by :meth:`close`) or any
    object with a ``write`` method (e.g. ``io.StringIO``, ``sys.stdout``).
    """

    def __init__(self, target: Union[str, Path, io.IOBase, Any]):
        if isinstance(target, (str, Path)):
            self._stream = open(target, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.emitted = 0

    def emit(self, span: Span) -> None:
        self._stream.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        self.emitted += 1

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------
_SKIP_ATTRS = {"error"}  # rendered separately


def _format_attributes(span: Span, max_items: int = 6) -> str:
    parts = []
    for key, value in span.attributes.items():
        if key in _SKIP_ATTRS:
            continue
        if isinstance(value, float):
            parts.append(f"{key}={value:.3g}")
        else:
            parts.append(f"{key}={value}")
        if len(parts) >= max_items:
            break
    return "  ".join(parts)


def _pages_summary(span: Span) -> str:
    by_kind: dict = {}
    for name, pages in span.pages_by_file().items():
        kind = file_kind(name)
        by_kind[kind] = by_kind.get(kind, 0) + pages
    detail = ", ".join(f"{kind}={pages}" for kind, pages in sorted(by_kind.items()))
    self_pages = span.self_logical_pages
    head = f"pages={span.logical_pages}"
    if span.children:
        head += f" (self {self_pages})"
    if detail:
        head += f" [{detail}]"
    return head


def _render_line(span: Span, prefix: str, connector: str) -> str:
    error = span.attributes.get("error")
    line = (
        f"{prefix}{connector}{span.name}  {_pages_summary(span)}  "
        f"cache={span.pool_hits}h/{span.pool_misses}m  "
        f"elapsed={span.elapsed_seconds * 1000.0:.3f}ms"
    )
    attrs = _format_attributes(span)
    if attrs:
        line += f"  {attrs}"
    if error:
        line += f"  !{error}"
    return line


def render_span_tree(span: Optional[Span]) -> str:
    """Render a span tree as an indented text diagram.

    Each line shows the span's inclusive logical pages (and exclusive
    "self" pages when it has children), a per-file-kind page breakdown,
    the buffer-pool hit/miss delta, elapsed wall-clock, and attributes.
    """
    if span is None:
        return "(no trace recorded)"
    lines = [_render_line(span, "", "")]

    def walk(node: Span, prefix: str) -> None:
        for i, child in enumerate(node.children):
            last = i == len(node.children) - 1
            connector = "└─ " if last else "├─ "
            lines.append(_render_line(child, prefix, connector))
            walk(child, prefix + ("   " if last else "│  "))

    walk(span, "")
    return "\n".join(lines)
