"""Structured observability: span tracing, process metrics, trace sinks.

The paper's whole evaluation is expressed in page accesses; this package
makes those pages *attributable*. Three pieces:

* :mod:`repro.obs.tracer` — nested spans around the query pipeline
  (executor → planner → facility search → drop resolution), each carrying
  its per-file logical/physical page delta and buffer-pool hit/miss
  counts. Off by default via a no-op singleton; never perturbs the
  page-access accounting.
* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  and histograms fed by the buffer pool, decode caches, the simulated
  disk, and the query executor.
* :mod:`repro.obs.sinks` — where finished traces go: an in-memory ring
  buffer, a JSON-lines writer, and the ``EXPLAIN ANALYZE``-style text
  renderer behind :meth:`QueryExecutor.explain_analyze`.

Quick start::

    from repro import Database, ExecutionOptions, QueryExecutor

    executor = QueryExecutor(db)
    print(executor.explain_analyze(
        'select Student where hobbies has-subset ("Baseball")'
    ))
"""

from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    file_kind,
)
from repro.obs.sinks import JsonLinesSink, RingBufferSink, render_span_tree
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    activate,
    annotate,
    current,
    span,
    traced_search,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "REGISTRY",
    "RingBufferSink",
    "Span",
    "Tracer",
    "activate",
    "annotate",
    "current",
    "file_kind",
    "render_span_tree",
    "span",
    "traced_search",
]
