"""Process-wide metrics registry: counters, gauges, histograms.

One :data:`REGISTRY` per process aggregates operational metrics across
every :class:`~repro.objects.database.Database` instance — the "serve heavy
traffic" view the per-query :class:`QueryStatistics` cannot give:

* ``storage.pool.hits`` / ``storage.pool.misses`` — buffer-pool counters
  (fed by :class:`~repro.storage.buffer_pool.BufferPool`);
* ``storage.decode_cache.hits`` / ``storage.decode_cache.misses`` — decoded
  page-payload cache counters (fed by
  :class:`~repro.storage.decode_cache.DecodeCache`);
* ``storage.disk.page_reads`` / ``storage.disk.page_writes`` /
  ``storage.disk.pages_allocated`` — physical transfers at the simulated
  device (fed by :class:`~repro.storage.disk.DiskStore`);
* ``query.executed`` / ``query.candidates`` / ``query.false_drops`` /
  ``query.results`` — drop-resolution tallies, plus ``query.pages.<kind>``
  logical pages per file kind and the ``query.elapsed_seconds`` /
  ``query.pages`` / ``query.false_drop_ratio`` histograms (fed by
  :class:`~repro.query.executor.QueryExecutor`);
* ``storage.faults.injected`` — faults fired by an attached
  :class:`~repro.storage.faults.FaultInjector`; ``storage.retries`` —
  transient-fault retries by the buffer pool's
  :func:`~repro.storage.faults.with_retries`;
* ``query.degraded_fallbacks`` — queries answered by sequential scan after
  a facility storage failure (at most once per query); ``recovery.rebuilds``
  — facility reconstructions from the object file;
  ``recovery.degraded_facilities`` (gauge) — facilities currently marked
  degraded;
* ``wal.appends`` / ``wal.fsyncs`` — write-ahead-log records durably
  appended and the fsyncs they issued; ``wal.checkpoints`` — fuzzy
  checkpoints taken; ``wal.torn_tails_truncated`` — half-written final
  records dropped while opening a log; ``recovery.wal_replayed_records`` —
  log records redone during recovery; ``recovery.wal_replay_rebuilds`` —
  facilities reconstructed because replay hit a damaged facility (all fed
  by :mod:`repro.wal`);
* ``latch.read_acquires`` / ``latch.write_acquires`` /
  ``latch.read_waits`` / ``latch.write_waits`` / ``latch.upgrades`` —
  reader-writer latch traffic (fed by
  :class:`~repro.concurrency.latch.RWLatch`);
* ``server.submitted`` / ``server.admitted`` / ``server.shed`` /
  ``server.completed`` / ``server.errors`` — query-service admission and
  completion counts, plus the ``server.workers`` gauge and the
  ``server.admission_wait_seconds`` / ``server.query_seconds`` histograms
  (fed by :class:`~repro.server.QueryService`).

Instruments are plain attribute-increment objects: feeding them is a few
nanoseconds and never touches the I/O accounting, so golden page-access
counts are unaffected. Tests use :meth:`MetricsRegistry.reset` or a private
registry instance.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "file_kind",
]


class Counter:
    """Monotonically increasing integer.

    Increments are atomic: a plain ``+=`` on an instance attribute is a
    read-modify-write that CPython may interleave across threads (the GIL
    guarantees bytecode atomicity, not statement atomicity), silently
    losing counts once the query service runs concurrent workers. Each
    counter carries its own lock; reads of :attr:`value` need none (int
    loads are atomic and the value is monotone).
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """Last-set value (e.g. resident pages, entries in a cache)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Streaming summary: count / total / min / max plus coarse buckets.

    Bucket bounds are powers of ten from 1e-6 up — enough resolution to
    separate "sub-millisecond query" from "page-storm" without storing
    samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "_lock")

    _BOUNDS = tuple(10.0 ** e for e in range(-6, 7))  # 1e-6 .. 1e6

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets = [0] * (len(self._BOUNDS) + 1)
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            for i, bound in enumerate(self._BOUNDS):
                if value <= bound:
                    self.buckets[i] += 1
                    return
            self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.4g})"


class MetricsRegistry:
    """Named instruments, created on first use and stable thereafter.

    Creation is serialized by a registry lock so two threads asking for the
    same name always observe one instrument; components cache the returned
    references, so the lock is off the hot path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(name, Histogram(name))
        return instrument

    def snapshot(self) -> Dict[str, Any]:
        """All instruments as one JSON-serializable dict."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero every instrument (tests / between benchmark phases).

        Instruments are zeroed in place, not discarded: components cache
        references to their counters at construction time and must keep
        observing the same objects.
        """
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0.0
        for histogram in self._histograms.values():
            histogram.count = 0
            histogram.total = 0.0
            histogram.min = None
            histogram.max = None
            histogram.buckets = [0] * len(histogram.buckets)


#: The process-wide registry every component feeds by default.
REGISTRY = MetricsRegistry()


def file_kind(name: str) -> str:
    """Classify a simulated file name into the paper's file kinds.

    ``ssf:…:signatures`` → ``ssf.signature``; ``bssf:…:slice:NNNN`` →
    ``bssf.slice``; either facility's ``…:oids`` → ``<facility>.oid``;
    ``nix:…:btree`` → ``nix``; ``objects:Class`` → ``object``. Anything
    else falls back to its leading component.
    """
    parts = name.split(":")
    head = parts[0]
    if head == "objects":
        return "object"
    if head in ("ssf", "bssf"):
        if parts[-1] == "oids":
            return f"{head}.oid"
        if len(parts) >= 2 and parts[-2] == "slice":
            return "bssf.slice"
        return f"{head}.signature"
    if head == "nix":
        return "nix"
    return head or "other"
