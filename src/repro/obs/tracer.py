"""Span-based tracer for the query pipeline and storage substrate.

The paper's evaluation currency is *page accesses*; the tracer makes them
attributable. A :class:`Span` covers one operation (a query, a plan, one
facility search, drop resolution) and records, for its duration:

* the per-file logical/physical page-access delta (an
  :class:`~repro.storage.stats.IOSnapshot` difference),
* the buffer-pool hit/miss delta,
* wall-clock elapsed time (``time.perf_counter``),
* free-form attributes (``slices_read``, ``candidates``, ``decode=hit`` …).

Spans nest: the tracer keeps a stack, so a facility search opened inside a
query span becomes its child, and exclusive ("self") page counts of all
spans in a tree sum to the root's inclusive total.

Tracing is **off by default** and adds near-zero overhead when off: the
per-thread active tracer defaults to a :data:`NULL_TRACER` singleton whose
``span()`` returns one shared no-op context manager — no allocation, no
snapshotting, no accounting side effects. Crucially the tracer only *reads*
I/O counters (:meth:`IOStatistics.snapshot`); it never charges a page
access, so logical/physical counts are bit-identical with tracing on or
off (``tests/obs/test_no_overhead.py`` enforces this against the golden
fixed-seed suite).
"""

from __future__ import annotations

import functools
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

from repro.storage.stats import JournalMark, diff_raw

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "activate",
    "annotate",
    "current",
    "span",
    "traced_search",
]


class Span:
    """One traced operation: name, attributes, I/O delta, children."""

    __slots__ = (
        "name",
        "attributes",
        "children",
        "elapsed_seconds",
        "pool_hits",
        "pool_misses",
        "_tracer",
        "_started",
        "_io_raw_before",
        "_io_raw_after",
        "_io_cache",
        "_pool_before",
    )

    def __init__(self, name: str, attributes: Dict[str, Any], tracer: "Tracer"):
        self.name = name
        self.attributes = attributes
        self.children: List["Span"] = []
        self.elapsed_seconds = 0.0
        self.pool_hits = 0
        self.pool_misses = 0
        self._tracer = tracer
        self._started = 0.0
        self._io_raw_before = None
        self._io_raw_after = None
        self._io_cache = None
        self._pool_before = (0, 0)

    # ------------------------------------------------------------------
    # Context manager protocol
    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._exit(self)
        return False

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def io(self):
        """The span's per-file I/O delta, materialized on first access.

        The tracer records only raw counter captures while the span is
        open (microseconds); the :class:`IOSnapshot` subtraction —
        the expensive part — happens here, on demand, and is cached.
        Returns ``None`` when the tracer had no I/O source or the span
        was skipped by sampling.
        """
        if self._io_cache is None and self._io_raw_after is not None:
            self._io_cache = diff_raw(self._io_raw_after, self._io_raw_before)
        return self._io_cache

    @property
    def logical_pages(self) -> int:
        """Inclusive logical page accesses during the span."""
        return self.io.logical_total if self.io is not None else 0

    @property
    def physical_pages(self) -> int:
        """Inclusive physical page accesses during the span."""
        return self.io.physical_total if self.io is not None else 0

    @property
    def self_logical_pages(self) -> int:
        """Exclusive logical pages: inclusive minus the children's share.

        Summing ``self_logical_pages`` over a whole span tree reproduces
        the root's inclusive total exactly — this is the invariant the
        ``explain_analyze`` acceptance test checks against the query's
        :class:`IOSnapshot` delta.
        """
        return self.logical_pages - sum(c.logical_pages for c in self.children)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def pages_by_file(self) -> Dict[str, int]:
        """Non-zero logical page counts per file touched during the span."""
        if self.io is None:
            return {}
        return {
            name: counts.logical_total
            for name, counts in self.io.files()
            if counts.logical_total
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (used by the JSON-lines sink)."""
        return {
            "name": self.name,
            "elapsed_ms": round(self.elapsed_seconds * 1000.0, 3),
            "logical_pages": self.logical_pages,
            "physical_pages": self.physical_pages,
            "pool_hits": self.pool_hits,
            "pool_misses": self.pool_misses,
            "attributes": {k: _jsonable(v) for k, v in self.attributes.items()},
            "pages_by_file": self.pages_by_file(),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, pages={self.logical_pages}, "
            f"children={len(self.children)})"
        )


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class Tracer:
    """Collects a tree of spans around one storage manager's counters.

    ``io_source`` is anything exposing ``snapshot() -> IOSnapshot`` and a
    ``pool`` with ``hits`` / ``misses`` ints — in practice a
    :class:`~repro.storage.paged_file.StorageManager`. ``None`` still
    traces structure and timing, just without I/O deltas (unit tests).

    Finished *root* spans are appended to :attr:`roots` and emitted to
    every sink (objects with an ``emit(span)`` method).
    """

    def __init__(
        self,
        io_source: Any = None,
        sinks: Optional[List[Any]] = None,
        sample_every: Optional[int] = None,
        max_roots: int = 1024,
    ):
        self._io = io_source
        self.sinks = list(sinks or [])
        self._stack: List[Span] = []
        self._roots: Deque[Span] = deque(maxlen=max_roots)
        self._sample_every = sample_every if sample_every and sample_every > 1 else None
        self._root_seq = 0
        self._capture_io = False
        # Journal marks (a list index) cost nanoseconds; raw captures
        # (dict copies) cost microseconds; full IOSnapshot materialization
        # costs milliseconds on stores with hundreds of files. Use the
        # cheapest capture the source exposes.
        stats = getattr(io_source, "stats", io_source)
        self._journal_stats = stats if hasattr(stats, "journal_acquire") else None
        self._raw_stats = stats if hasattr(stats, "raw_snapshot") else None
        self._pool = getattr(io_source, "pool", None)
        self._journal = None
        self._journal_owned = False

    @property
    def roots(self) -> List[Span]:
        """Finished root spans, oldest first (bounded ring)."""
        return list(self._roots)

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> Span:
        return Span(name, attributes, tracer=self)

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to the innermost open span, if any."""
        if self._stack:
            self._stack[-1].attributes.update(attributes)

    @property
    def active_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def _snap(self):
        journal = self._journal
        if journal is not None:
            return JournalMark(journal, len(journal))
        if self._raw_stats is not None:
            return self._raw_stats.raw_snapshot()
        return self._io.snapshot()

    def _enter(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            # Sampling decides once per root tree: a skipped tree still
            # records structure, attributes and timing, just no I/O deltas.
            self._root_seq += 1
            self._capture_io = self._io is not None and (
                self._sample_every is None
                or (self._root_seq - 1) % self._sample_every == 0
            )
            if self._capture_io and self._journal_stats is not None:
                self._journal, self._journal_owned = (
                    self._journal_stats.journal_acquire()
                )
        self._stack.append(span)
        if self._capture_io:
            span._io_raw_before = self._snap()
            pool = self._pool
            if pool is not None:
                span._pool_before = (pool.hits, pool.misses)
        span._started = time.perf_counter()

    def _exit(self, span: Span) -> None:
        span.elapsed_seconds = time.perf_counter() - span._started
        if span._io_raw_before is not None:
            span._io_raw_after = self._snap()
            pool = self._pool
            if pool is not None:
                span.pool_hits = pool.hits - span._pool_before[0]
                span.pool_misses = pool.misses - span._pool_before[1]
        popped = self._stack.pop()
        if popped is not span:  # pragma: no cover — misuse guard
            raise RuntimeError(
                f"span stack corrupted: closing {span.name!r} "
                f"but {popped.name!r} was innermost"
            )
        if not self._stack:
            if self._journal is not None:
                if self._journal_owned:
                    self._journal_stats.journal_release()
                self._journal = None
                self._journal_owned = False
            self._roots.append(span)
            for sink in self.sinks:
                sink.emit(span)

    @property
    def last_root(self) -> Optional[Span]:
        return self._roots[-1] if self._roots else None


class _NullSpan:
    """Shared no-op span: the entire cost of tracing-off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer that records nothing; the default active tracer."""

    __slots__ = ()

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def annotate(self, **attributes: Any) -> None:
        pass

    @property
    def active_span(self) -> None:
        return None


NULL_TRACER = NullTracer()

# ----------------------------------------------------------------------
# Thread-level active tracer
# ----------------------------------------------------------------------
# The active tracer is *per thread*: a span stack shared across the query
# service's worker pool would interleave unrelated queries into one tree
# (and corrupt the stack invariant outright). A ``threading.local`` slot
# costs one attribute load on the hot search paths — measurably cheaper
# than a contextvar and safe under concurrency; each worker activates its
# own tracer and other threads stay on the null singleton.
_local = threading.local()


def current():
    """This thread's active tracer (the :data:`NULL_TRACER` when off)."""
    return getattr(_local, "tracer", NULL_TRACER)


def span(name: str, **attributes: Any):
    """Open a span on the active tracer (no-op when tracing is off)."""
    return getattr(_local, "tracer", NULL_TRACER).span(name, **attributes)


def annotate(**attributes: Any) -> None:
    """Attach attributes to the innermost active span (no-op when off)."""
    getattr(_local, "tracer", NULL_TRACER).annotate(**attributes)


@contextmanager
def activate(tracer: Tracer):
    """Install ``tracer`` as this thread's active tracer for the body."""
    previous = getattr(_local, "tracer", NULL_TRACER)
    _local.tracer = tracer
    try:
        yield tracer
    finally:
        _local.tracer = previous


def traced_search(span_name: str) -> Callable:
    """Wrap a facility ``search_*`` method in a span named ``span_name``.

    When tracing is off the wrapper costs one global read and one identity
    check. When on, it opens a span, runs the search, and copies the
    result's ``detail`` dict plus the candidate count into span attributes
    — giving every facility a uniform trace surface without touching the
    search bodies (whose page-access behaviour is golden-frozen).
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(self, query, *args, **kwargs):
            active = getattr(_local, "tracer", NULL_TRACER)
            if active is NULL_TRACER:
                return fn(self, query, *args, **kwargs)
            with active.span(span_name, query_cardinality=len(query)) as sp:
                result = fn(self, query, *args, **kwargs)
                for key, value in result.detail.items():
                    if isinstance(value, (str, int, float, bool)):
                        sp.set(key, value)
                sp.set("candidates", len(result.candidates))
                sp.set("exact", result.exact)
                return result

        return wrapper

    return decorate
