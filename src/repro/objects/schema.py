"""Class schemas: the OODB modeling constructs of the paper's Section 1.

A class has named attributes; each attribute is either a *scalar* (primitive
value or single OID reference) or a *set* (the set constructor — a set of
primitives or of OIDs). The paper's ``Student`` class, for example, has a
scalar ``name``, a set-of-OIDs ``courses`` and a set-of-strings ``hobbies``.

Validation is structural: on insert/update the object store checks that the
supplied attribute dict matches the schema (no missing/unknown attributes,
set attributes hold sets, reference attributes hold OIDs of the right
class when a target class is declared).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import SchemaError
from repro.objects.oid import OID

_PRIMITIVES = (str, int, float, bool, bytes)


class AttributeKind(enum.Enum):
    SCALAR = "scalar"
    SET = "set"


@dataclass(frozen=True)
class Attribute:
    """One attribute declaration.

    ``ref_class`` names the target class for OID-valued attributes (e.g.
    ``Student.courses`` references ``Course``); ``None`` means primitive.
    """

    name: str
    kind: AttributeKind
    ref_class: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid attribute name: {self.name!r}")

    @property
    def is_set(self) -> bool:
        return self.kind is AttributeKind.SET

    def validate_value(self, value: Any) -> None:
        if self.kind is AttributeKind.SCALAR:
            self._validate_member(value, context=f"attribute {self.name!r}")
            return
        if not isinstance(value, (set, frozenset)):
            raise SchemaError(
                f"set attribute {self.name!r} requires a set value, "
                f"got {type(value).__name__}"
            )
        for member in value:
            self._validate_member(member, context=f"member of set {self.name!r}")

    def _validate_member(self, value: Any, context: str) -> None:
        if self.ref_class is not None:
            if not isinstance(value, OID):
                raise SchemaError(
                    f"{context} must be an OID referencing {self.ref_class!r}, "
                    f"got {type(value).__name__}"
                )
            return
        if value is None or isinstance(value, _PRIMITIVES) or isinstance(value, OID):
            return
        raise SchemaError(
            f"{context} must be a primitive or OID, got {type(value).__name__}"
        )


@dataclass
class ClassSchema:
    """A class definition: ordered attribute declarations."""

    name: str
    attributes: List[Attribute] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid class name: {self.name!r}")
        seen = set()
        for attr in self.attributes:
            if attr.name in seen:
                raise SchemaError(
                    f"duplicate attribute {attr.name!r} in class {self.name!r}"
                )
            seen.add(attr.name)
        self._by_name: Dict[str, Attribute] = {a.name: a for a in self.attributes}

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, class_name: str, /, **attr_specs: str) -> "ClassSchema":
        """Shorthand: ``ClassSchema.build("Student", name="scalar",
        hobbies="set", courses="set:Course")``.

        Spec strings are ``"scalar"``, ``"set"``, ``"scalar:RefClass"`` or
        ``"set:RefClass"``.
        """
        attributes = []
        for attr_name, spec in attr_specs.items():
            kind_text, _, ref = spec.partition(":")
            try:
                kind = AttributeKind(kind_text)
            except ValueError:
                raise SchemaError(
                    f"bad attribute spec {spec!r} for {attr_name!r}; "
                    "expected 'scalar[:Class]' or 'set[:Class]'"
                ) from None
            attributes.append(
                Attribute(name=attr_name, kind=kind, ref_class=ref or None)
            )
        return cls(name=class_name, attributes=attributes)

    # ------------------------------------------------------------------
    # Lookup & validation
    # ------------------------------------------------------------------
    def attribute(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"class {self.name!r} has no attribute {name!r}"
            ) from None

    def has_attribute(self, name: str) -> bool:
        return name in self._by_name

    def set_attributes(self) -> Iterable[Attribute]:
        return (a for a in self.attributes if a.is_set)

    def validate_object(self, values: Dict[str, Any]) -> None:
        """Check a full attribute dict against the schema."""
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise SchemaError(
                f"unknown attributes for class {self.name!r}: {sorted(unknown)}"
            )
        missing = set(self._by_name) - set(values)
        if missing:
            raise SchemaError(
                f"missing attributes for class {self.name!r}: {sorted(missing)}"
            )
        for name, value in values.items():
            self._by_name[name].validate_value(value)
