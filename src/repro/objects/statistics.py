"""Workload statistics collection (ANALYZE).

The Section 4 cost model needs three numbers per indexed path — N objects,
domain cardinality V, target cardinality Dt — and the §6 variable-Dt
extension needs the full Dt distribution. ``analyze`` computes all of them
with one scan, and ``Database`` caches the result so the planner can use
real statistics without the caller threading a
:class:`~repro.query.planner.CostContext` through every query.

Statistics are a snapshot: they go stale as the class mutates. ``analyze``
records the class's object count at collection time, and
``AttributeStatistics.staleness`` reports the relative drift so callers
can decide when to re-analyze (the Database facade re-analyzes
automatically past ``REANALYZE_DRIFT``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.costmodel.variable import CardinalityDistribution
from repro.errors import ObjectStoreError

#: relative object-count drift beyond which cached statistics are re-collected
REANALYZE_DRIFT = 0.25


@dataclass(frozen=True)
class AttributeStatistics:
    """Collected statistics for one set-attribute path."""

    class_name: str
    attribute: str
    num_objects: int
    distinct_elements: int
    mean_cardinality: float
    min_cardinality: int
    max_cardinality: int
    distribution: CardinalityDistribution
    collected_at_count: int
    collected_at_mutations: int = 0

    @property
    def target_cardinality(self) -> int:
        """Dt for the fixed-cardinality model: the rounded mean (>= 1)."""
        return max(1, round(self.mean_cardinality))

    @property
    def is_fixed_cardinality(self) -> bool:
        return self.min_cardinality == self.max_cardinality

    def staleness(
        self, current_count: int, current_mutations: Optional[int] = None
    ) -> float:
        """Relative drift since collection.

        The object-count term alone misses churn that nets zero — delete an
        OID and re-insert it explicitly (run-merge replay, shard loading)
        and the live count is unchanged while the attribute distribution
        may have shifted arbitrarily. When ``current_mutations`` is given,
        the monotonic mutation counter contributes a second term measured
        against the same baseline, so such churn still triggers
        re-analysis.
        """
        baseline = max(self.collected_at_count, 1)
        drift = abs(current_count - self.collected_at_count) / baseline
        if current_mutations is not None:
            churn = (
                current_mutations - self.collected_at_mutations
            ) / baseline
            drift = max(drift, churn)
        return drift

    def cost_context(self):
        """The planner-facing view of these statistics."""
        from repro.query.planner import CostContext

        return CostContext(
            num_objects=self.num_objects,
            domain_cardinality=max(self.distinct_elements, self.target_cardinality),
            target_cardinality=self.target_cardinality,
        )


def analyze(objects, class_name: str, attribute: str) -> AttributeStatistics:
    """Scan a class and collect set-attribute statistics.

    ``objects`` is an :class:`~repro.objects.object_store.ObjectStore`.
    Raises for unknown classes/attributes and for scalar attributes; an
    empty class yields degenerate-but-usable statistics (N = 0 upgraded to
    1 in the cost context to keep the model's divisions defined).
    """
    schema = objects.schema(class_name)
    attr = schema.attribute(attribute)
    if not attr.is_set:
        raise ObjectStoreError(
            f"cannot analyze scalar attribute {class_name}.{attribute}"
        )
    distinct = set()
    sizes = []
    for _, values in objects.scan(class_name):
        value = values[attribute]
        distinct.update(value)
        sizes.append(len(value))
    if sizes:
        distribution = CardinalityDistribution.from_samples(sizes)
        mean = sum(sizes) / len(sizes)
        low, high = min(sizes), max(sizes)
    else:
        distribution = CardinalityDistribution.fixed(1)
        mean, low, high = 1.0, 1, 1
    return AttributeStatistics(
        class_name=class_name,
        attribute=attribute,
        num_objects=max(len(sizes), 1),
        distinct_elements=max(len(distinct), 1),
        mean_cardinality=mean,
        min_cardinality=low,
        max_cardinality=high,
        distribution=distribution,
        collected_at_count=len(sizes),
        collected_at_mutations=_mutations_of(objects, class_name),
    )


def _mutations_of(objects, class_name: str) -> int:
    counter = getattr(objects, "mutation_count", None)
    return counter(class_name) if counter is not None else 0


class StatisticsCache:
    """Per-path statistics with drift-based invalidation."""

    def __init__(self) -> None:
        self._stats: Dict[tuple, AttributeStatistics] = {}

    def get(
        self, objects, class_name: str, attribute: str,
        refresh: bool = False,
    ) -> AttributeStatistics:
        key = (class_name, attribute)
        cached = self._stats.get(key)
        current = objects.count(class_name)
        mutations = _mutations_of(objects, class_name)
        if (
            refresh
            or cached is None
            or cached.staleness(current, mutations) > REANALYZE_DRIFT
        ):
            cached = analyze(objects, class_name, attribute)
            self._stats[key] = cached
        return cached

    def peek(self, class_name: str, attribute: str) -> Optional[AttributeStatistics]:
        return self._stats.get((class_name, attribute))

    def invalidate(self, class_name: Optional[str] = None) -> None:
        if class_name is None:
            self._stats.clear()
            return
        doomed = [key for key in self._stats if key[0] == class_name]
        for key in doomed:
            del self._stats[key]
