"""The OODB facade: schema + objects + set access facilities in one place.

``Database`` wires together the storage manager, the object store, and any
number of access facilities over set-valued attribute paths (several
facilities may index the same path — that is exactly how the experiments
compare SSF, BSSF and NIX on identical data). All object mutations keep
every affected index synchronized.

Concurrency: the facade carries a reader-writer latch
(:class:`~repro.concurrency.RWLatch` by default, or a
:class:`~repro.concurrency.ShardedLatch` keyed by class name with
``latch="sharded"``). Queries hold it in read mode via
:meth:`Database.read_scope`; every mutating facade operation takes write
mode, and checkpoint/snapshot hold :meth:`Database.exclusive_scope`. The
latch serializes *structure* changes against readers — per-page counters
stay exact through the thread-safe storage substrate underneath.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.access.base import SetAccessFacility
from repro.access.bssf import BitSlicedSignatureFile
from repro.access.nix import NestedIndex
from repro.access.ssf import SequentialSignatureFile
from repro.concurrency import RWLatch, ShardedLatch
from repro.core.signature import SignatureScheme
from repro.errors import (
    AccessFacilityError,
    ConfigurationError,
    SchemaError,
    StorageError,
)
from repro.objects.object_store import ObjectStore
from repro.objects.oid import OID
from repro.objects.schema import ClassSchema
from repro.objects.serde import encode_object
from repro.storage.paged_file import StorageManager
from repro.storage.stats import IOSnapshot

IndexKey = Tuple[str, str]  # (class name, set attribute name)

#: The durability contract of a :class:`Database`:
#: ``"none"`` — in-memory only, nothing survives the process;
#: ``"snapshot"`` — durable exactly at :func:`save_database` points;
#: ``"wal"`` — every mutating operation is redo-logged (fsynced) before it
#: applies, so the last checkpoint plus the log tail survives any crash;
#: ``"lsm"`` — WAL durability with the LSM write path: new signature
#: facilities default to memtable + immutable runs, and log fsyncs are
#: group-committed (``wal_fsync_interval``) since the WAL only needs to
#: cover the memtable.
DURABILITY_MODES = ("none", "snapshot", "wal", "lsm")

#: Snapshot file a WAL directory's checkpoints are written to.
CHECKPOINT_FILE_NAME = "checkpoint.sigdb"

#: Group-commit width for ``durability="lsm"``: the log buffers frames and
#: fsyncs every Nth append (and on checkpoint/close/read) instead of on
#: every record. Matches the default memtable flush threshold — the log
#: only covers the memtable, so the crash-loss window is one flush cycle.
DEFAULT_LSM_FSYNC_INTERVAL = 256


class Database:
    """A small but complete object database."""

    def __init__(
        self,
        page_size: int = 4096,
        pool_capacity: int = 0,
        auto_rebuild: bool = False,
        durability: Optional[str] = None,
        wal_dir: Optional[str] = None,
        wal_fsync: bool = True,
        wal_fsync_interval: Optional[int] = None,
        latch: Any = None,
    ):
        # The facade-level reader-writer latch: queries share it in read
        # mode, every mutating facade operation takes it in write mode.
        # ``None`` installs one database-wide RWLatch; ``"sharded"``
        # installs a ShardedLatch keyed by class name (mutations of one
        # class never block readers of another); any object exposing
        # read_scope/write_scope/exclusive_scope is accepted as-is.
        if latch is None:
            latch = RWLatch("db")
        elif latch == "sharded":
            latch = ShardedLatch("db")
        elif not (
            hasattr(latch, "read_scope")
            and hasattr(latch, "write_scope")
            and hasattr(latch, "exclusive_scope")
        ):
            raise ConfigurationError(
                "latch must be None, 'sharded', or expose "
                "read_scope/write_scope/exclusive_scope"
            )
        self.latch = latch
        self.storage = StorageManager(page_size=page_size, pool_capacity=pool_capacity)
        self.objects = ObjectStore(self.storage)
        self._indexes: Dict[IndexKey, Dict[str, SetAccessFacility]] = {}
        #: Facilities whose storage failed a read or checksum, keyed
        #: ``(class, attribute, facility name)`` -> reason. Queries answer
        #: via object-file scan until the facility is rebuilt.
        self._degraded: Dict[Tuple[str, str, str], str] = {}
        #: When True, the executor rebuilds a degraded facility on its next
        #: access instead of scanning around it.
        self.auto_rebuild = auto_rebuild
        if durability is None:
            durability = "wal" if wal_dir is not None else "snapshot"
        if durability not in DURABILITY_MODES:
            raise ConfigurationError(
                f"durability must be one of {DURABILITY_MODES}, got {durability!r}"
            )
        if durability not in ("wal", "lsm") and wal_dir is not None:
            raise ConfigurationError(
                f"wal_dir is only meaningful with durability='wal' or "
                f"'lsm', not {durability!r}"
            )
        self.durability = durability
        #: True on a replica: every facade mutation raises
        #: :class:`~repro.errors.ReadOnlyReplicaError` (shipped WAL records
        #: are applied through a scope that lifts the flag).
        self.read_only = False
        #: the attached :class:`~repro.wal.WriteAheadLog` (``"wal"`` mode only)
        self.wal = None
        self.wal_dir: Optional[str] = None
        #: LSN up to which the log is reflected in this database's state.
        #: Replay skips records below it, which is what makes redo
        #: idempotent: replaying the same tail twice is a no-op.
        self.wal_applied_lsn = 0
        if durability == "lsm" and wal_fsync_interval is None:
            wal_fsync_interval = DEFAULT_LSM_FSYNC_INTERVAL
        if durability in ("wal", "lsm"):
            if wal_dir is None:
                raise ConfigurationError(
                    f"durability={durability!r} requires wal_dir"
                )
            from repro.wal.log import WriteAheadLog

            wal = WriteAheadLog(
                wal_dir, fsync=wal_fsync, fsync_interval=wal_fsync_interval
            )
            if wal.end_lsn > 0 or os.path.exists(
                os.path.join(wal_dir, CHECKPOINT_FILE_NAME)
            ):
                wal.close()
                raise StorageError(
                    f"wal directory {wal_dir!r} holds an existing log or "
                    "checkpoint; recover it with Database.open(wal_dir) "
                    "instead of starting a fresh database over it"
                )
            self.attach_wal(wal, wal_dir, durability=durability)
        from repro.objects.statistics import StatisticsCache

        self.statistics = StatisticsCache()

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        wal_dir: str,
        page_size: int = 4096,
        pool_capacity: int = 0,
        auto_rebuild: bool = False,
        wal_fsync: bool = True,
        wal_fsync_interval: Optional[int] = None,
    ) -> "Database":
        """Recover a WAL-mode database from its directory.

        Loads the checkpoint snapshot if one exists (an empty database
        otherwise), replays the log tail — truncating a torn final record,
        raising :class:`~repro.errors.WalCorruptError` on interior damage —
        and returns the database with the log attached for further logging.
        A database that holds LSM facilities comes back in ``"lsm"``
        durability (group-committed fsyncs).
        """
        from repro.wal.replay import recover_database

        return recover_database(
            wal_dir,
            page_size=page_size,
            pool_capacity=pool_capacity,
            auto_rebuild=auto_rebuild,
            wal_fsync=wal_fsync,
            wal_fsync_interval=wal_fsync_interval,
        )

    def attach_wal(self, wal, wal_dir: str, durability: str = "wal") -> None:
        """Bind an open log to this database and to every facility."""
        self.wal = wal
        self.wal_dir = wal_dir
        self.durability = durability
        self.wal_applied_lsn = wal.end_lsn
        for (cls_name, attribute), per_path in self._indexes.items():
            for facility in per_path.values():
                facility.bind_wal(wal, cls_name, attribute)

    @property
    def checkpoint_path(self) -> Optional[str]:
        return (
            os.path.join(self.wal_dir, CHECKPOINT_FILE_NAME)
            if self.wal_dir is not None
            else None
        )

    def checkpoint(self) -> str:
        """Snapshot to the WAL directory and truncate the log.

        A fuzzy checkpoint in the ARIES sense: ``checkpoint_begin`` is
        logged, the snapshot is written stamped with the current LSN, and
        records before that LSN are dropped from the log. Returns the
        checkpoint snapshot path.
        """
        if self.wal is None:
            raise StorageError("checkpoint() requires durability='wal'")
        from repro.persistence.snapshot import save_database

        path = self.checkpoint_path
        with self.exclusive_scope():
            save_database(self, path)
        return path

    def close(self) -> None:
        """Release OS resources (the WAL file handle); safe to call twice."""
        if self.wal is not None:
            self.wal.close()

    def flush_indexes(self) -> None:
        """Seal every LSM facility's memtable into a run.

        WAL-logged like any other mutation: replay re-runs the flush at
        the same point in the operation history, so recovered run layouts
        stay byte-identical.
        """
        for (class_name, attribute), per_path in sorted(self._indexes.items()):
            for facility in sorted(per_path.values(), key=lambda f: f.name):
                if not getattr(facility, "is_lsm", False):
                    continue
                with self.write_scope(class_name):
                    with self._wal_op(
                        lambda c=class_name, a=attribute, n=facility.name: [
                            "flush_index", c, a, n
                        ]
                    ):
                        facility.flush()

    def compact_indexes(self) -> None:
        """Run tiered compaction to quiescence on every LSM facility (WAL-logged)."""
        for (class_name, attribute), per_path in sorted(self._indexes.items()):
            for facility in sorted(per_path.values(), key=lambda f: f.name):
                if not getattr(facility, "is_lsm", False):
                    continue
                with self.write_scope(class_name):
                    with self._wal_op(
                        lambda c=class_name, a=attribute, n=facility.name: [
                            "compact_index", c, a, n
                        ]
                    ):
                        facility.compact()

    @contextmanager
    def _wal_op(self, make_fields: Callable[[], list]):
        """Choke point for logical redo logging.

        When WAL durability is on (and we are not already inside a logical
        operation or a replay), ``make_fields()`` builds the record, which
        is durably appended *before* the body runs; facility-level
        maintenance records are suppressed for the scope since the logical
        record already implies them.

        Every facade mutator wraps its body in this scope, which makes it
        the one place the replica read-only guard needs to live.
        """
        if self.read_only:
            from repro.errors import ReadOnlyReplicaError

            raise ReadOnlyReplicaError(
                "this database is a read-only replica; write to the "
                "primary or promote() the replica first"
            )
        wal = self.wal
        if wal is None or not wal.accepts_logical_records:
            yield
            return
        wal.append(make_fields())
        with wal.logical_op():
            yield
        self.wal_applied_lsn = wal.end_lsn

    # ------------------------------------------------------------------
    # Latching
    # ------------------------------------------------------------------
    def read_scope(self, key: Optional[str] = None):
        """Shared (read-mode) hold on the facade latch for the body.

        ``key`` names the class being read — required when the latch is
        sharded, ignored by a database-wide :class:`RWLatch`. The query
        executor opens one of these around every plan execution.
        """
        return self.latch.read_scope(key)

    def write_scope(self, key: Optional[str] = None):
        """Exclusive (write-mode) hold for one class's mutations."""
        return self.latch.write_scope(key)

    def exclusive_scope(self):
        """Whole-database exclusion (checkpoint, snapshot save)."""
        return self.latch.exclusive_scope()

    def attach_fault_injector(self, injector=None, **kwargs):
        """Interpose a fault injector on the device *and* the WAL.

        Same contract as
        :meth:`~repro.storage.paged_file.StorageManager.attach_fault_injector`,
        plus: when this database logs through a WAL, the injector also
        intercepts ``wal-append`` operations (crash / torn / transient
        rules), so crash matrices can kill the process at any log point.
        """
        injector = self.storage.attach_fault_injector(injector, **kwargs)
        if self.wal is not None:
            self.wal.fault_injector = injector
        return injector

    def detach_fault_injector(self) -> None:
        self.storage.detach_fault_injector()
        if self.wal is not None:
            self.wal.fault_injector = None

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------
    def define_class(self, schema: ClassSchema) -> None:
        with self.write_scope(schema.name):
            if schema.name in self.objects.class_names():
                # Pre-check so a failing DDL never reaches the log.
                raise SchemaError(f"class already defined: {schema.name!r}")
            with self._wal_op(
                lambda: [
                    "define_class",
                    schema.name,
                    [
                        [a.name, a.kind.value, a.ref_class]
                        for a in schema.attributes
                    ],
                ]
            ):
                self.objects.define_class(schema)

    def schema(self, class_name: str) -> ClassSchema:
        return self.objects.schema(class_name)

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------
    def _check_indexable(self, class_name: str, attribute: str) -> None:
        attr = self.schema(class_name).attribute(attribute)
        if not attr.is_set:
            raise SchemaError(
                f"cannot build a set access facility on scalar attribute "
                f"{class_name}.{attribute}"
            )

    def _check_no_duplicate(
        self, class_name: str, attribute: str, facility_name: str
    ) -> None:
        """Raise before any files are created if the index already exists."""
        per_path = self._indexes.get((class_name, attribute), {})
        if facility_name in per_path:
            raise AccessFacilityError(
                f"a {facility_name!r} index already exists on "
                f"{class_name}.{attribute}"
            )

    def _register(
        self, class_name: str, attribute: str, facility: SetAccessFacility
    ) -> SetAccessFacility:
        key = (class_name, attribute)
        per_path = self._indexes.setdefault(key, {})
        if facility.name in per_path:
            raise AccessFacilityError(
                f"a {facility.name!r} index already exists on "
                f"{class_name}.{attribute}"
            )
        per_path[facility.name] = facility
        if self.wal is not None:
            facility.bind_wal(self.wal, class_name, attribute)
        # Backfill from existing objects so indexes may be added lazily;
        # facilities with a bulk path build bottom-up (one write per page)
        # instead of paying per-object maintenance cost.
        pairs = (
            (frozenset(values[attribute]), oid)
            for oid, values in self.objects.scan(class_name)
        )
        if hasattr(facility, "bulk_load") and self.objects.count(class_name):
            facility.bulk_load(pairs)
        else:
            for elements, oid in pairs:
                facility.insert(elements, oid)
        return facility

    def _resolve_lsm(self, lsm, flush_threshold, fanout):
        """Normalize the LSM options of a create-index call.

        ``lsm=None`` means "follow the database's durability mode": an
        ``"lsm"``-mode database builds LSM facilities by default, any other
        mode builds in-place ones. Explicit booleans always win, so the two
        layouts can be mixed on one database.
        """
        from repro.lsm.facility import DEFAULT_FANOUT, DEFAULT_FLUSH_THRESHOLD

        if lsm is None:
            lsm = self.durability == "lsm"
        lsm = bool(lsm)
        if flush_threshold is None:
            flush_threshold = DEFAULT_FLUSH_THRESHOLD
        if fanout is None:
            fanout = DEFAULT_FANOUT
        return lsm, flush_threshold, fanout

    def create_ssf_index(
        self,
        class_name: str,
        attribute: str,
        signature_bits: int,
        bits_per_element: int,
        seed: int = 0,
        lsm: Optional[bool] = None,
        flush_threshold: Optional[int] = None,
        fanout: Optional[int] = None,
    ) -> SetAccessFacility:
        """Sequential signature file on ``class.attribute``.

        With ``lsm=True`` (or on a ``durability="lsm"`` database) the
        facility is LSM-structured: SSF-format immutable runs behind a
        memtable, answer-identical to the in-place layout.
        """
        lsm, flush_threshold, fanout = self._resolve_lsm(
            lsm, flush_threshold, fanout
        )
        with self.write_scope(class_name):
            self._check_indexable(class_name, attribute)
            self._check_no_duplicate(class_name, attribute, "ssf")
            scheme = SignatureScheme(signature_bits, bits_per_element, seed=seed)
            with self._wal_op(
                lambda: [
                    "create_index",
                    "ssf",
                    class_name,
                    attribute,
                    [signature_bits, bits_per_element, seed, lsm,
                     flush_threshold, fanout],
                ]
            ):
                if lsm:
                    from repro.lsm.facility import LSMSignatureFacility

                    facility: SetAccessFacility = LSMSignatureFacility(
                        self.storage,
                        scheme,
                        "ssf",
                        f"ssf:{class_name}.{attribute}",
                        flush_threshold=flush_threshold,
                        fanout=fanout,
                    )
                else:
                    facility = SequentialSignatureFile(
                        self.storage,
                        scheme,
                        file_prefix=f"ssf:{class_name}.{attribute}",
                    )
                self._register(class_name, attribute, facility)
            return facility

    def create_bssf_index(
        self,
        class_name: str,
        attribute: str,
        signature_bits: int,
        bits_per_element: int,
        seed: int = 0,
        worst_case_insert: bool = False,
        lsm: Optional[bool] = None,
        flush_threshold: Optional[int] = None,
        fanout: Optional[int] = None,
    ) -> SetAccessFacility:
        """Bit-sliced signature file on ``class.attribute``.

        ``lsm=True`` (default on ``durability="lsm"`` databases) builds the
        LSM-structured variant over BSSF-format runs.
        """
        lsm, flush_threshold, fanout = self._resolve_lsm(
            lsm, flush_threshold, fanout
        )
        with self.write_scope(class_name):
            self._check_indexable(class_name, attribute)
            self._check_no_duplicate(class_name, attribute, "bssf")
            scheme = SignatureScheme(signature_bits, bits_per_element, seed=seed)
            with self._wal_op(
                lambda: [
                    "create_index",
                    "bssf",
                    class_name,
                    attribute,
                    [signature_bits, bits_per_element, seed, worst_case_insert,
                     lsm, flush_threshold, fanout],
                ]
            ):
                if lsm:
                    from repro.lsm.facility import LSMSignatureFacility

                    facility: SetAccessFacility = LSMSignatureFacility(
                        self.storage,
                        scheme,
                        "bssf",
                        f"bssf:{class_name}.{attribute}",
                        flush_threshold=flush_threshold,
                        fanout=fanout,
                        worst_case_insert=worst_case_insert,
                    )
                else:
                    facility = BitSlicedSignatureFile(
                        self.storage,
                        scheme,
                        file_prefix=f"bssf:{class_name}.{attribute}",
                        worst_case_insert=worst_case_insert,
                    )
                self._register(class_name, attribute, facility)
            return facility

    def create_nested_index(
        self, class_name: str, attribute: str, overflow_chains: bool = False
    ) -> NestedIndex:
        """Nested index (NIX) on ``class.attribute``.

        ``overflow_chains=True`` lifts the paper's single-leaf posting-list
        limit (needed for heavily skewed domains) at the cost of extra page
        reads on hot keys.
        """
        with self.write_scope(class_name):
            self._check_indexable(class_name, attribute)
            self._check_no_duplicate(class_name, attribute, "nix")
            with self._wal_op(
                lambda: [
                    "create_index",
                    "nix",
                    class_name,
                    attribute,
                    [overflow_chains],
                ]
            ):
                facility = NestedIndex(
                    self.storage,
                    file_prefix=f"nix:{class_name}.{attribute}",
                    overflow_chains=overflow_chains,
                )
                self._register(class_name, attribute, facility)
            return facility

    def indexes_on(self, class_name: str, attribute: str) -> Dict[str, SetAccessFacility]:
        return dict(self._indexes.get((class_name, attribute), {}))

    def indexed_paths(self) -> List[IndexKey]:
        """Every ``(class, attribute)`` pair that carries at least one
        facility, sorted — the iteration surface for schema replication."""
        return sorted(self._indexes)

    def index(
        self, class_name: str, attribute: str, facility_name: Optional[str] = None
    ) -> SetAccessFacility:
        """One facility on the path; by name, or the only one if unambiguous."""
        per_path = self._indexes.get((class_name, attribute), {})
        if not per_path:
            raise AccessFacilityError(
                f"no index on {class_name}.{attribute}"
            )
        if facility_name is None:
            if len(per_path) > 1:
                raise AccessFacilityError(
                    f"multiple indexes on {class_name}.{attribute}: "
                    f"{sorted(per_path)}; name one explicitly"
                )
            return next(iter(per_path.values()))
        try:
            return per_path[facility_name]
        except KeyError:
            raise AccessFacilityError(
                f"no {facility_name!r} index on {class_name}.{attribute}"
            ) from None

    # ------------------------------------------------------------------
    # Object lifecycle (index-maintaining)
    # ------------------------------------------------------------------
    def insert(self, class_name: str, values: Dict[str, Any]) -> OID:
        # When the record is built, the store reuses its validated
        # encoding — the logged bytes and the stored bytes are one image.
        encoded: List[Optional[bytes]] = [None]

        def fields() -> list:
            # Validate-before-log: a rejected insert must never reach the
            # WAL. OID allocation is deterministic, so the record can name
            # the OID the insert is about to allocate.
            self.schema(class_name).validate_object(values)
            next_oid = self.objects.peek_next_oid(class_name)
            encoded[0] = encode_object(values)
            return ["insert", class_name, next_oid.to_int(), encoded[0]]

        with self.write_scope(class_name):
            with self._wal_op(fields):
                oid = self.objects.insert(
                    class_name, values, payload=encoded[0]
                )
                for (cls, attr), per_path in self._indexes.items():
                    if cls == class_name:
                        for facility in per_path.values():
                            facility.insert(frozenset(values[attr]), oid)
        return oid

    def insert_with_oid(
        self, class_name: str, oid: OID, values: Dict[str, Any]
    ) -> OID:
        """Insert under a caller-chosen OID, maintaining every index.

        The shard-loading path: :func:`repro.sharding.partition_database`
        places each object on its hash-owner shard under the *original*
        OID, so sharded query answers are row-for-row identical to the
        unsharded database's. WAL records look exactly like a plain
        insert's (the record names its OID either way), so replay and log
        shipping need no new record kind.
        """

        encoded: List[Optional[bytes]] = [None]

        def fields() -> list:
            self.schema(class_name).validate_object(values)
            encoded[0] = encode_object(values)
            return ["insert", class_name, oid.to_int(), encoded[0]]

        with self.write_scope(class_name):
            with self._wal_op(fields):
                self.objects.insert_with_oid(
                    class_name, oid, values, payload=encoded[0]
                )
                for (cls, attr), per_path in self._indexes.items():
                    if cls == class_name:
                        for facility in per_path.values():
                            facility.insert(frozenset(values[attr]), oid)
        return oid

    def get(self, oid: OID) -> Dict[str, Any]:
        return self.objects.fetch(oid)

    def update(self, oid: OID, values: Dict[str, Any]) -> None:
        class_name = self.objects.class_name_of(oid)

        encoded: List[Optional[bytes]] = [None]

        def fields() -> list:
            self.schema(class_name).validate_object(values)
            encoded[0] = encode_object(values)
            return ["update", oid.to_int(), encoded[0]]

        with self.write_scope(class_name):
            old_values = self.objects.fetch(oid)
            with self._wal_op(fields):
                self.objects.update(oid, values, payload=encoded[0])
                for (cls, attr), per_path in self._indexes.items():
                    if cls != class_name:
                        continue
                    old_set = frozenset(old_values[attr])
                    new_set = frozenset(values[attr])
                    if old_set == new_set:
                        continue
                    for facility in per_path.values():
                        facility.delete(old_set, oid)
                        facility.insert(new_set, oid)

    def delete(self, oid: OID) -> None:
        class_name = self.objects.class_name_of(oid)
        with self.write_scope(class_name):
            values = self.objects.fetch(oid)
            with self._wal_op(lambda: ["delete", oid.to_int()]):
                for (cls, attr), per_path in self._indexes.items():
                    if cls == class_name:
                        for facility in per_path.values():
                            facility.delete(frozenset(values[attr]), oid)
                self.objects.delete(oid)

    def scan(self, class_name: str) -> Iterator[Tuple[OID, Dict[str, Any]]]:
        return self.objects.scan(class_name)

    def count(self, class_name: str) -> int:
        return self.objects.count(class_name)

    # ------------------------------------------------------------------
    # Degraded facilities and recovery
    # ------------------------------------------------------------------
    def mark_degraded(
        self, class_name: str, attribute: str, facility_name: str, reason: str
    ) -> None:
        """Record that a facility's storage failed; queries must not use it.

        Idempotent — the first reason is kept so diagnostics point at the
        original failure, not a follow-on symptom.
        """
        key = (class_name, attribute, facility_name)
        self._degraded.setdefault(key, reason)
        self._sync_degraded_gauge()

    def clear_degraded(
        self, class_name: str, attribute: str, facility_name: str
    ) -> None:
        self._degraded.pop((class_name, attribute, facility_name), None)
        self._sync_degraded_gauge()

    def is_degraded(
        self, class_name: str, attribute: str, facility_name: str
    ) -> bool:
        return (class_name, attribute, facility_name) in self._degraded

    def degraded_reason(
        self, class_name: str, attribute: str, facility_name: str
    ) -> Optional[str]:
        return self._degraded.get((class_name, attribute, facility_name))

    def degraded_facilities(self) -> Dict[str, str]:
        """``{"Class.attribute/facility": reason}`` for every degraded path."""
        return {
            f"{cls}.{attr}/{name}": reason
            for (cls, attr, name), reason in sorted(self._degraded.items())
        }

    def _sync_degraded_gauge(self) -> None:
        from repro.obs.metrics import REGISTRY

        REGISTRY.gauge("recovery.degraded_facilities").set(len(self._degraded))

    def rebuild_facility(
        self,
        class_name: str,
        attribute: str,
        facility_name: Optional[str] = None,
    ) -> "SetAccessFacility":
        """Reconstruct one facility from the object file.

        The repair path for a degraded (corrupted / lost) facility: drops
        its files, bulk-loads a fresh structure from live objects, clears
        the degraded mark, and returns the new facility. The result is
        byte-for-byte what a fresh build over the same objects produces.

        Takes the write latch for the class — when called from a reader
        (the executor's auto-rebuild path) this is a read-to-write upgrade,
        which the latch supports for a single upgrader at a time.
        """
        from repro.recovery.rebuild import rebuild_facility

        with self.write_scope(class_name):
            return rebuild_facility(self, class_name, attribute, facility_name)

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def io_snapshot(self) -> IOSnapshot:
        return self.storage.snapshot()

    def verify_indexes(self) -> None:
        """Structural verification of every facility (tests / debugging)."""
        for per_path in self._indexes.values():
            for facility in per_path.values():
                facility.verify()

    def vacuum_index(
        self, class_name: str, attribute: str, facility_name: str
    ) -> "SetAccessFacility":
        """Rebuild one facility from live objects, dropping tombstones.

        The paper's update model flags deletions in the OID file and never
        reclaims signature-file space; after heavy churn the stale entries
        inflate both storage and scan costs. Rebuilding drops the facility's
        files and bulk-loads a fresh one from the object store. Returns the
        new facility (the old handle is invalid afterwards).

        A vacuum *is* a rebuild — same implementation as
        :meth:`rebuild_facility` (tombstones cannot survive either).
        """
        from repro.recovery.rebuild import rebuild_facility

        with self.write_scope(class_name):
            return rebuild_facility(self, class_name, attribute, facility_name)

    def analyze(self, class_name: str, attribute: str, refresh: bool = True):
        """Collect (or refresh) workload statistics for one set attribute.

        The planner consults these automatically when no explicit
        :class:`~repro.query.planner.CostContext` is supplied, so one
        ``analyze`` per indexed path replaces per-query context plumbing.
        """
        self._check_indexable(class_name, attribute)
        return self.statistics.get(
            self.objects, class_name, attribute, refresh=refresh
        )

    def check_consistency(self, sample: int = 50) -> Dict[str, int]:
        """Cross-validate every index against the object store.

        For up to ``sample`` objects per indexed path, a superset search
        with the object's own set value must return the object (signature
        facilities guarantee no false dismissals; NIX intersection is
        exact), and no search may surface a dead OID. Structural
        :meth:`verify` runs on every facility as well.

        Returns the number of objects checked per ``class.attribute``;
        raises :class:`IndexCorruptionError` on the first inconsistency.
        """
        from repro.errors import IndexCorruptionError

        checked: Dict[str, int] = {}
        for (class_name, attribute), per_path in sorted(self._indexes.items()):
            for facility in per_path.values():
                facility.verify()
            count = 0
            for oid, values in self.objects.scan(class_name):
                if count >= sample:
                    break
                target = frozenset(values[attribute])
                for name, facility in per_path.items():
                    result = facility.search_superset(target)
                    if oid not in result.candidates:
                        raise IndexCorruptionError(
                            f"{name} on {class_name}.{attribute} lost {oid} "
                            f"(set value {sorted(target, key=repr)!r})"
                        )
                    for candidate in result.candidates:
                        if not self.objects.exists(candidate):
                            raise IndexCorruptionError(
                                f"{name} on {class_name}.{attribute} returned "
                                f"dead OID {candidate}"
                            )
                count += 1
            checked[f"{class_name}.{attribute}"] = count
        return checked

    def facility_storage_report(self) -> Dict[str, Dict[str, int]]:
        """Per-index page counts, keyed ``class.attribute/facility``."""
        report = {}
        for (cls, attr), per_path in self._indexes.items():
            for name, facility in per_path.items():
                report[f"{cls}.{attr}/{name}"] = facility.storage_pages()
        return report
