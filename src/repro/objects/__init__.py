"""OODB object layer: OIDs, schemas, serialization, object store, facade."""

from repro.objects.database import Database
from repro.objects.object_file import ObjectFile, RecordAddress
from repro.objects.object_store import ObjectStore
from repro.objects.oid import OID, OIDAllocator
from repro.objects.schema import Attribute, AttributeKind, ClassSchema
from repro.objects.serde import decode_object, decode_value, encode_object, encode_value

__all__ = [
    "Attribute",
    "AttributeKind",
    "ClassSchema",
    "Database",
    "OID",
    "OIDAllocator",
    "ObjectFile",
    "ObjectStore",
    "RecordAddress",
    "decode_object",
    "decode_value",
    "encode_object",
    "encode_value",
]
