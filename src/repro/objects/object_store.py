"""Object store: classes, OIDs, and per-class object files.

Implements the paper's object-manager assumptions: every object has a
unique OID, any object is directly accessible by its OID (one page access),
and objects live undecomposed in the object file of their class.

The OID → record-address directory is kept in memory and its maintenance is
not charged page accesses, mirroring the paper's model in which OID-based
object access costs exactly ``P_s``/``P_u`` = 1 page.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

from repro.errors import ObjectStoreError, SchemaError, UnknownOIDError
from repro.objects.object_file import ObjectFile, RecordAddress
from repro.objects.oid import OID, OIDAllocator
from repro.objects.schema import ClassSchema
from repro.objects.serde import decode_object, encode_object
from repro.storage.paged_file import StorageManager


class ObjectStore:
    """All classes' objects on one storage manager."""

    def __init__(self, storage: StorageManager):
        self.storage = storage
        self._schemas: Dict[str, ClassSchema] = {}
        self._class_ids: Dict[str, int] = {}
        self._class_names: Dict[int, str] = {}
        self._files: Dict[str, ObjectFile] = {}
        self._directory: Dict[OID, RecordAddress] = {}
        self._live_counts: Dict[int, int] = {}
        # Monotonic churn counter per class: inserts and deletes both
        # count. The live count alone cannot drive staleness decisions —
        # a delete followed by an explicit-OID re-insert (WAL replay,
        # run-merge order, shard loading) nets zero even though the
        # attribute distribution may have shifted arbitrarily.
        self._mutation_counts: Dict[int, int] = {}
        self._allocator = OIDAllocator()
        self._next_class_id = 1

    # ------------------------------------------------------------------
    # Schema management
    # ------------------------------------------------------------------
    def define_class(self, schema: ClassSchema) -> None:
        if schema.name in self._schemas:
            raise SchemaError(f"class already defined: {schema.name!r}")
        class_id = self._next_class_id
        self._next_class_id += 1
        self._schemas[schema.name] = schema
        self._class_ids[schema.name] = class_id
        self._class_names[class_id] = schema.name
        paged = self.storage.create_file(self.object_file_name(schema.name))
        self._files[schema.name] = ObjectFile(paged)

    @staticmethod
    def object_file_name(class_name: str) -> str:
        return f"objects:{class_name}"

    def schema(self, class_name: str) -> ClassSchema:
        try:
            return self._schemas[class_name]
        except KeyError:
            raise SchemaError(f"class not defined: {class_name!r}") from None

    def class_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._schemas))

    def class_ids(self) -> Dict[str, int]:
        """``{class name: class id}`` — ids follow definition order.

        Replicating a schema elsewhere (shard loading, replica rebuild)
        must define classes in ascending id order so OIDs — which embed
        the class id — mean the same thing on both sides.
        """
        return dict(self._class_ids)

    def class_name_of(self, oid: OID) -> str:
        try:
            return self._class_names[oid.class_id]
        except KeyError:
            raise UnknownOIDError(f"OID {oid} has unknown class id") from None

    # ------------------------------------------------------------------
    # Object lifecycle
    # ------------------------------------------------------------------
    def peek_next_oid(self, class_name: str) -> OID:
        """The OID the next insert into ``class_name`` will allocate."""
        return self._allocator.peek(self._class_ids[class_name])

    def insert(
        self,
        class_name: str,
        values: Dict[str, Any],
        payload: Optional[bytes] = None,
    ) -> OID:
        """Insert ``values``; ``payload`` is its pre-validated encoding.

        Callers that already validated and encoded the object (the WAL
        path builds its redo record from the same image) pass ``payload``
        so the work is not repeated — the logged bytes and the stored
        bytes are then identical by construction.
        """
        if payload is None:
            self.schema(class_name).validate_object(values)
            payload = encode_object(values)
        oid = self._allocator.allocate(self._class_ids[class_name])
        address = self._files[class_name].insert(payload)
        self._directory[oid] = address
        class_id = oid.class_id
        self._live_counts[class_id] = self._live_counts.get(class_id, 0) + 1
        self._bump_mutations(class_id)
        return oid

    def insert_with_oid(
        self,
        class_name: str,
        oid: OID,
        values: Dict[str, Any],
        payload: Optional[bytes] = None,
    ) -> OID:
        """Insert under a caller-chosen OID (WAL replay, shard loading).

        The OID's class id must match ``class_name`` and the OID must not
        already be live; its serial is reserved so later fresh allocations
        cannot collide. Serial gaps are fine — a shard holds only its hash
        slice of a class, and :meth:`scan` orders by OID, not by density.
        ``payload`` is the object's pre-validated encoding, as in
        :meth:`insert`.
        """
        if payload is None:
            self.schema(class_name).validate_object(values)
            payload = encode_object(values)
        class_id = self._class_ids[class_name]
        if oid.class_id != class_id:
            raise ObjectStoreError(
                f"OID {oid} carries class id {oid.class_id}, but "
                f"{class_name!r} is class {class_id}"
            )
        if oid in self._directory:
            raise ObjectStoreError(f"{oid} is already live")
        self._allocator.reserve(class_id, oid.serial)
        address = self._files[class_name].insert(payload)
        self._directory[oid] = address
        self._live_counts[class_id] = self._live_counts.get(class_id, 0) + 1
        self._bump_mutations(class_id)
        return oid

    def fetch(self, oid: OID) -> Dict[str, Any]:
        """Fetch an object by OID — one logical page read, per the model."""
        class_name = self.class_name_of(oid)
        address = self._address(oid)
        return decode_object(self._files[class_name].read(address))

    def update(
        self,
        oid: OID,
        values: Dict[str, Any],
        payload: Optional[bytes] = None,
    ) -> None:
        """Replace an object's fields; ``payload`` as in :meth:`insert`."""
        class_name = self.class_name_of(oid)
        if payload is None:
            self.schema(class_name).validate_object(values)
            payload = encode_object(values)
        address = self._address(oid)
        new_address = self._files[class_name].update(address, payload)
        self._directory[oid] = new_address
        self._bump_mutations(oid.class_id)

    def delete(self, oid: OID) -> None:
        class_name = self.class_name_of(oid)
        address = self._address(oid)
        self._files[class_name].delete(address)
        del self._directory[oid]
        self._live_counts[oid.class_id] -= 1
        self._bump_mutations(oid.class_id)

    def _bump_mutations(self, class_id: int) -> None:
        self._mutation_counts[class_id] = (
            self._mutation_counts.get(class_id, 0) + 1
        )

    def _address(self, oid: OID) -> RecordAddress:
        try:
            return self._directory[oid]
        except KeyError:
            raise UnknownOIDError(f"no live object for {oid}") from None

    def exists(self, oid: OID) -> bool:
        return oid in self._directory

    # ------------------------------------------------------------------
    # Scans & statistics
    # ------------------------------------------------------------------
    def scan(self, class_name: str) -> Iterator[Tuple[OID, Dict[str, Any]]]:
        """All live objects of a class in OID order.

        Costs one logical read per object page, like a heap scan would.
        """
        self.schema(class_name)  # raises for unknown classes
        class_id = self._class_ids[class_name]
        oids = sorted(
            oid for oid in self._directory if oid.class_id == class_id
        )
        for oid in oids:
            yield oid, self.fetch(oid)

    def count(self, class_name: str) -> int:
        """Live objects of a class — O(1) via the maintained counter.

        Called on every planner statistics lookup (drift detection), so it
        must not scan the directory: on a 64K-object store that genexpr
        dominated per-query planning time.
        """
        self.schema(class_name)
        class_id = self._class_ids[class_name]
        return self._live_counts.get(class_id, 0)

    def mutation_count(self, class_name: str) -> int:
        """Total lifecycle mutations (insert/update/delete) ever applied.

        Monotonic, unlike :meth:`count`: churn that nets zero live objects
        (delete + explicit-OID re-insert, update sweeps) still advances it,
        so statistics staleness can be detected even when the live count
        never moves.
        """
        self.schema(class_name)
        class_id = self._class_ids[class_name]
        return self._mutation_counts.get(class_id, 0)

    def object_pages(self, class_name: str) -> int:
        """Pages occupied by a class's object file."""
        try:
            return self._files[class_name].num_pages
        except KeyError:
            raise SchemaError(f"class not defined: {class_name!r}") from None

    def set_attribute_value(self, oid: OID, attribute: str) -> frozenset:
        """Fetch just a set attribute's value (still one page access)."""
        values = self.fetch(oid)
        class_name = self.class_name_of(oid)
        attr = self.schema(class_name).attribute(attribute)
        if not attr.is_set:
            raise ObjectStoreError(
                f"attribute {attribute!r} of {class_name!r} is not a set"
            )
        return frozenset(values[attribute])
