"""Compact tagged binary serialization for object attribute values.

Objects are dictionaries mapping attribute names to values; values may be
primitives (str / int / float / bool / None), OIDs, or homogeneous-ish
containers (list / tuple / set / frozenset) of further values. The format is
a one-byte tag followed by a length- or fixed-width payload, little-endian
throughout. Sets are serialized in sorted-key order so equal sets always
produce identical bytes (useful for testing and deduplication).

This is deliberately a small purpose-built format rather than pickle/json:
it is deterministic, versioned, byte-budgetable (the object store needs to
know sizes against the 4 KiB page), and cannot execute code on load.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Tuple

from repro.errors import ObjectStoreError
from repro.objects.oid import OID

FORMAT_VERSION = 1

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_OID = 0x07
_TAG_LIST = 0x08
_TAG_TUPLE = 0x09
_TAG_SET = 0x0A
_TAG_FROZENSET = 0x0B


def _sort_key(value: Any) -> Tuple[str, bytes]:
    """Total order over heterogeneous set members via their encoding."""
    return (type(value).__name__, encode_value(value))


def encode_value(value: Any) -> bytes:
    """Encode one value to tagged bytes."""
    if value is None:
        return bytes([_TAG_NONE])
    if value is False:
        return bytes([_TAG_FALSE])
    if value is True:
        return bytes([_TAG_TRUE])
    if isinstance(value, OID):
        return bytes([_TAG_OID]) + value.to_bytes()
    if isinstance(value, int):
        if not -(2**63) <= value < 2**63:
            raise ObjectStoreError(f"int out of 64-bit range: {value}")
        return bytes([_TAG_INT]) + struct.pack("<q", value)
    if isinstance(value, float):
        return bytes([_TAG_FLOAT]) + struct.pack("<d", value)
    if isinstance(value, str):
        payload = value.encode("utf-8")
        return bytes([_TAG_STR]) + struct.pack("<I", len(payload)) + payload
    if isinstance(value, bytes):
        return bytes([_TAG_BYTES]) + struct.pack("<I", len(value)) + value
    if isinstance(value, (list, tuple, set, frozenset)):
        tag = {
            list: _TAG_LIST,
            tuple: _TAG_TUPLE,
            set: _TAG_SET,
            frozenset: _TAG_FROZENSET,
        }[type(value)]
        items: List[Any]
        if isinstance(value, (set, frozenset)):
            items = sorted(value, key=_sort_key)
        else:
            items = list(value)
        body = b"".join(encode_value(item) for item in items)
        return bytes([tag]) + struct.pack("<I", len(items)) + body
    raise ObjectStoreError(
        f"cannot serialize value of type {type(value).__name__}: {value!r}"
    )


def _decode_value(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise ObjectStoreError("truncated value: missing tag byte")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_OID:
        end = offset + 8
        _check_span(data, offset, 8)
        return OID.from_bytes(data[offset:end]), end
    if tag == _TAG_INT:
        _check_span(data, offset, 8)
        return struct.unpack_from("<q", data, offset)[0], offset + 8
    if tag == _TAG_FLOAT:
        _check_span(data, offset, 8)
        return struct.unpack_from("<d", data, offset)[0], offset + 8
    if tag in (_TAG_STR, _TAG_BYTES):
        _check_span(data, offset, 4)
        length = struct.unpack_from("<I", data, offset)[0]
        offset += 4
        _check_span(data, offset, length)
        payload = data[offset : offset + length]
        offset += length
        if tag == _TAG_STR:
            return payload.decode("utf-8"), offset
        return bytes(payload), offset
    if tag in (_TAG_LIST, _TAG_TUPLE, _TAG_SET, _TAG_FROZENSET):
        _check_span(data, offset, 4)
        count = struct.unpack_from("<I", data, offset)[0]
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _decode_value(data, offset)
            items.append(item)
        if tag == _TAG_LIST:
            return items, offset
        if tag == _TAG_TUPLE:
            return tuple(items), offset
        if tag == _TAG_SET:
            return set(items), offset
        return frozenset(items), offset
    raise ObjectStoreError(f"unknown serialization tag: 0x{tag:02x}")


def _check_span(data: bytes, offset: int, length: int) -> None:
    if offset + length > len(data):
        raise ObjectStoreError("truncated value payload")


def decode_value(data: bytes) -> Any:
    """Decode one value; raises if trailing bytes remain."""
    value, offset = _decode_value(data, 0)
    if offset != len(data):
        raise ObjectStoreError(f"{len(data) - offset} trailing bytes after value")
    return value


def encode_object(attributes: Dict[str, Any]) -> bytes:
    """Encode a full object (attribute dict) with a version header."""
    parts = [struct.pack("<BH", FORMAT_VERSION, len(attributes))]
    for name in sorted(attributes):
        name_bytes = name.encode("utf-8")
        if len(name_bytes) > 0xFF:
            raise ObjectStoreError(f"attribute name too long: {name!r}")
        parts.append(struct.pack("<B", len(name_bytes)))
        parts.append(name_bytes)
        parts.append(encode_value(attributes[name]))
    return b"".join(parts)


def decode_object(data: bytes) -> Dict[str, Any]:
    """Inverse of :func:`encode_object`."""
    if len(data) < 3:
        raise ObjectStoreError("truncated object header")
    version, count = struct.unpack_from("<BH", data, 0)
    if version != FORMAT_VERSION:
        raise ObjectStoreError(f"unsupported object format version: {version}")
    offset = 3
    attributes: Dict[str, Any] = {}
    for _ in range(count):
        _check_span(data, offset, 1)
        name_len = data[offset]
        offset += 1
        _check_span(data, offset, name_len)
        name = data[offset : offset + name_len].decode("utf-8")
        offset += name_len
        value, offset = _decode_value(data, offset)
        attributes[name] = value
    if offset != len(data):
        raise ObjectStoreError(f"{len(data) - offset} trailing bytes after object")
    return attributes
