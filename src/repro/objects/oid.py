"""Object identifiers.

The paper assumes 8-byte OIDs with direct object access (Table 2's
``oid = 8``). An :class:`OID` packs a 16-bit class id and a 48-bit serial
number into one 64-bit word, so it round-trips through the paper's 8-byte
on-disk representation exactly.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ObjectStoreError

OID_BYTES = 8
_MAX_CLASS_ID = 0xFFFF
_MAX_SERIAL = 0xFFFFFFFFFFFF


@dataclass(frozen=True, order=True)
class OID:
    """A 64-bit object identifier: (class_id, serial)."""

    class_id: int
    serial: int

    def __post_init__(self) -> None:
        if not 0 <= self.class_id <= _MAX_CLASS_ID:
            raise ObjectStoreError(f"class_id out of range: {self.class_id}")
        if not 0 <= self.serial <= _MAX_SERIAL:
            raise ObjectStoreError(f"serial out of range: {self.serial}")

    def to_int(self) -> int:
        return (self.class_id << 48) | self.serial

    @classmethod
    def from_int(cls, value: int) -> "OID":
        if not 0 <= value <= 0xFFFFFFFFFFFFFFFF:
            raise ObjectStoreError(f"OID integer out of range: {value}")
        return cls(class_id=value >> 48, serial=value & _MAX_SERIAL)

    def to_bytes(self) -> bytes:
        return struct.pack("<Q", self.to_int())

    @classmethod
    def from_bytes(cls, data: bytes) -> "OID":
        if len(data) != OID_BYTES:
            raise ObjectStoreError(f"OID must be {OID_BYTES} bytes, got {len(data)}")
        return cls.from_int(struct.unpack("<Q", data)[0])

    def __repr__(self) -> str:
        return f"OID({self.class_id}:{self.serial})"


class OIDAllocator:
    """Monotonic per-class serial allocation."""

    def __init__(self) -> None:
        self._next_serial: dict = {}

    def allocate(self, class_id: int) -> OID:
        serial = self._next_serial.get(class_id, 0)
        if serial > _MAX_SERIAL:
            raise ObjectStoreError(f"serial space exhausted for class {class_id}")
        self._next_serial[class_id] = serial + 1
        return OID(class_id=class_id, serial=serial)

    def peek(self, class_id: int) -> OID:
        """The OID the next :meth:`allocate` call will return.

        Write-ahead logging needs the OID *before* the insert mutates any
        state, so the redo record can name it.
        """
        return OID(class_id=class_id, serial=self._next_serial.get(class_id, 0))

    def reserve(self, class_id: int, serial: int) -> None:
        """Mark ``serial`` as used; later allocations start past it.

        Explicit-OID inserts (WAL replay, shard loading) place objects
        under serials that did not come from :meth:`allocate`; reserving
        keeps the monotonic guarantee — a fresh allocation can never
        collide with a reserved serial.
        """
        if not 0 <= serial <= _MAX_SERIAL:
            raise ObjectStoreError(f"serial out of range: {serial}")
        if serial >= self._next_serial.get(class_id, 0):
            self._next_serial[class_id] = serial + 1

    def high_water_mark(self, class_id: int) -> int:
        """Number of OIDs ever allocated for the class."""
        return self._next_serial.get(class_id, 0)
