"""Slotted-page object file.

Objects are stored "straightforwardly in the object file" (paper §4
assumption: no decomposition, one page access fetches an object). Each page
is a classic slotted page:

* header (4 bytes): ``u16 slot_count``, ``u16 free_start`` — the offset of
  the first free data byte (data grows forward from the header);
* slot directory growing backward from the page end, 4 bytes per slot:
  ``u16 offset``, ``u16 length`` (offset 0xFFFF marks a deleted slot);
* record bytes in the middle.

Records must fit in one page (page_size - 8 bytes of overhead); the paper's
workloads (sets of up to a few hundred elements) satisfy this comfortably.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.errors import ObjectStoreError
from repro.storage.page import Page
from repro.storage.paged_file import PagedFile

_HEADER_BYTES = 4
_SLOT_BYTES = 4
# Offset sentinel marking a deleted slot; legitimate offsets are < page size
# (pages are at most 64 KiB because slot fields are u16).
_DELETED_OFFSET = 0xFFFF


class RecordAddress(Tuple[int, int]):
    """(page_no, slot) pair; a plain tuple subtype for readable repr."""

    def __new__(cls, page_no: int, slot: int) -> "RecordAddress":
        return super().__new__(cls, (page_no, slot))

    @property
    def page_no(self) -> int:
        return self[0]

    @property
    def slot(self) -> int:
        return self[1]

    def __repr__(self) -> str:
        return f"RecordAddress(page={self[0]}, slot={self[1]})"


def _slot_entry_offset(page_size: int, slot: int) -> int:
    return page_size - _SLOT_BYTES * (slot + 1)


def _free_bytes(page: Page) -> int:
    slot_count = page.read_u16(0)
    free_start = page.read_u16(2)
    directory_start = _slot_entry_offset(page.page_size, slot_count - 1) if slot_count else page.page_size
    return directory_start - free_start


class ObjectFile:
    """Record-oriented heap file over a :class:`PagedFile`."""

    def __init__(self, paged_file: PagedFile):
        self.file = paged_file
        self.max_record_bytes = self.file.page_size - _HEADER_BYTES - _SLOT_BYTES

    # ------------------------------------------------------------------
    # Record operations
    # ------------------------------------------------------------------
    def insert(self, record: bytes) -> RecordAddress:
        """Append a record, returning its address.

        Appends to the last page when it has room; otherwise allocates a new
        page. This keeps the paper's sequential-fill assumption: N objects
        occupy ``ceil(N / objects_per_page)`` pages.
        """
        if len(record) > self.max_record_bytes:
            raise ObjectStoreError(
                f"record of {len(record)} bytes exceeds page capacity "
                f"({self.max_record_bytes} bytes)"
            )
        if self.file.num_pages:
            page_no = self.file.num_pages - 1
            page = self.file.read_page(page_no)
            if _free_bytes(page) >= len(record) + _SLOT_BYTES:
                slot = self._place(page, record)
                self.file.write_page(page_no, page)
                return RecordAddress(page_no, slot)
        page_no, page = self.file.append_page()
        page.write_u16(2, _HEADER_BYTES)
        slot = self._place(page, record)
        self.file.write_page(page_no, page)
        return RecordAddress(page_no, slot)

    def _place(self, page: Page, record: bytes) -> int:
        slot_count = page.read_u16(0)
        free_start = page.read_u16(2) or _HEADER_BYTES
        page.write_bytes(free_start, record)
        slot = slot_count
        entry = _slot_entry_offset(page.page_size, slot)
        page.write_u16(entry, free_start)
        page.write_u16(entry + 2, len(record))
        page.write_u16(0, slot_count + 1)
        page.write_u16(2, free_start + len(record))
        return slot

    def read(self, address: RecordAddress) -> bytes:
        page = self.file.read_page(address.page_no)
        offset, length = self._slot(page, address)
        if offset == _DELETED_OFFSET:
            raise ObjectStoreError(f"record at {address} was deleted")
        return page.read_bytes(offset, length)

    def delete(self, address: RecordAddress) -> None:
        """Mark a record deleted (offset sentinel). Space is not reclaimed —
        matching the paper's delete-flag update model."""
        page = self.file.read_page(address.page_no)
        offset, _ = self._slot(page, address)
        if offset == _DELETED_OFFSET:
            raise ObjectStoreError(f"record at {address} already deleted")
        entry = _slot_entry_offset(page.page_size, address.slot)
        page.write_u16(entry, _DELETED_OFFSET)
        self.file.write_page(address.page_no, page)

    def update(self, address: RecordAddress, record: bytes) -> RecordAddress:
        """Rewrite a record. In place when the new image fits the old
        footprint, otherwise delete + reinsert (address changes)."""
        page = self.file.read_page(address.page_no)
        offset, length = self._slot(page, address)
        if offset == _DELETED_OFFSET:
            raise ObjectStoreError(f"record at {address} was deleted")
        if len(record) <= length:
            page.write_bytes(offset, record)
            entry = _slot_entry_offset(page.page_size, address.slot)
            page.write_u16(entry + 2, len(record))
            self.file.write_page(address.page_no, page)
            return address
        self.delete(address)
        return self.insert(record)

    def _slot(self, page: Page, address: RecordAddress) -> Tuple[int, int]:
        slot_count = page.read_u16(0)
        if not 0 <= address.slot < slot_count:
            raise ObjectStoreError(
                f"slot {address.slot} out of range on page {address.page_no} "
                f"({slot_count} slots)"
            )
        entry = _slot_entry_offset(page.page_size, address.slot)
        return page.read_u16(entry), page.read_u16(entry + 2)

    # ------------------------------------------------------------------
    # Scans & introspection
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[Tuple[RecordAddress, bytes]]:
        """All live records in storage order; one logical read per page."""
        for page_no, page in self.file.scan_pages():
            slot_count = page.read_u16(0)
            for slot in range(slot_count):
                entry = _slot_entry_offset(page.page_size, slot)
                offset = page.read_u16(entry)
                length = page.read_u16(entry + 2)
                if offset != _DELETED_OFFSET:
                    yield RecordAddress(page_no, slot), page.read_bytes(offset, length)

    @property
    def num_pages(self) -> int:
        return self.file.num_pages

    def live_record_count(self) -> int:
        return sum(1 for _ in self.scan())
