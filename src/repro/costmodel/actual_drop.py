"""Actual-drop estimation — paper §4.4.

Target sets are ``Dt`` elements drawn uniformly without replacement from a
domain of ``V`` values; query sets are ``Dq`` such elements. The number of
*actual* drops (objects truly satisfying the predicate) is hypergeometric:

``T ⊇ Q`` (needs ``Dt >= Dq``)
    ``A = N · C(V−Dq, Dt−Dq) / C(V, Dt)`` — the probability a random target
    contains all ``Dq`` query elements.

``T ⊆ Q`` (needs ``Dq >= Dt``)
    ``A = N · C(Dq, Dt) / C(V, Dt)`` — the probability every target element
    falls inside the query set; "almost negligible for probable values".

Appendix B additionally needs the full intersection-size distribution,
exposed here as :func:`intersection_probability`.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.costmodel.parameters import CostParameters
from repro.errors import ConfigurationError


def _check(V: int, Dt: int, Dq: int) -> None:
    if Dt < 0 or Dq < 0:
        raise ConfigurationError("set cardinalities must be >= 0")
    if Dt > V:
        raise ConfigurationError(f"Dt={Dt} exceeds domain cardinality V={V}")
    if Dq > V:
        raise ConfigurationError(f"Dq={Dq} exceeds domain cardinality V={V}")


def superset_probability(V: int, Dt: int, Dq: int) -> float:
    """P[target ⊇ query] for random Dt- and fixed Dq-element sets."""
    _check(V, Dt, Dq)
    if Dq > Dt:
        return 0.0
    if Dq == 0:
        return 1.0
    ratio = Fraction(math.comb(V - Dq, Dt - Dq), math.comb(V, Dt))
    return float(ratio)


def subset_probability(V: int, Dt: int, Dq: int) -> float:
    """P[target ⊆ query] for random Dt- and fixed Dq-element sets."""
    _check(V, Dt, Dq)
    if Dt > Dq:
        return 0.0
    if Dt == 0:
        return 1.0
    ratio = Fraction(math.comb(Dq, Dt), math.comb(V, Dt))
    return float(ratio)


def intersection_probability(V: int, Dt: int, Dq: int, j: int) -> float:
    """P[|target ∩ query| = j] — hypergeometric term of Appendix B."""
    _check(V, Dt, Dq)
    if j < 0 or j > min(Dt, Dq) or Dt - j > V - Dq:
        return 0.0
    ratio = Fraction(
        math.comb(Dq, j) * math.comb(V - Dq, Dt - j), math.comb(V, Dt)
    )
    return float(ratio)


def actual_drops_superset(params: CostParameters, Dt: int, Dq: int) -> float:
    """``A`` for ``T ⊇ Q``."""
    return params.num_objects * superset_probability(
        params.domain_cardinality, Dt, Dq
    )


def actual_drops_subset(params: CostParameters, Dt: int, Dq: int) -> float:
    """``A`` for ``T ⊆ Q``."""
    return params.num_objects * subset_probability(
        params.domain_cardinality, Dt, Dq
    )


def expected_intersecting_non_subset(
    params: CostParameters, Dt: int, Dq: int
) -> float:
    """Appendix B: E[# objects intersecting the query but not ⊆ it].

    These are exactly the NIX ``T ⊆ Q`` candidates that fail drop
    resolution — each costs an unsuccessful object access ``Pu``.
    """
    V = params.domain_cardinality
    total = 0.0
    for j in range(1, min(Dt, Dq) + 1):
        if Dt <= Dq and j == Dt:
            continue  # full containment is the actual-drop case
        total += intersection_probability(V, Dt, Dq, j)
    return params.num_objects * total
