"""Cost-model parameters — paper Table 2 (constants) and derived values.

The defaults are exactly the paper's: N = 32,000 objects, P = 4096-byte
pages, 8-byte OIDs, a set domain of V = 13,000 values, and unit page cost
for both successful (``Ps``) and unsuccessful (``Pu``) object retrievals.
Experiments at other scales (the empirical validation runs a smaller N)
construct their own instance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CostParameters:
    """Table 2's constant parameters."""

    num_objects: int = 32_000        # N
    page_bytes: int = 4096           # P
    oid_bytes: int = 8               # oid
    domain_cardinality: int = 13_000  # V
    bits_per_byte: int = 8           # b
    pages_per_successful: float = 1.0    # Ps
    pages_per_unsuccessful: float = 1.0  # Pu

    def __post_init__(self) -> None:
        if self.num_objects <= 0:
            raise ConfigurationError(f"N must be positive, got {self.num_objects}")
        if self.page_bytes <= 0:
            raise ConfigurationError(f"P must be positive, got {self.page_bytes}")
        if self.oid_bytes <= 0 or self.oid_bytes > self.page_bytes:
            raise ConfigurationError(f"bad OID size: {self.oid_bytes}")
        if self.domain_cardinality <= 0:
            raise ConfigurationError(f"V must be positive, got {self.domain_cardinality}")
        if self.bits_per_byte <= 0:
            raise ConfigurationError(f"b must be positive, got {self.bits_per_byte}")

    # ------------------------------------------------------------------
    # Derived constants of Table 2
    # ------------------------------------------------------------------
    @property
    def oids_per_page(self) -> int:
        """``O_p = floor(P / oid)`` = 512 with the defaults."""
        return self.page_bytes // self.oid_bytes

    @property
    def oid_file_pages(self) -> int:
        """``SC_OID = ceil(N / O_p)`` = 63 with the defaults."""
        return math.ceil(self.num_objects / self.oids_per_page)

    @property
    def page_bits(self) -> int:
        """``P · b`` — entries per bit-slice page (32,768 with defaults)."""
        return self.page_bytes * self.bits_per_byte

    def oid_lookup_cost(self, false_drop_probability: float, actual_drops: float) -> float:
        """``LC_OID`` — §4.1's OID-file lookup cost.

        Each OID-file page holds ``α = A / SC_OID`` actual-drop entries and
        ``Fd · (O_p − α)`` false-drop entries in expectation; the page is
        read once if it holds any needed entry, hence the ``min(…, 1)``.
        """
        if not 0.0 <= false_drop_probability <= 1.0:
            raise ConfigurationError(
                f"Fd must be a probability, got {false_drop_probability}"
            )
        if actual_drops < 0:
            raise ConfigurationError(f"A must be >= 0, got {actual_drops}")
        alpha = actual_drops / self.oid_file_pages
        per_page = false_drop_probability * (self.oids_per_page - alpha) + alpha
        return self.oid_file_pages * min(per_page, 1.0)


#: The paper's exact evaluation configuration.
PAPER_PARAMETERS = CostParameters()

#: Design points the paper analyses: Dt -> list of (F, small-m) pairs used
#: in the figures, plus the paper's flagship recommendation per Dt.
PAPER_DESIGN_POINTS = {
    10: ((250, 2), (500, 2)),
    100: ((1000, 3), (2500, 3)),
}
