"""Analytical cost model of the Sequential Signature File — paper §4.1.

Retrieval (eq. 7)::

    RC = SC_SIG + LC_OID + Ps·A + Pu·Fd·(N − A)

with ``SC_SIG = ceil(N / floor(P·b / F))`` — signatures are bit-packed,
``floor(P·b/F)`` per page, and a query always scans the whole signature
file. Storage is ``SC_SIG + SC_OID``; updates are ``UC_I = 2`` (append to
both files) and ``UC_D = SC_OID / 2`` (scan half the OID file to flag).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.false_drop import false_drop_subset, false_drop_superset
from repro.costmodel.actual_drop import actual_drops_subset, actual_drops_superset
from repro.costmodel.parameters import CostParameters
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SSFCostModel:
    """SSF costs at one (F, m) design point."""

    params: CostParameters
    signature_bits: int  # F
    bits_per_element: int  # m

    def __post_init__(self) -> None:
        if self.signature_bits <= 0:
            raise ConfigurationError(f"F must be positive, got {self.signature_bits}")
        if not 0 < self.bits_per_element <= self.signature_bits:
            raise ConfigurationError(
                f"m must satisfy 0 < m <= F, got {self.bits_per_element}"
            )
        if self.signatures_per_page == 0:
            raise ConfigurationError(
                f"F={self.signature_bits} bits exceed one page"
            )

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    @property
    def signatures_per_page(self) -> int:
        return self.params.page_bits // self.signature_bits

    @property
    def signature_file_pages(self) -> int:
        """``SC_SIG``."""
        return math.ceil(self.params.num_objects / self.signatures_per_page)

    def storage_cost(self) -> int:
        """``SC = SC_SIG + SC_OID`` pages."""
        return self.signature_file_pages + self.params.oid_file_pages

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def _retrieval(self, false_drop: float, actual: float) -> float:
        params = self.params
        lc_oid = params.oid_lookup_cost(false_drop, actual)
        resolution = (
            params.pages_per_successful * actual
            + params.pages_per_unsuccessful * false_drop * (params.num_objects - actual)
        )
        return self.signature_file_pages + lc_oid + resolution

    def retrieval_cost_superset(self, Dt: int, Dq: int, exact: bool = False) -> float:
        """``RC`` for ``T ⊇ Q`` at target/query cardinalities Dt, Dq."""
        false_drop = false_drop_superset(
            self.signature_bits, self.bits_per_element, Dt, Dq, exact=exact
        )
        actual = actual_drops_superset(self.params, Dt, Dq)
        return self._retrieval(false_drop, actual)

    def retrieval_cost_subset(self, Dt: int, Dq: int, exact: bool = False) -> float:
        """``RC`` for ``T ⊆ Q``."""
        false_drop = false_drop_subset(
            self.signature_bits, self.bits_per_element, Dt, Dq, exact=exact
        )
        actual = actual_drops_subset(self.params, Dt, Dq)
        return self._retrieval(false_drop, actual)

    # ------------------------------------------------------------------
    # Update
    # ------------------------------------------------------------------
    def insert_cost(self) -> float:
        """``UC_I = 2``: one append to each of the two files."""
        return 2.0

    def delete_cost(self) -> float:
        """``UC_D = SC_OID / 2``: expected scan to find the entry to flag."""
        return self.params.oid_file_pages / 2.0
