"""Analytical cost model of the Bit-Sliced Signature File — paper §4.2.

Retrieval (eq. 8), with ``S = ceil(N / P·b)`` pages per slice file and
``m_q ≈ F (1 − e^(−m·Dq/F))`` expected query-signature weight::

    T ⊇ Q:  RC = S · m_q        + LC_OID + Ps·A + Pu·Fd·(N − A)
    T ⊆ Q:  RC = S · (F − m_q)  + LC_OID + Ps·A + Pu·Fd·(N − A)

Storage is ``S · F + SC_OID``. Updates are ``UC_I = F + 1`` (the paper's
declared worst case: every slice file plus the OID file) and
``UC_D = SC_OID / 2``. The expected-case insert, which only touches slices
whose bit is 1, is exposed as :meth:`insert_cost_expected` — the paper's §6
notes this improvement possibility, and our simulator implements it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.false_drop import (
    expected_weight,
    false_drop_partial_zero_slices,
    false_drop_subset,
    false_drop_superset,
)
from repro.costmodel.actual_drop import actual_drops_subset, actual_drops_superset
from repro.costmodel.parameters import CostParameters
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BSSFCostModel:
    """BSSF costs at one (F, m) design point."""

    params: CostParameters
    signature_bits: int  # F
    bits_per_element: int  # m

    def __post_init__(self) -> None:
        if self.signature_bits <= 0:
            raise ConfigurationError(f"F must be positive, got {self.signature_bits}")
        if not 0 < self.bits_per_element <= self.signature_bits:
            raise ConfigurationError(
                f"m must satisfy 0 < m <= F, got {self.bits_per_element}"
            )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def slice_pages(self) -> int:
        """``ceil(N / P·b)`` — pages per bit-slice file (1 at paper scale)."""
        return math.ceil(self.params.num_objects / self.params.page_bits)

    def query_weight(self, Dq: int, exact: bool = False) -> float:
        """``m_q`` — expected 1s in a Dq-element query signature."""
        return expected_weight(
            self.signature_bits, self.bits_per_element, Dq, exact=exact
        )

    def target_weight(self, Dt: int, exact: bool = False) -> float:
        """``m_t`` — expected 1s in a Dt-element target signature."""
        return expected_weight(
            self.signature_bits, self.bits_per_element, Dt, exact=exact
        )

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def storage_cost(self) -> int:
        """``SC = S·F + SC_OID`` pages."""
        return self.slice_pages * self.signature_bits + self.params.oid_file_pages

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def _resolution(self, false_drop: float, actual: float) -> float:
        params = self.params
        return (
            params.oid_lookup_cost(false_drop, actual)
            + params.pages_per_successful * actual
            + params.pages_per_unsuccessful * false_drop * (params.num_objects - actual)
        )

    def retrieval_cost_superset(self, Dt: int, Dq: int, exact: bool = False) -> float:
        """``RC`` for ``T ⊇ Q``: read the ``m_q`` one-slices, then resolve."""
        false_drop = false_drop_superset(
            self.signature_bits, self.bits_per_element, Dt, Dq, exact=exact
        )
        actual = actual_drops_superset(self.params, Dt, Dq)
        slices = self.query_weight(Dq, exact=exact)
        return self.slice_pages * slices + self._resolution(false_drop, actual)

    def retrieval_cost_subset(self, Dt: int, Dq: int, exact: bool = False) -> float:
        """``RC`` for ``T ⊆ Q``: read the ``F − m_q`` zero-slices, resolve."""
        false_drop = false_drop_subset(
            self.signature_bits, self.bits_per_element, Dt, Dq, exact=exact
        )
        actual = actual_drops_subset(self.params, Dt, Dq)
        slices = self.signature_bits - self.query_weight(Dq, exact=exact)
        return self.slice_pages * slices + self._resolution(false_drop, actual)

    def retrieval_cost_subset_partial(
        self, Dt: int, Dq: int, slices_examined: int, exact: bool = False
    ) -> float:
        """``RC`` for ``T ⊆ Q`` examining only ``k`` zero slices.

        The Appendix A drop probability ``(1 − k/F)^(m·Dt)`` replaces
        eq. (6); the slice term becomes ``S · k``. ``k`` is capped at the
        available zero slices ``F − m_q``.
        """
        if slices_examined < 0:
            raise ConfigurationError("slices_examined must be >= 0")
        available = self.signature_bits - self.query_weight(Dq, exact=exact)
        k = min(float(slices_examined), available)
        false_drop = false_drop_partial_zero_slices(
            self.signature_bits, self.bits_per_element, Dt, int(round(k))
        )
        actual = actual_drops_subset(self.params, Dt, Dq)
        return self.slice_pages * k + self._resolution(false_drop, actual)

    def retrieval_cost_superset_partial(
        self, Dt: int, Dq: int, use_elements: int, exact: bool = False
    ) -> float:
        """``RC`` for ``T ⊇ Q`` with a query signature from ``k`` elements.

        §5.1.3: the filter behaves exactly like a ``Dq = k`` query; drop
        resolution restores exactness. With ``Ps = Pu`` the cost equals the
        eq.-(8) curve evaluated at ``Dq = k`` (the candidates that fail the
        full predicate pay ``Pu`` instead of ``Ps``, same page count).
        """
        if not 0 < use_elements <= Dq:
            raise ConfigurationError(
                f"use_elements must be in (0, Dq], got {use_elements}"
            )
        return self.retrieval_cost_superset(Dt, use_elements, exact=exact)

    # ------------------------------------------------------------------
    # Update
    # ------------------------------------------------------------------
    def insert_cost(self) -> float:
        """``UC_I = F + 1`` — the paper's worst-case model."""
        return float(self.signature_bits + 1)

    def insert_cost_expected(self, Dt: int, exact: bool = False) -> float:
        """Expected-case insert: ``m_t`` slice pages plus the OID append."""
        return self.target_weight(Dt, exact=exact) + 1.0

    def delete_cost(self) -> float:
        """``UC_D = SC_OID / 2`` — same flag-in-OID-file model as SSF."""
        return self.params.oid_file_pages / 2.0
