"""Analytical cost model of the Nested Index — paper §4.3 and Appendix B.

Leaf-entry size ``il = d·oid + kl + mid`` with ``d = Dt·N/V`` (the average
posting-list length); ``lp = ceil(V / floor(P / il))`` leaf pages;
non-leaf pages stack levels of fanout ``f = 218`` until a single root.
Element lookup cost ``rc = height + 1`` (3 pages at paper scale).

Retrieval::

    T ⊇ Q:  RC = rc·Dq + Ps·A
    T ⊆ Q:  RC = rc·Dq + Pu·(intersecting non-subsets) + Ps·A   (Appendix B)

Updates touch the tree once per element: ``UC_I = UC_D = rc·Dt`` (node
splits ignored, per the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.costmodel.actual_drop import (
    actual_drops_subset,
    actual_drops_superset,
    expected_intersecting_non_subset,
    superset_probability,
)
from repro.costmodel.parameters import CostParameters
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NIXCostModel:
    """NIX costs for a given target-set cardinality ``Dt``."""

    params: CostParameters
    target_cardinality: int  # Dt
    key_bytes: int = 8       # kl
    count_field_bytes: int = 2  # mid
    fanout: int = 218        # f

    def __post_init__(self) -> None:
        if self.target_cardinality <= 0:
            raise ConfigurationError(
                f"Dt must be positive, got {self.target_cardinality}"
            )
        if self.fanout <= 1:
            raise ConfigurationError(f"fanout must exceed 1, got {self.fanout}")
        if self.entries_per_leaf < 1:
            raise ConfigurationError(
                "a leaf entry does not fit one page at these parameters"
            )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def average_postings(self) -> float:
        """``d = Dt·N / V`` — objects per element value."""
        return (
            self.target_cardinality
            * self.params.num_objects
            / self.params.domain_cardinality
        )

    @property
    def leaf_entry_bytes(self) -> float:
        """``il = d·oid + kl + mid``."""
        return (
            self.average_postings * self.params.oid_bytes
            + self.key_bytes
            + self.count_field_bytes
        )

    @property
    def entries_per_leaf(self) -> int:
        return int(self.params.page_bytes // self.leaf_entry_bytes)

    @property
    def leaf_pages(self) -> int:
        """``lp``: every domain value has at least one posting (paper)."""
        return math.ceil(self.params.domain_cardinality / self.entries_per_leaf)

    @property
    def nonleaf_pages(self) -> int:
        """``nlp``: level sizes ``ceil(lp/f), ceil(lp/f²), …`` down to 1."""
        total = 0
        level = self.leaf_pages
        while level > 1:
            level = math.ceil(level / self.fanout)
            total += level
        if level != 1:
            total += 1  # lone root above an empty stack (lp == 1 case)
        return total

    @property
    def height(self) -> int:
        """Non-leaf levels above the leaves."""
        levels = 0
        level = self.leaf_pages
        while level > 1:
            level = math.ceil(level / self.fanout)
            levels += 1
        return levels

    @property
    def lookup_cost(self) -> int:
        """``rc`` — pages per element lookup: the path plus the leaf."""
        return self.height + 1

    def storage_cost(self) -> int:
        """``SC = lp + nlp``."""
        return self.leaf_pages + self.nonleaf_pages

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def retrieval_cost_superset(self, Dq: int) -> float:
        """``RC = rc·Dq + Ps·A`` — intersection result is exact."""
        if Dq < 0:
            raise ConfigurationError(f"Dq must be >= 0, got {Dq}")
        actual = actual_drops_superset(self.params, self.target_cardinality, Dq)
        return self.lookup_cost * Dq + self.params.pages_per_successful * actual

    def retrieval_cost_superset_partial(self, Dq: int, use_elements: int) -> float:
        """§5.1.3 smart NIX: look up only ``k`` elements, intersect, resolve.

        The intersection of ``k`` posting lists holds the objects containing
        those ``k`` elements — in expectation ``A_k = N·P[⊇ k-subquery]``
        objects, each fetched once during resolution.
        """
        if not 0 < use_elements <= Dq:
            raise ConfigurationError(
                f"use_elements must be in (0, Dq], got {use_elements}"
            )
        candidates = self.params.num_objects * superset_probability(
            self.params.domain_cardinality, self.target_cardinality, use_elements
        )
        actual = actual_drops_superset(self.params, self.target_cardinality, Dq)
        false = max(candidates - actual, 0.0)
        return (
            self.lookup_cost * use_elements
            + self.params.pages_per_successful * actual
            + self.params.pages_per_unsuccessful * false
        )

    def retrieval_cost_subset(self, Dq: int) -> float:
        """Appendix B: union the ``Dq`` lists, fetch every candidate."""
        if Dq < 0:
            raise ConfigurationError(f"Dq must be >= 0, got {Dq}")
        actual = actual_drops_subset(self.params, self.target_cardinality, Dq)
        failing = expected_intersecting_non_subset(
            self.params, self.target_cardinality, Dq
        )
        return (
            self.lookup_cost * Dq
            + self.params.pages_per_unsuccessful * failing
            + self.params.pages_per_successful * actual
        )

    # ------------------------------------------------------------------
    # Update
    # ------------------------------------------------------------------
    def insert_cost(self) -> float:
        """``UC_I = rc·Dt`` — one tree update per element."""
        return float(self.lookup_cost * self.target_cardinality)

    def delete_cost(self) -> float:
        """``UC_D = rc·Dt``."""
        return float(self.lookup_cost * self.target_cardinality)
