"""Analytical cost model — Section 4 of the paper, exactly.

One model class per facility (SSF / BSSF / NIX), the actual-drop
estimators, and the smart retrieval strategies of Section 5. All costs are
in pages, as in the paper.
"""

from repro.costmodel.actual_drop import (
    actual_drops_subset,
    actual_drops_superset,
    expected_intersecting_non_subset,
    intersection_probability,
    subset_probability,
    superset_probability,
)
from repro.costmodel.bssf_model import BSSFCostModel
from repro.costmodel.nix_model import NIXCostModel
from repro.costmodel.parameters import (
    PAPER_DESIGN_POINTS,
    PAPER_PARAMETERS,
    CostParameters,
)
from repro.costmodel.smart import (
    StrategyDecision,
    smart_subset_bssf,
    smart_subset_dq_opt,
    smart_superset_bssf,
    smart_superset_nix,
    subset_resolution_ceiling,
)
from repro.costmodel.ssf_model import SSFCostModel
from repro.costmodel.variable import (
    CardinalityDistribution,
    VariableCardinalityModel,
)

__all__ = [
    "BSSFCostModel",
    "CardinalityDistribution",
    "CostParameters",
    "VariableCardinalityModel",
    "NIXCostModel",
    "PAPER_DESIGN_POINTS",
    "PAPER_PARAMETERS",
    "SSFCostModel",
    "StrategyDecision",
    "actual_drops_subset",
    "actual_drops_superset",
    "expected_intersecting_non_subset",
    "intersection_probability",
    "smart_subset_bssf",
    "smart_subset_dq_opt",
    "smart_superset_bssf",
    "smart_superset_nix",
    "subset_probability",
    "subset_resolution_ceiling",
    "superset_probability",
]
