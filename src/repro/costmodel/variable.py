"""Variable target-set cardinality — the paper's §6 future-work item.

Section 4 assumes every object's set has exactly ``Dt`` elements. The §6
research agenda lists "cost analysis for cases where the cardinality of
target sets varies"; this module provides it.

The key observation: with a per-object cardinality distribution ``p(d)``,
every cost term that is *per-target* mixes linearly — the expected number
of false drops is ``N · E_d[Fd(d)]``, actual drops are
``N · E_d[P_match(d)]`` — while the *query-side* terms (signature-file
scan, slices read = f(m_q)) do not depend on the target cardinality at
all. NIX geometry uses the mean cardinality (posting density
``d̄ = E[Dt]·N/V``).

Because ``Fd(d)`` is convex in ``d`` for ``T ⊇ Q`` (an exponential in d),
mixtures are *worse* than the fixed-cardinality model at the same mean —
heavier-tailed target sizes mean disproportionately more false drops; the
ablation bench quantifies this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Mapping, Tuple

from repro.core.false_drop import false_drop_subset, false_drop_superset
from repro.costmodel.actual_drop import subset_probability, superset_probability
from repro.costmodel.bssf_model import BSSFCostModel
from repro.costmodel.nix_model import NIXCostModel
from repro.costmodel.parameters import CostParameters
from repro.costmodel.ssf_model import SSFCostModel
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CardinalityDistribution:
    """A discrete distribution over target-set cardinalities."""

    probabilities: Mapping[int, float]

    def __post_init__(self) -> None:
        if not self.probabilities:
            raise ConfigurationError("distribution needs at least one value")
        total = 0.0
        for value, probability in self.probabilities.items():
            if value < 0:
                raise ConfigurationError(f"cardinality must be >= 0, got {value}")
            if probability < 0:
                raise ConfigurationError(
                    f"probability must be >= 0, got {probability}"
                )
            total += probability
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(f"probabilities sum to {total}, not 1")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def fixed(cls, cardinality: int) -> "CardinalityDistribution":
        """The Section 4 assumption: every target has exactly Dt elements."""
        return cls({cardinality: 1.0})

    @classmethod
    def uniform(cls, low: int, high: int) -> "CardinalityDistribution":
        """Uniform over [low, high] — matches the workload generator's
        variable-cardinality extension with low=1, high=2·Dt−1."""
        if low > high:
            raise ConfigurationError(f"need low <= high, got [{low}, {high}]")
        count = high - low + 1
        return cls({d: 1.0 / count for d in range(low, high + 1)})

    @classmethod
    def from_samples(cls, samples: Iterable[int]) -> "CardinalityDistribution":
        """Empirical distribution from observed set sizes."""
        counts: Dict[int, int] = {}
        total = 0
        for sample in samples:
            counts[sample] = counts.get(sample, 0) + 1
            total += 1
        if total == 0:
            raise ConfigurationError("no samples supplied")
        return cls({d: c / total for d, c in counts.items()})

    # ------------------------------------------------------------------
    # Moments & mixing
    # ------------------------------------------------------------------
    def mean(self) -> float:
        return sum(d * p for d, p in self.probabilities.items())

    def support(self) -> Tuple[int, ...]:
        return tuple(sorted(self.probabilities))

    def expect(self, function: Callable[[int], float]) -> float:
        """``E_d[function(d)]``."""
        return sum(p * function(d) for d, p in self.probabilities.items())


class VariableCardinalityModel:
    """Section 4's cost model generalized to a Dt distribution."""

    def __init__(
        self,
        params: CostParameters,
        distribution: CardinalityDistribution,
        signature_bits: int,
        bits_per_element: int,
    ):
        self.params = params
        self.distribution = distribution
        self.signature_bits = signature_bits
        self.bits_per_element = bits_per_element
        # query-side geometry comes from any fixed-Dt model (it only uses
        # F, m and the global parameters)
        self._bssf = BSSFCostModel(params, signature_bits, bits_per_element)
        self._ssf = SSFCostModel(params, signature_bits, bits_per_element)

    # ------------------------------------------------------------------
    # Mixed drop statistics
    # ------------------------------------------------------------------
    def false_drop_superset(self, Dq: int) -> float:
        """``E_d[Fd_⊇(d)]`` — per-target mixture of eq. (2)."""
        F, m = self.signature_bits, self.bits_per_element
        return self.distribution.expect(
            lambda d: false_drop_superset(F, m, d, Dq)
        )

    def false_drop_subset(self, Dq: int) -> float:
        """``E_d[Fd_⊆(d)]`` — per-target mixture of eq. (6)."""
        F, m = self.signature_bits, self.bits_per_element
        return self.distribution.expect(
            lambda d: false_drop_subset(F, m, d, Dq)
        )

    def actual_drops_superset(self, Dq: int) -> float:
        V = self.params.domain_cardinality
        return self.params.num_objects * self.distribution.expect(
            lambda d: superset_probability(V, d, Dq)
        )

    def actual_drops_subset(self, Dq: int) -> float:
        V = self.params.domain_cardinality
        return self.params.num_objects * self.distribution.expect(
            lambda d: subset_probability(V, d, Dq)
        )

    # ------------------------------------------------------------------
    # Retrieval costs (BSSF and SSF — the signature facilities)
    # ------------------------------------------------------------------
    def _resolution(self, false_drop: float, actual: float) -> float:
        params = self.params
        return (
            params.oid_lookup_cost(false_drop, actual)
            + params.pages_per_successful * actual
            + params.pages_per_unsuccessful * false_drop * (params.num_objects - actual)
        )

    def bssf_retrieval_superset(self, Dq: int) -> float:
        slices = self._bssf.query_weight(Dq)
        return self._bssf.slice_pages * slices + self._resolution(
            self.false_drop_superset(Dq), self.actual_drops_superset(Dq)
        )

    def bssf_retrieval_subset(self, Dq: int) -> float:
        slices = self.signature_bits - self._bssf.query_weight(Dq)
        return self._bssf.slice_pages * slices + self._resolution(
            self.false_drop_subset(Dq), self.actual_drops_subset(Dq)
        )

    def ssf_retrieval_superset(self, Dq: int) -> float:
        return self._ssf.signature_file_pages + self._resolution(
            self.false_drop_superset(Dq), self.actual_drops_superset(Dq)
        )

    def ssf_retrieval_subset(self, Dq: int) -> float:
        return self._ssf.signature_file_pages + self._resolution(
            self.false_drop_subset(Dq), self.actual_drops_subset(Dq)
        )

    # ------------------------------------------------------------------
    # NIX under variable cardinality
    # ------------------------------------------------------------------
    def nix_model(self) -> NIXCostModel:
        """NIX geometry at the mean cardinality (posting density d̄)."""
        mean = max(1, round(self.distribution.mean()))
        return NIXCostModel(self.params, mean)

    def nix_retrieval_superset(self, Dq: int) -> float:
        nix = self.nix_model()
        return nix.lookup_cost * Dq + (
            self.params.pages_per_successful * self.actual_drops_superset(Dq)
        )

    def nix_update_cost(self) -> float:
        """``rc · E[Dt]`` — one tree touch per element of the average set."""
        return self.nix_model().lookup_cost * self.distribution.mean()
