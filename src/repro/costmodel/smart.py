"""Smart object retrieval strategies — paper §5.1.3 and §5.2.2.

The naive strategies always use the full query signature (BSSF) or all
``Dq`` index lookups (NIX). The smart strategies stop filtering once the
drop count is effectively minimal, because drop resolution makes the final
answer exact anyway:

``T ⊇ Q``
    Use only ``k ≤ Dq`` query elements. The paper fixes ``k = 2`` for its
    BSSF m = 2 / NIX configurations; here the strategy is generalized to
    pick the ``k`` minimizing the modeled cost, which reproduces the
    paper's rule at its parameter values (tests pin this).

``T ⊆ Q``
    Examine only ``k* `` zero slices, where ``k*`` is the slice count at
    ``D_q^opt`` (Appendix C). For ``Dq > D_q^opt`` the naive strategy is
    already optimal.

Each function returns a :class:`StrategyDecision` so callers (the query
planner, the figures) see both the cost and the chosen parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.tuning import dq_opt, optimal_zero_slices
from repro.costmodel.bssf_model import BSSFCostModel
from repro.costmodel.nix_model import NIXCostModel
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StrategyDecision:
    """Outcome of a smart-strategy optimization."""

    cost: float
    #: elements used (⊇ strategies) or zero slices examined (⊆ strategy);
    #: None means "use the naive strategy unchanged".
    parameter: Optional[int]

    @property
    def is_naive(self) -> bool:
        return self.parameter is None


def smart_superset_bssf(model: BSSFCostModel, Dt: int, Dq: int) -> StrategyDecision:
    """Best element count for a BSSF ``T ⊇ Q`` search (§5.1.3)."""
    if Dq < 1:
        raise ConfigurationError(f"Dq must be >= 1, got {Dq}")
    best_k = 1
    best_cost = model.retrieval_cost_superset_partial(Dt, Dq, 1)
    for k in range(2, Dq + 1):
        cost = model.retrieval_cost_superset_partial(Dt, Dq, k)
        if cost < best_cost:
            best_cost = cost
            best_k = k
    parameter = None if best_k == Dq else best_k
    return StrategyDecision(cost=best_cost, parameter=parameter)


def smart_superset_nix(model: NIXCostModel, Dq: int) -> StrategyDecision:
    """Best lookup count for a NIX ``T ⊇ Q`` search (§5.1.3)."""
    if Dq < 1:
        raise ConfigurationError(f"Dq must be >= 1, got {Dq}")
    best_k = 1
    best_cost = model.retrieval_cost_superset_partial(Dq, 1)
    for k in range(2, Dq + 1):
        cost = model.retrieval_cost_superset_partial(Dq, k)
        if cost < best_cost:
            best_cost = cost
            best_k = k
    parameter = None if best_k == Dq else best_k
    return StrategyDecision(cost=best_cost, parameter=parameter)


def subset_resolution_ceiling(model: BSSFCostModel) -> float:
    """``SC_OID + Pu·N`` — the cost paid when the filter passes everything.

    This is Appendix C's constant ``C``; at ``Fd → 1`` both the OID lookup
    (every page) and every object access are paid.
    """
    params = model.params
    return params.oid_file_pages + params.pages_per_unsuccessful * params.num_objects


def smart_subset_bssf(model: BSSFCostModel, Dt: int, Dq: int) -> StrategyDecision:
    """Zero-slice budget for a BSSF ``T ⊆ Q`` search (§5.2.2, Appendix C).

    Examine ``min(F − m_q, k*)`` zero slices, where ``k* = F·x*`` is the
    slice count at ``D_q^opt``; below ``D_q^opt`` this freezes the cost at
    its minimum, above it the naive count is already smaller.
    """
    if Dq < 0:
        raise ConfigurationError(f"Dq must be >= 0, got {Dq}")
    ceiling = subset_resolution_ceiling(model)
    k_star = optimal_zero_slices(
        model.signature_bits,
        model.bits_per_element,
        Dt,
        model.slice_pages,
        ceiling,
    )
    available = int(model.signature_bits - model.query_weight(Dq))
    k = min(available, k_star)
    cost = model.retrieval_cost_subset_partial(Dt, Dq, k)
    parameter = None if k >= available else k
    return StrategyDecision(cost=cost, parameter=parameter)


def smart_subset_dq_opt(model: BSSFCostModel, Dt: int) -> float:
    """``D_q^opt`` for a design point — the crossover the figures mark."""
    return dq_opt(
        model.signature_bits,
        model.bits_per_element,
        Dt,
        model.slice_pages,
        subset_resolution_ceiling(model),
    )
