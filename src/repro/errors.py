"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class. Subsystems raise the most specific subclass available.

Every class carries a stable machine-readable ``code`` — the identifier the
wire protocol (:mod:`repro.wire`) ships across the network so a
:class:`~repro.client.RemoteClient` can re-raise the *same* exception class
the server raised. Codes are registered automatically at class-definition
time; :func:`error_class_for_code` resolves a code back to its class, and a
code minted by a newer server that this client does not know decodes to
:class:`RemoteError` with the original code preserved.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

#: code -> exception class; populated by ``ReproError.__init_subclass__``.
_CODE_REGISTRY: Dict[str, Type["ReproError"]] = {}


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""

    #: stable machine-readable identifier, shipped over the wire protocol
    code: str = "internal"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        # Only classes that declare their own code register it; the first
        # declarer wins so aliases cannot silently repoint a code.
        declared = cls.__dict__.get("code")
        if declared is not None and declared not in _CODE_REGISTRY:
            _CODE_REGISTRY[declared] = cls


_CODE_REGISTRY[ReproError.code] = ReproError


def error_class_for_code(code: str) -> Optional[Type[ReproError]]:
    """The exception class registered for ``code``, or ``None`` if unknown."""
    return _CODE_REGISTRY.get(code)


def error_code(exc: BaseException) -> str:
    """The stable code for any exception (non-repro errors are "internal")."""
    return getattr(exc, "code", ReproError.code)


class ConfigurationError(ReproError):
    """A parameter or parameter combination is invalid (e.g. m > F)."""

    code = "bad-config"


class StorageError(ReproError):
    """Base class for storage-layer failures."""

    code = "storage"


class PageError(StorageError):
    """A page-level operation failed (bad page id, overflow, corruption)."""

    code = "page"


class CorruptPageError(PageError):
    """A page image failed its CRC32 checksum on a physical read."""

    code = "corrupt-page"


class TransientIOError(StorageError):
    """A (simulated) transient device failure; retrying may succeed."""

    code = "transient-io"


class SimulatedCrashError(ReproError):
    """A fault-injection crash point fired.

    Deliberately *not* a :class:`StorageError`: recovery paths that degrade
    gracefully on storage failures must never swallow a simulated crash —
    a crash means the process is gone, and the test harness catches it at
    the top level to exercise restart/recovery behaviour.
    """

    code = "simulated-crash"


class BufferPoolError(StorageError):
    """The buffer pool could not satisfy a request (e.g. all frames pinned)."""

    code = "buffer-pool"


class WalError(StorageError):
    """Base class for write-ahead-log failures."""

    code = "wal"


class WalCorruptError(WalError):
    """An interior WAL record failed its CRC32 frame check.

    A *final* half-written record is normal after a crash and is silently
    truncated during recovery; corruption anywhere before the tail means
    the log cannot be trusted past that point. ``lsn`` names the first
    unreadable record.
    """

    code = "wal-corrupt"

    def __init__(self, message: str, lsn: int):
        super().__init__(message)
        self.lsn = lsn


class ConcurrencyError(ReproError):
    """Base class for concurrency-layer failures (latches, admission)."""

    code = "concurrency"


class LatchError(ConcurrencyError):
    """A latch was misused (release without hold, conflicting upgrade)."""

    code = "latch"


class AdmissionError(ConcurrencyError):
    """The query service shed a request: its admission queue stayed full
    through every retry the policy allowed."""

    code = "admission"


class TenantQuotaError(AdmissionError):
    """A tenant exceeded its per-tenant in-flight admission quota.

    A quota breach is the tenant's own saturation, not the server's — it is
    shed at the network edge before consuming a service admission slot, so
    one noisy tenant cannot starve the others.
    """

    code = "tenant-quota"


class ObjectStoreError(ReproError):
    """Base class for object-store failures."""

    code = "object-store"


class UnknownOIDError(ObjectStoreError):
    """An OID does not identify a live object."""

    code = "unknown-oid"


class SchemaError(ObjectStoreError):
    """An object does not conform to its class schema."""

    code = "schema"


class AccessFacilityError(ReproError):
    """Base class for access-facility (SSF / BSSF / NIX) failures."""

    code = "access-facility"


class IndexCorruptionError(AccessFacilityError):
    """An index invariant was violated (detected during verification)."""

    code = "index-corruption"


class QueryError(ReproError):
    """Base class for query-layer failures."""

    code = "query"


class ParseError(QueryError):
    """The SQL-like query text could not be parsed."""

    code = "parse"


class PlanningError(QueryError):
    """No executable plan could be produced for a query."""

    code = "planning"


class DeadlineExceededError(QueryError):
    """A request's deadline budget expired before it could execute.

    Carried end-to-end: clients ship the remaining budget as
    ``ExecutionOptions.deadline_ms``; a server or service that receives an
    already-expired request rejects it up front (no worker is burned on an
    answer nobody is waiting for), and a
    :class:`~repro.sharding.ShardRouter` charges every sub-request against
    the same budget.
    """

    code = "deadline-exceeded"


class ShardUnavailableError(ReproError):
    """A strict-mode scatter-gather request lost one or more shards.

    Raised by :class:`~repro.sharding.ShardRouter` when
    ``partial_results="strict"`` and any shard stayed unreachable through
    the retry budget — a complete answer cannot be produced.
    ``missing_shards`` names the shards (by index/URL) that never answered;
    in ``"degraded"`` mode the same information rides on the merged
    result's ``missing_shards`` field instead of raising.
    """

    code = "shard-unavailable"

    def __init__(self, message: str, missing_shards=None):
        super().__init__(message)
        self.missing_shards = list(missing_shards or [])


class ProtocolError(ReproError):
    """A wire-protocol frame was malformed, oversized, or version-skewed."""

    code = "protocol"


class FrameTooLargeError(ProtocolError):
    """A frame exceeds the negotiated ``max_frame_bytes`` ceiling.

    Raised on the sending side *before* any bytes hit the socket, so the
    connection stays usable: a server whose result overflows the limit
    ships this as a structured error frame instead of an opaque disconnect,
    and the client re-raises it under the same class.
    """

    code = "frame-too-large"


class AuthenticationError(ReproError):
    """The server rejected the connection's auth token."""

    code = "auth"


class ConnectionLostError(ReproError):
    """The transport to a remote server failed (dial, send, or receive).

    Raised client-side after every reconnect attempt the retry policy
    allows has failed; distinct from :class:`ProtocolError` (the peer spoke,
    but spoke garbage) and from server-raised errors (which arrive as
    well-formed error frames and re-raise as their own classes).
    """

    code = "connection-lost"


class ReplicationError(ReproError):
    """Base class for primary→replica log-shipping failures."""

    code = "replication"


class StaleSubscriberError(ReplicationError):
    """A subscriber's watermark fell behind the primary's log.

    A checkpoint truncated records the replica never received; tailing the
    log cannot close the gap. ``base_lsn`` names the oldest LSN the primary
    still holds — the replica must run a merkle re-sync (ship only the
    differing page ranges) before re-subscribing from the sync point.
    """

    code = "stale-subscriber"

    def __init__(self, message: str, base_lsn: int = -1):
        super().__init__(message)
        self.base_lsn = base_lsn


class ReadOnlyReplicaError(ReplicationError):
    """A mutating operation reached a read-only replica.

    Replicas apply shipped WAL records and serve queries; direct writes
    would diverge them from the primary. Write to the primary, or
    :meth:`~repro.replication.ReplicaDatabase.promote` the replica first.
    """

    code = "read-only-replica"


class RemoteError(ReproError):
    """A server-side error whose class this client does not know.

    Round-trips the original code and message so callers can still branch
    on ``remote_code`` even across a protocol-version skew.
    """

    code = "remote"

    def __init__(self, message: str, remote_code: Optional[str] = None):
        super().__init__(message)
        self.remote_code = remote_code or RemoteError.code
