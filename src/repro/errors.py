"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class. Subsystems raise the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A parameter or parameter combination is invalid (e.g. m > F)."""


class StorageError(ReproError):
    """Base class for storage-layer failures."""


class PageError(StorageError):
    """A page-level operation failed (bad page id, overflow, corruption)."""


class CorruptPageError(PageError):
    """A page image failed its CRC32 checksum on a physical read."""


class TransientIOError(StorageError):
    """A (simulated) transient device failure; retrying may succeed."""


class SimulatedCrashError(ReproError):
    """A fault-injection crash point fired.

    Deliberately *not* a :class:`StorageError`: recovery paths that degrade
    gracefully on storage failures must never swallow a simulated crash —
    a crash means the process is gone, and the test harness catches it at
    the top level to exercise restart/recovery behaviour.
    """


class BufferPoolError(StorageError):
    """The buffer pool could not satisfy a request (e.g. all frames pinned)."""


class WalError(StorageError):
    """Base class for write-ahead-log failures."""


class WalCorruptError(WalError):
    """An interior WAL record failed its CRC32 frame check.

    A *final* half-written record is normal after a crash and is silently
    truncated during recovery; corruption anywhere before the tail means
    the log cannot be trusted past that point. ``lsn`` names the first
    unreadable record.
    """

    def __init__(self, message: str, lsn: int):
        super().__init__(message)
        self.lsn = lsn


class ConcurrencyError(ReproError):
    """Base class for concurrency-layer failures (latches, admission)."""


class LatchError(ConcurrencyError):
    """A latch was misused (release without hold, conflicting upgrade)."""


class AdmissionError(ConcurrencyError):
    """The query service shed a request: its admission queue stayed full
    through every retry the policy allowed."""


class ObjectStoreError(ReproError):
    """Base class for object-store failures."""


class UnknownOIDError(ObjectStoreError):
    """An OID does not identify a live object."""


class SchemaError(ObjectStoreError):
    """An object does not conform to its class schema."""


class AccessFacilityError(ReproError):
    """Base class for access-facility (SSF / BSSF / NIX) failures."""


class IndexCorruptionError(AccessFacilityError):
    """An index invariant was violated (detected during verification)."""


class QueryError(ReproError):
    """Base class for query-layer failures."""


class ParseError(QueryError):
    """The SQL-like query text could not be parsed."""


class PlanningError(QueryError):
    """No executable plan could be produced for a query."""
