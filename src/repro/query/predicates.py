"""Set predicates over object attributes.

A :class:`SetPredicate` pairs an attribute path with one of the paper's set
comparison operators and a constant set (the query set ``Q``). The exact
(non-signature) evaluation lives here; the conservative signature-level
tests live in :mod:`repro.core.signature`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Hashable

from repro.core.signature import SetPredicateKind
from repro.errors import QueryError


@dataclass(frozen=True)
class SetPredicate:
    """``attribute <op> constant`` over one object."""

    attribute: str
    kind: SetPredicateKind
    constant: FrozenSet[Hashable]

    def __post_init__(self) -> None:
        if not self.attribute:
            raise QueryError("predicate needs an attribute name")
        if not isinstance(self.constant, frozenset):
            object.__setattr__(self, "constant", frozenset(self.constant))

    # ------------------------------------------------------------------
    # Exact evaluation
    # ------------------------------------------------------------------
    def matches(self, values: Dict[str, Any]) -> bool:
        """Exact evaluation against an object's attribute dict."""
        if self.attribute not in values:
            raise QueryError(f"object lacks attribute {self.attribute!r}")
        raw = values[self.attribute]
        if not isinstance(raw, (set, frozenset)):
            raise QueryError(
                f"attribute {self.attribute!r} is not set-valued "
                f"(got {type(raw).__name__})"
            )
        return self.kind.evaluate(frozenset(raw), self.constant)

    @property
    def query_cardinality(self) -> int:
        """``Dq``."""
        return len(self.constant)

    def describe(self) -> str:
        """Render in the query language's own syntax (re-parseable)."""
        elements = ", ".join(
            _render_literal(e) for e in sorted(self.constant, key=repr)
        )
        return f"{self.attribute} {self.kind.value} ({elements})"


def _render_literal(value) -> str:
    """One literal in the query language's syntax."""
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return repr(value)


@dataclass(frozen=True)
class ScalarPredicate:
    """``attribute = literal`` over a scalar attribute.

    Used for the selection step of the paper's two-step scheme (e.g.
    ``Course.category = "DB"``). Not index-drivable by the set access
    facilities; evaluated by scan or as a residual filter.
    """

    attribute: str
    value: Any

    def __post_init__(self) -> None:
        if not self.attribute:
            raise QueryError("predicate needs an attribute name")

    def matches(self, values: Dict[str, Any]) -> bool:
        if self.attribute not in values:
            raise QueryError(f"object lacks attribute {self.attribute!r}")
        raw = values[self.attribute]
        if isinstance(raw, (set, frozenset)):
            raise QueryError(
                f"attribute {self.attribute!r} is a set; use a set operator"
            )
        return raw == self.value

    def describe(self) -> str:
        return f"{self.attribute} = {_render_literal(self.value)}"


@dataclass(frozen=True)
class SubqueryPredicate:
    """``attribute <op> (select …)`` — the paper's §1 two-step scheme.

    The inner query is evaluated first; the OIDs of its result become the
    query set ``Q`` of an ordinary :class:`SetPredicate`. Resolution is the
    executor's job (:meth:`QueryExecutor._resolve_subqueries`); the planner
    refuses unresolved predicates.
    """

    attribute: str
    kind: SetPredicateKind
    subquery: Any  # ParsedQuery; typed loosely to avoid a module cycle

    def __post_init__(self) -> None:
        if not self.attribute:
            raise QueryError("predicate needs an attribute name")

    def resolve(self, oids) -> SetPredicate:
        """Bind the subquery's result OIDs as the constant set."""
        return SetPredicate(self.attribute, self.kind, frozenset(oids))

    def describe(self) -> str:
        return f"{self.attribute} {self.kind.value} ({self.subquery.describe()})"


def has_subset(attribute: str, *elements: Hashable) -> SetPredicate:
    """``T ⊇ Q`` — the paper's query Q1 shape."""
    return SetPredicate(attribute, SetPredicateKind.HAS_SUBSET, frozenset(elements))


def in_subset(attribute: str, *elements: Hashable) -> SetPredicate:
    """``T ⊆ Q`` — the paper's query Q2 shape."""
    return SetPredicate(attribute, SetPredicateKind.IN_SUBSET, frozenset(elements))


def contains(attribute: str, element: Hashable) -> SetPredicate:
    """Membership ``element ∈ T`` (⊇ with a singleton query set)."""
    return SetPredicate(attribute, SetPredicateKind.CONTAINS, frozenset([element]))


def set_equals(attribute: str, *elements: Hashable) -> SetPredicate:
    """Set equality ``T = Q`` (a §6 extension operator)."""
    return SetPredicate(attribute, SetPredicateKind.EQUALS, frozenset(elements))


def overlaps(attribute: str, *elements: Hashable) -> SetPredicate:
    """Overlap ``T ∩ Q ≠ ∅`` (a §6 extension operator)."""
    return SetPredicate(attribute, SetPredicateKind.OVERLAPS, frozenset(elements))
