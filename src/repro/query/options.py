"""Execution options: one object instead of keyword sprawl.

``QueryExecutor.execute`` / ``execute_text`` / ``explain`` historically
grew a keyword per feature (``context``, ``prefer_facility``, ``smart``,
and now ``trace``). :class:`ExecutionOptions` collapses them into a single
immutable dataclass::

    executor.execute_text(text, ExecutionOptions(prefer_facility="bssf"))

The old keywords still work for one release through
:func:`coerce_options`, which converts them and emits a
``DeprecationWarning``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (planner imports us not)
    from repro.obs.tracer import Tracer
    from repro.query.planner import CostContext

__all__ = ["ExecutionOptions", "coerce_options"]

#: keywords accepted by the pre-ExecutionOptions API, shimmed for one release
_LEGACY_KEYS = ("context", "prefer_facility", "smart", "trace")


@dataclass(frozen=True)
class ExecutionOptions:
    """Everything that shapes how one query is planned and executed.

    ``context``
        Workload statistics for the cost model; ``None`` falls back to the
        database's ANALYZE cache.
    ``prefer_facility``
        Force one facility name ("ssf" / "bssf" / "nix") instead of
        letting the cost model choose.
    ``smart``
        Enable the Section 5 smart-retrieval strategies (default on).
    ``trace``
        Record a span tree for the execution (off by default; the no-op
        tracer costs nothing). The finished tree is attached to
        ``QueryResult.trace``.
    ``tracer``
        Use this exact :class:`~repro.obs.tracer.Tracer` (with its sinks)
        instead of a fresh one; implies ``trace``.
    ``max_workers``
        Worker-pool width for batch entry points
        (:meth:`QueryExecutor.execute_many`,
        :class:`~repro.server.QueryService`). ``None`` means serve
        sequentially on the calling thread; single-query execution ignores
        it.
    """

    context: Optional["CostContext"] = None
    prefer_facility: Optional[str] = None
    smart: bool = True
    trace: bool = False
    tracer: Optional["Tracer"] = None
    max_workers: Optional[int] = None

    @property
    def tracing_requested(self) -> bool:
        return self.trace or self.tracer is not None

    def evolve(self, **changes: Any) -> "ExecutionOptions":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


def coerce_options(
    options: Optional[ExecutionOptions], legacy: Dict[str, Any]
) -> ExecutionOptions:
    """Resolve the new-style ``options`` object against legacy keywords.

    Legacy keywords (``context=``, ``prefer_facility=``, ``smart=``,
    ``trace=``) are accepted for one release: they are converted into an
    :class:`ExecutionOptions` and a ``DeprecationWarning`` is emitted.
    Mixing both styles in one call is an error, as is any unknown keyword.
    """
    if not legacy:
        return options if options is not None else ExecutionOptions()
    unknown = set(legacy) - set(_LEGACY_KEYS)
    if unknown:
        raise TypeError(
            f"unknown execution keyword(s) {sorted(unknown)}; "
            f"supported legacy keywords are {list(_LEGACY_KEYS)}"
        )
    if options is not None:
        raise TypeError(
            "pass either an ExecutionOptions object or legacy keywords, "
            "not both"
        )
    warnings.warn(
        "QueryExecutor keyword arguments "
        "(context=, prefer_facility=, smart=, trace=) are deprecated; "
        "pass ExecutionOptions(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return ExecutionOptions(**legacy)
