"""Execution options: one object instead of keyword sprawl.

``QueryExecutor.execute`` / ``execute_text`` / ``explain`` historically
grew a keyword per feature (``context``, ``prefer_facility``, ``smart``,
and now ``trace``). :class:`ExecutionOptions` collapses them into a single
immutable dataclass::

    executor.execute_text(text, ExecutionOptions(prefer_facility="bssf"))

The old keywords still work for one release through
:func:`coerce_options`, which converts them and emits a
``DeprecationWarning``.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (planner imports us not)
    from repro.obs.tracer import Tracer
    from repro.query.planner import CostContext

__all__ = ["ExecutionMode", "ExecutionOptions", "coerce_options"]


class ExecutionMode(enum.Enum):
    """How :meth:`QueryExecutor.execute_many` distributes a batch.

    ``SERIAL``
        Run on the calling thread (batched kernel evaluation still applies
        when ``batch_size > 1``).
    ``THREAD``
        Serve through a transient thread-pool
        :class:`~repro.server.QueryService` — wins when simulated device
        latency dominates (I/O-bound).
    ``PROCESS``
        Serve through a :class:`~repro.server.ProcessQueryService`
        (worker processes over a read-only snapshot) — wins when matching
        is CPU-bound and the GIL serializes threads.
    ``REMOTE``
        Serve through a :class:`~repro.client.RemoteClient` against the
        ``remote_url`` server — the networked backend
        (``sigfile-repro serve``).
    """

    SERIAL = "serial"
    THREAD = "thread"
    PROCESS = "process"
    REMOTE = "remote"

#: keywords accepted by the pre-ExecutionOptions API, shimmed for one release
_LEGACY_KEYS = ("context", "prefer_facility", "smart", "trace")


@dataclass(frozen=True)
class ExecutionOptions:
    """Everything that shapes how one query is planned and executed.

    ``context``
        Workload statistics for the cost model; ``None`` falls back to the
        database's ANALYZE cache.
    ``prefer_facility``
        Force one facility name ("ssf" / "bssf" / "nix") instead of
        letting the cost model choose.
    ``smart``
        Enable the Section 5 smart-retrieval strategies (default on).
    ``trace``
        Record a span tree for the execution (off by default; the no-op
        tracer costs nothing). The finished tree is attached to
        ``QueryResult.trace``.
    ``tracer``
        Use this exact :class:`~repro.obs.tracer.Tracer` (with its sinks)
        instead of a fresh one; implies ``trace``.
    ``max_workers``
        Worker-pool width for batch entry points
        (:meth:`QueryExecutor.execute_many`,
        :class:`~repro.server.QueryService`). ``None`` means serve
        sequentially on the calling thread; single-query execution ignores
        it.
    ``batch_size``
        Evaluate batch entry points in groups of up to this many queries
        against one shared signature-matrix / slice decode (the
        ``match_many`` fast path). ``None`` or ``1`` evaluates one query
        at a time. Results and per-query page accounting are identical
        either way; only wall-clock changes.
    ``execution_mode``
        Backend for :meth:`QueryExecutor.execute_many`. ``None`` infers:
        ``REMOTE`` when ``remote_url`` is set, ``THREAD`` when
        ``max_workers > 1``, else ``SERIAL``.
    ``remote_url``
        A ``sigfile://host:port`` server address for ``REMOTE`` execution
        (see :func:`repro.connect`).
    ``deadline_ms``
        Remaining time budget for this request, in milliseconds. A
        *duration*, not a wall-clock instant — it survives clock skew
        across the wire; each hop re-anchors it on receipt. A server or
        service that receives an exhausted budget (``<= 0``, or expired
        while queued) rejects the request with
        :class:`~repro.errors.DeadlineExceededError` instead of burning a
        worker; a :class:`~repro.sharding.ShardRouter` charges every
        sub-request and retry against the one budget. ``None`` (default)
        means unbounded.
    """

    context: Optional["CostContext"] = None
    prefer_facility: Optional[str] = None
    smart: bool = True
    trace: bool = False
    tracer: Optional["Tracer"] = None
    max_workers: Optional[int] = None
    batch_size: Optional[int] = None
    execution_mode: Optional[ExecutionMode] = None
    remote_url: Optional[str] = None
    deadline_ms: Optional[float] = None

    @property
    def tracing_requested(self) -> bool:
        return self.trace or self.tracer is not None

    def resolved_mode(self) -> ExecutionMode:
        """The effective :class:`ExecutionMode` for batch entry points."""
        if self.execution_mode is not None:
            return self.execution_mode
        if self.remote_url is not None:
            return ExecutionMode.REMOTE
        if self.max_workers is not None and self.max_workers > 1:
            return ExecutionMode.THREAD
        return ExecutionMode.SERIAL

    def evolve(self, **changes: Any) -> "ExecutionOptions":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Wire serialization
    # ------------------------------------------------------------------
    # ``context`` and ``tracer`` are live local objects (an ANALYZE cache
    # and a span recorder); they deliberately never travel. Everything
    # else round-trips as plain JSON types with a stable key set, and
    # ``from_dict`` ignores keys it does not know — a newer peer may add
    # fields without breaking an older one.
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form of the portable fields (stable key set)."""
        return {
            "prefer_facility": self.prefer_facility,
            "smart": self.smart,
            "trace": self.trace,
            "max_workers": self.max_workers,
            "batch_size": self.batch_size,
            "execution_mode": (
                self.execution_mode.value
                if self.execution_mode is not None
                else None
            ),
            "remote_url": self.remote_url,
            "deadline_ms": self.deadline_ms,
        }

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> "ExecutionOptions":
        """Rebuild from :meth:`to_dict` output; tolerant of drift.

        Unknown keys are ignored, missing keys take their defaults, and an
        ``execution_mode`` value this version does not know resolves to
        ``None`` (mode inference) instead of failing — so options encoded
        by a newer protocol version still decode.
        """
        data = data or {}
        mode: Optional[ExecutionMode] = None
        raw_mode = data.get("execution_mode")
        if raw_mode is not None:
            try:
                mode = ExecutionMode(raw_mode)
            except ValueError:
                mode = None
        return cls(
            prefer_facility=data.get("prefer_facility"),
            smart=bool(data.get("smart", True)),
            trace=bool(data.get("trace", False)),
            max_workers=data.get("max_workers"),
            batch_size=data.get("batch_size"),
            execution_mode=mode,
            remote_url=data.get("remote_url"),
            deadline_ms=data.get("deadline_ms"),
        )


def coerce_options(
    options: Optional[ExecutionOptions], legacy: Dict[str, Any]
) -> ExecutionOptions:
    """Resolve the new-style ``options`` object against legacy keywords.

    Legacy keywords (``context=``, ``prefer_facility=``, ``smart=``,
    ``trace=``) are accepted for one release: they are converted into an
    :class:`ExecutionOptions` and a ``DeprecationWarning`` is emitted.
    Mixing both styles in one call is an error, as is any unknown keyword.
    """
    if not legacy:
        return options if options is not None else ExecutionOptions()
    unknown = set(legacy) - set(_LEGACY_KEYS)
    if unknown:
        raise TypeError(
            f"unknown execution keyword(s) {sorted(unknown)}; "
            f"supported legacy keywords are {list(_LEGACY_KEYS)}"
        )
    if options is not None:
        raise TypeError(
            "pass either an ExecutionOptions object or legacy keywords, "
            "not both"
        )
    warnings.warn(
        "QueryExecutor keyword arguments "
        "(context=, prefer_facility=, smart=, trace=) are deprecated; "
        "pass ExecutionOptions(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return ExecutionOptions(**legacy)
