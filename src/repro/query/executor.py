"""Query executor: runs an access plan and resolves drops.

Execution mirrors the paper's retrieval procedures: the driving facility
produces candidate OIDs, each candidate object is fetched (one page access)
and tested against *every* predicate exactly, and qualified objects are
returned. Candidates failing the exact test are the false drops; the
executor reports them, together with the I/O snapshot delta, in
:class:`QueryStatistics` — this is how the empirical experiments measure
the quantities the cost model predicts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.access.base import SearchResult
from repro.errors import PlanningError
from repro.objects.database import Database
from repro.objects.oid import OID
from repro.query.parser import ParsedQuery, parse_query
from repro.query.planner import AccessPlan, CostContext, plan_query
from repro.query.predicates import SubqueryPredicate
from repro.storage.stats import IOSnapshot


@dataclass
class QueryStatistics:
    """Measured execution profile of one query."""

    plan: str
    candidates: int = 0
    false_drops: int = 0
    results: int = 0
    io: Optional[IOSnapshot] = None
    elapsed_seconds: float = 0.0
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def page_accesses(self) -> int:
        """Total logical page accesses — comparable to the model's RC."""
        return self.io.logical_total if self.io else 0

    def false_drop_ratio(self, population: int) -> float:
        """Measured ``Fd = false / (N − actual)`` (§3.2's definition)."""
        denominator = population - self.results
        return self.false_drops / denominator if denominator > 0 else 0.0


@dataclass
class QueryResult:
    """Rows plus execution statistics."""

    rows: List[Tuple[OID, Dict[str, Any]]]
    statistics: QueryStatistics

    def oids(self) -> List[OID]:
        return [oid for oid, _ in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


class QueryExecutor:
    """Plans and executes parsed queries against one database."""

    def __init__(self, database: Database):
        self.database = database

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def execute_text(
        self,
        text: str,
        context: Optional[CostContext] = None,
        prefer_facility: Optional[str] = None,
        smart: bool = True,
    ) -> QueryResult:
        """Parse, plan and run a query given in the SQL-like language."""
        return self.execute(
            parse_query(text),
            context=context,
            prefer_facility=prefer_facility,
            smart=smart,
        )

    def explain(
        self,
        text: str,
        context: Optional[CostContext] = None,
        prefer_facility: Optional[str] = None,
        smart: bool = True,
    ) -> str:
        """Render the chosen plan and its alternatives without executing.

        Subqueries *are* executed (their results determine the outer
        query's ``Dq``, which the cost model needs), but the outer query is
        only planned.
        """
        query = self._resolve_subqueries(
            parse_query(text), context=context, smart=smart
        )
        plan = plan_query(
            self.database,
            query,
            context=context,
            prefer_facility=prefer_facility,
            smart=smart,
        )
        lines = [f"query : {query.describe()}", f"plan  : {plan.describe()}"]
        if plan.residual_predicates:
            residuals = " and ".join(p.describe() for p in plan.residual_predicates)
            lines.append(f"residual filters: {residuals}")
        if plan.alternatives:
            lines.append("alternatives (estimated pages):")
            for name, cost in sorted(plan.alternatives.items(), key=lambda kv: kv[1]):
                marker = " <- chosen" if (
                    plan.facility_name is not None
                    and name.startswith(f"{plan.facility_name}:")
                    and cost == plan.estimated_cost
                ) else ""
                lines.append(f"  {name:24s} {cost:10.1f}{marker}")
        return "\n".join(lines)

    def execute(
        self,
        query: ParsedQuery,
        context: Optional[CostContext] = None,
        prefer_facility: Optional[str] = None,
        smart: bool = True,
    ) -> QueryResult:
        query = self._resolve_subqueries(query, context=context, smart=smart)
        plan = plan_query(
            self.database,
            query,
            context=context,
            prefer_facility=prefer_facility,
            smart=smart,
        )
        return self.execute_plan(plan, query)

    def _resolve_subqueries(
        self,
        query: ParsedQuery,
        context: Optional[CostContext],
        smart: bool,
        depth: int = 0,
    ) -> ParsedQuery:
        """Materialize subquery predicates (the paper's §1 step 1).

        Each nested ``select`` is executed first — with its own plan, never
        inheriting the outer ``prefer_facility``/context, since it targets
        a different class — and its result OIDs become the query set of a
        plain set predicate.
        """
        if depth > 8:
            raise PlanningError("subquery nesting deeper than 8 levels")
        if not query.has_unresolved_subqueries():
            return query
        resolved = []
        for predicate in query.predicates:
            if isinstance(predicate, SubqueryPredicate):
                inner = self._resolve_subqueries(
                    predicate.subquery, context=None, smart=smart,
                    depth=depth + 1,
                )
                result = self.execute(inner, smart=smart)
                resolved.append(predicate.resolve(result.oids()))
            else:
                resolved.append(predicate)
        return ParsedQuery(
            class_name=query.class_name, predicates=tuple(resolved)
        )

    # ------------------------------------------------------------------
    # Plan execution
    # ------------------------------------------------------------------
    def execute_plan(self, plan: AccessPlan, query: ParsedQuery) -> QueryResult:
        before = self.database.io_snapshot()
        started = time.perf_counter()
        if plan.is_scan:
            rows, stats_detail, candidates = self._run_scan(plan, query)
        else:
            rows, stats_detail, candidates = self._run_index(plan, query)
        elapsed = time.perf_counter() - started
        stats = QueryStatistics(
            plan=plan.describe(),
            candidates=candidates,
            false_drops=candidates - len(rows),
            results=len(rows),
            io=self.database.io_snapshot() - before,
            elapsed_seconds=elapsed,
            detail=stats_detail,
        )
        return QueryResult(rows=rows, statistics=stats)

    def _run_scan(self, plan: AccessPlan, query: ParsedQuery):
        rows = []
        scanned = 0
        for oid, values in self.database.scan(plan.class_name):
            scanned += 1
            if all(p.matches(values) for p in query.predicates):
                rows.append((oid, values))
        return rows, {"scanned": scanned}, scanned

    def _run_index(self, plan: AccessPlan, query: ParsedQuery):
        facility = self.database.index(
            plan.class_name, plan.driving_predicate.attribute, plan.facility_name
        )
        result = self._search(facility, plan)
        candidates = result.candidates
        detail = dict(result.detail)
        if plan.intersect_with is not None:
            second = plan.intersect_with
            second_facility = self.database.index(
                plan.class_name, second.predicate.attribute, second.facility_name
            )
            if second.search_mode == "superset":
                second_result = second_facility.search_superset(
                    second.predicate.constant
                )
            elif second.search_mode == "subset":
                second_result = second_facility.search_subset(
                    second.predicate.constant
                )
            else:
                second_result = second_facility.search_overlap(
                    second.predicate.constant
                )
            survivors = set(candidates) & set(second_result.candidates)
            detail["intersected_with"] = {
                "facility": second.facility_name,
                "candidates": len(second_result.candidates),
                "surviving": len(survivors),
            }
            candidates = sorted(survivors)
        rows = []
        for oid in candidates:
            values = self.database.get(oid)
            if all(p.matches(values) for p in query.predicates):
                rows.append((oid, values))
        detail["exact_search"] = result.exact and plan.intersect_with is None
        return rows, detail, len(candidates)

    def _search(self, facility, plan: AccessPlan) -> SearchResult:
        constant = plan.driving_predicate.constant
        if plan.search_mode == "superset":
            if plan.use_elements is not None:
                return facility.search_superset(
                    constant, use_elements=plan.use_elements
                )
            return facility.search_superset(constant)
        if plan.search_mode == "subset":
            if plan.slices_to_examine is not None:
                return facility.search_subset(
                    constant, slices_to_examine=plan.slices_to_examine
                )
            return facility.search_subset(constant)
        if plan.search_mode == "overlap":
            return facility.search_overlap(constant)
        raise PlanningError(f"unknown search mode: {plan.search_mode!r}")
