"""Query executor: runs an access plan and resolves drops.

Execution mirrors the paper's retrieval procedures: the driving facility
produces candidate OIDs, each candidate object is fetched (one page access)
and tested against *every* predicate exactly, and qualified objects are
returned. Candidates failing the exact test are the false drops; the
executor reports them, together with the I/O snapshot delta, in
:class:`QueryStatistics` — this is how the empirical experiments measure
the quantities the cost model predicts.

Execution behaviour is configured through one
:class:`~repro.query.options.ExecutionOptions` object (the old
``context=`` / ``prefer_facility=`` / ``smart=`` keywords still work for a
release, with a ``DeprecationWarning``). With ``ExecutionOptions(trace=True)``
the executor records a span tree (see :mod:`repro.obs`) attached to
``QueryResult.trace``; :meth:`QueryExecutor.explain_analyze` renders it as
an ``EXPLAIN ANALYZE``-style report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.access.base import BatchQuerySpec, SearchResult
from repro.errors import AccessFacilityError, PlanningError, StorageError
from repro.objects.database import Database
from repro.objects.oid import OID
from repro.obs import tracer as trace
from repro.obs.metrics import REGISTRY, file_kind
from repro.obs.sinks import render_span_tree
from repro.obs.tracer import NULL_TRACER, Span, Tracer
from repro.query.options import ExecutionMode, ExecutionOptions, coerce_options
from repro.query.parser import ParsedQuery, parse_query
from repro.query.planner import AccessPlan, plan_query
from repro.query.predicates import SubqueryPredicate
from repro.storage.stats import IOSnapshot, diff_raw


@dataclass
class QueryStatistics:
    """Measured execution profile of one query."""

    plan: str
    candidates: int = 0
    false_drops: int = 0
    results: int = 0
    io: Optional[IOSnapshot] = None
    elapsed_seconds: float = 0.0
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def page_accesses(self) -> int:
        """Total logical page accesses — comparable to the model's RC."""
        return self.io.logical_total if self.io else 0

    def false_drop_ratio(self, population: int) -> float:
        """Measured ``Fd = false / (N − actual)`` (§3.2's definition)."""
        denominator = population - self.results
        return self.false_drops / denominator if denominator > 0 else 0.0


@dataclass
class QueryResult:
    """Rows plus execution statistics (and, when traced, the span tree).

    ``partial`` / ``missing_shards`` only ever deviate from their defaults
    on a result merged by a degraded-mode
    :class:`~repro.sharding.ShardRouter`: ``partial=True`` flags that one
    or more shards never answered, and ``missing_shards`` names them. A
    partial answer is an exact *subset* of the complete one — scatter-
    gather over disjoint hash slices can under-report, never invent rows.
    """

    rows: List[Tuple[OID, Dict[str, Any]]]
    statistics: QueryStatistics
    trace: Optional[Span] = None
    partial: bool = False
    missing_shards: List[str] = field(default_factory=list)

    def oids(self) -> List[OID]:
        return [oid for oid, _ in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


class QueryExecutor:
    """Plans and executes parsed queries against one database."""

    def __init__(self, database: Database):
        self.database = database

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def execute_text(
        self,
        text: str,
        options: Optional[ExecutionOptions] = None,
        **legacy: Any,
    ) -> QueryResult:
        """Parse, plan and run a query given in the SQL-like language."""
        return self.execute(parse_query(text), coerce_options(options, legacy))

    def explain(
        self,
        text: str,
        options: Optional[ExecutionOptions] = None,
        **legacy: Any,
    ) -> str:
        """Render the chosen plan and its alternatives without executing.

        Subqueries *are* executed (their results determine the outer
        query's ``Dq``, which the cost model needs), but the outer query is
        only planned.
        """
        opts = coerce_options(options, legacy)
        query = self._resolve_subqueries(parse_query(text), opts)
        plan = plan_query(
            self.database,
            query,
            context=opts.context,
            prefer_facility=opts.prefer_facility,
            smart=opts.smart,
        )
        lines = [f"query : {query.describe()}", f"plan  : {plan.describe()}"]
        if plan.residual_predicates:
            residuals = " and ".join(p.describe() for p in plan.residual_predicates)
            lines.append(f"residual filters: {residuals}")
        if plan.alternatives:
            lines.append("alternatives (estimated pages):")
            for name, cost in sorted(plan.alternatives.items(), key=lambda kv: kv[1]):
                marker = " <- chosen" if (
                    plan.facility_name is not None
                    and name.startswith(f"{plan.facility_name}:")
                    and cost == plan.estimated_cost
                ) else ""
                lines.append(f"  {name:24s} {cost:10.1f}{marker}")
        return "\n".join(lines)

    def explain_analyze(
        self,
        text: str,
        options: Optional[ExecutionOptions] = None,
        **legacy: Any,
    ) -> str:
        """Execute the query with tracing on and render the span tree.

        The report shows the chosen plan, result/candidate/false-drop
        counts, the query's logical/physical page totals, and the recorded
        span tree with per-span page attribution — the executed counterpart
        of :meth:`explain`.
        """
        opts = coerce_options(options, legacy)
        if not opts.tracing_requested:
            opts = opts.evolve(trace=True)
        result = self.execute(parse_query(text), opts)
        stats = result.statistics
        physical = stats.io.physical_total if stats.io else 0
        lines = [
            f"query : {text.strip()}",
            f"plan  : {stats.plan}",
            f"rows  : {stats.results}   candidates: {stats.candidates}"
            f"   false drops: {stats.false_drops}",
            f"pages : {stats.page_accesses} logical / {physical} physical"
            f"   elapsed: {stats.elapsed_seconds * 1000.0:.3f}ms",
            "",
            render_span_tree(result.trace),
        ]
        return "\n".join(lines)

    def execute(
        self,
        query: ParsedQuery,
        options: Optional[ExecutionOptions] = None,
        **legacy: Any,
    ) -> QueryResult:
        opts = coerce_options(options, legacy)
        tracer = self._tracer_for(opts)
        if tracer is None:
            # Either tracing is off, or an outer execute() already
            # activated a tracer — in the latter case our spans nest into
            # the active tree rather than starting a second root.
            return self._execute(query, opts)
        with trace.activate(tracer):
            with tracer.span("query.execute", query=query.describe()) as root:
                result = self._execute(query, opts)
                root.set("plan", result.statistics.plan)
                root.set("results", result.statistics.results)
        result.trace = root
        return result

    def execute_many(
        self,
        queries: List[str],
        options: Optional[ExecutionOptions] = None,
    ) -> List[QueryResult]:
        """Run a batch of query texts through the configured backend.

        ``options.resolved_mode()`` picks the backend: ``SERIAL`` runs on
        the calling thread (with the batched kernel fast path when
        ``batch_size > 1``), ``THREAD`` serves through a transient
        :class:`~repro.server.QueryService`, ``PROCESS`` through a
        :class:`~repro.server.ProcessQueryService` over a read-only
        snapshot, and ``REMOTE`` through a transient
        :class:`~repro.client.RemoteClient` against
        ``options.remote_url``. Results come back in submission order on
        every backend, with rows and per-query page accounting identical
        to a sequential one-at-a-time run.
        """
        opts = coerce_options(options, {})
        mode = opts.resolved_mode()
        if mode is ExecutionMode.REMOTE:
            from repro.errors import ConfigurationError
            from repro.serving import connect

            if not opts.remote_url:
                raise ConfigurationError(
                    "REMOTE execution needs ExecutionOptions(remote_url=...)"
                )
            with connect(opts.remote_url) as client:
                return client.execute_many(queries, opts)
        if mode is ExecutionMode.PROCESS:
            from repro.server.process import ProcessQueryService

            with ProcessQueryService(
                self.database,
                max_workers=opts.max_workers or 4,
                batch_size=opts.batch_size,
            ) as service:
                return service.execute_many(queries, opts)
        if mode is ExecutionMode.THREAD:
            from repro.server.service import QueryService

            with QueryService(
                self.database, max_workers=opts.max_workers or 4
            ) as service:
                return service.execute_many(queries, opts)
        if opts.batch_size is not None and opts.batch_size > 1:
            return self.execute_batched(queries, opts)
        return [self.execute_text(text, opts) for text in queries]

    def execute_batched(
        self,
        queries: List[str],
        options: Optional[ExecutionOptions] = None,
    ) -> List[QueryResult]:
        """Serial batch execution through the facilities' batch protocol.

        Consecutive queries that drive the *same* facility are grouped (up
        to ``options.batch_size`` per group) and staged with one
        :meth:`~repro.access.base.SetAccessFacility.prepare_batch` call, so
        the facility decodes its signature matrix / slice set once and
        evaluates the whole group with the ``match_many`` kernels. Each
        query's completion then charges its page accesses exactly as the
        sequential search would, keeping rows, statistics and per-file page
        counts bit-identical to :meth:`execute_text` in a loop.

        Queries that cannot ride a batch — scans, subqueries, intersection
        plans, degraded facilities — fall out to the sequential path in
        their original position; tracing also disables batching, since a
        span tree describes exactly one query's execution.
        """
        opts = coerce_options(options, {})
        batch_size = opts.batch_size or 1
        if batch_size <= 1 or opts.tracing_requested:
            return [self.execute_text(text, opts) for text in queries]
        results: List[Optional[QueryResult]] = [None] * len(queries)
        pending: List[Tuple[int, AccessPlan, ParsedQuery]] = []
        pending_key: Optional[Tuple[str, str, str]] = None

        def flush() -> None:
            nonlocal pending, pending_key
            if pending:
                self._run_batch_group(pending, opts, results)
                pending = []
                pending_key = None

        for position, text in enumerate(queries):
            query = parse_query(text)
            if query.has_unresolved_subqueries():
                flush()
                results[position] = self.execute(query, opts)
                continue
            plan = plan_query(
                self.database,
                query,
                context=opts.context,
                prefer_facility=opts.prefer_facility,
                smart=opts.smart,
            )
            key = self._batch_key(plan)
            if key is None:
                flush()
                results[position] = self.execute_plan(plan, query)
                continue
            if pending and (key != pending_key or len(pending) >= batch_size):
                flush()
            pending.append((position, plan, query))
            pending_key = key
        flush()
        REGISTRY.counter("query.batched").inc(len(queries))
        return results  # type: ignore[return-value]

    def _batch_key(self, plan: AccessPlan) -> Optional[Tuple[str, str, str]]:
        """Grouping key for the batch path, or ``None`` if unbatchable.

        A plan can join a batch only when one healthy facility fully
        drives it: index plans without an intersection leg, on a facility
        that is not marked degraded. (Every facility supports
        ``prepare_batch`` — the base class stages sequential searches — so
        capability is not part of the test.)
        """
        if plan.is_scan or plan.intersect_with is not None:
            return None
        attribute = plan.driving_predicate.attribute
        if self.database.is_degraded(
            plan.class_name, attribute, plan.facility_name
        ):
            return None
        return (plan.class_name, attribute, plan.facility_name)

    def _run_batch_group(
        self,
        group: List[Tuple[int, AccessPlan, ParsedQuery]],
        opts: ExecutionOptions,
        results: List[Optional[QueryResult]],
    ) -> None:
        """Execute one same-facility group through the batch protocol.

        Mirrors :meth:`execute_plan` per query — read latch, isolated I/O
        scope, drop resolution, metrics — with phase 1 (the shared decode)
        hoisted in front. On a :class:`StorageError` anywhere in the batch
        path the whole group re-runs query-by-query through
        :meth:`execute_plan`, which owns the degradation protocol.
        """
        class_name, attribute, facility_name = self._batch_key_of(group)
        specs = [
            BatchQuerySpec(
                mode=plan.search_mode,
                query=plan.driving_predicate.constant,
                use_elements=plan.use_elements,
                slices_to_examine=plan.slices_to_examine,
            )
            for _, plan, _ in group
        ]
        stats_source = self.database.storage.stats
        fallback: List[Tuple[int, AccessPlan, ParsedQuery]] = []
        with self.database.read_scope(class_name):
            try:
                facility = self.database.index(
                    class_name, attribute, facility_name
                )
                completions = facility.prepare_batch(specs)
            except (StorageError, AccessFacilityError):
                completions = None
            if completions is None:
                fallback = list(group)
            else:
                for (position, plan, query), complete in zip(
                    group, completions
                ):
                    with stats_source.isolated():
                        raw_before = stats_source.raw_snapshot()
                        started = time.perf_counter()
                        try:
                            result = complete()
                        except StorageError:
                            fallback.append((position, plan, query))
                            continue
                        rows = []
                        for oid in result.candidates:
                            values = self.database.get(oid)
                            if all(
                                p.matches(values) for p in query.predicates
                            ):
                                rows.append((oid, values))
                        elapsed = time.perf_counter() - started
                        io_delta = diff_raw(
                            stats_source.raw_snapshot(), raw_before
                        )
                    detail = dict(result.detail)
                    detail["exact_search"] = result.exact
                    stats = QueryStatistics(
                        plan=plan.describe(),
                        candidates=len(result.candidates),
                        false_drops=len(result.candidates) - len(rows),
                        results=len(rows),
                        io=io_delta,
                        elapsed_seconds=elapsed,
                        detail=detail,
                    )
                    self._record_metrics(stats)
                    results[position] = QueryResult(rows=rows, statistics=stats)
        # Outside the latch: execute_plan re-acquires it per query.
        for position, plan, query in fallback:
            results[position] = self.execute_plan(plan, query)

    @staticmethod
    def _batch_key_of(
        group: List[Tuple[int, AccessPlan, ParsedQuery]],
    ) -> Tuple[str, str, str]:
        plan = group[0][1]
        return (
            plan.class_name,
            plan.driving_predicate.attribute,
            plan.facility_name,
        )

    def _tracer_for(self, opts: ExecutionOptions) -> Optional[Tracer]:
        """The tracer to activate for this call, or ``None`` to not activate."""
        if trace.current() is not NULL_TRACER:
            return None
        if opts.tracer is not None:
            return opts.tracer
        if opts.trace:
            return Tracer(io_source=self.database.storage)
        return None

    def _execute(self, query: ParsedQuery, opts: ExecutionOptions) -> QueryResult:
        query = self._resolve_subqueries(query, opts)
        with trace.span("query.plan", class_name=query.class_name) as sp:
            plan = plan_query(
                self.database,
                query,
                context=opts.context,
                prefer_facility=opts.prefer_facility,
                smart=opts.smart,
            )
            sp.set("plan", plan.describe())
            sp.set("estimated_pages", plan.estimated_cost)
        return self.execute_plan(plan, query)

    def _resolve_subqueries(
        self,
        query: ParsedQuery,
        opts: ExecutionOptions,
        depth: int = 0,
    ) -> ParsedQuery:
        """Materialize subquery predicates (the paper's §1 step 1).

        Each nested ``select`` is executed first — with its own plan, never
        inheriting the outer ``prefer_facility``/context, since it targets
        a different class — and its result OIDs become the query set of a
        plain set predicate.
        """
        if depth > 8:
            raise PlanningError("subquery nesting deeper than 8 levels")
        if not query.has_unresolved_subqueries():
            return query
        inner_opts = ExecutionOptions(smart=opts.smart)
        resolved = []
        for predicate in query.predicates:
            if isinstance(predicate, SubqueryPredicate):
                inner = self._resolve_subqueries(
                    predicate.subquery, inner_opts, depth=depth + 1
                )
                with trace.span(
                    "query.subquery", class_name=inner.class_name, depth=depth + 1
                ) as sp:
                    result = self.execute(inner, inner_opts)
                    sp.set("results", result.statistics.results)
                resolved.append(predicate.resolve(result.oids()))
            else:
                resolved.append(predicate)
        return ParsedQuery(
            class_name=query.class_name, predicates=tuple(resolved)
        )

    # ------------------------------------------------------------------
    # Plan execution
    # ------------------------------------------------------------------
    def execute_plan(self, plan: AccessPlan, query: ParsedQuery) -> QueryResult:
        # Read latch for the whole plan execution (keyed by class for a
        # sharded latch), plus a per-thread I/O scope: under concurrent
        # serving the before/after metering below must see only this
        # thread's page accesses, and the scope's merge-on-exit keeps the
        # shared totals bit-identical to a sequential run.
        with self.database.read_scope(plan.class_name):
            with self.database.storage.stats.isolated():
                before = self.database.io_snapshot()
                started = time.perf_counter()
                if plan.is_scan:
                    with trace.span("query.scan", class_name=plan.class_name):
                        rows, stats_detail, candidates = self._run_scan(
                            plan, query
                        )
                else:
                    rows, stats_detail, candidates = self._run_index(plan, query)
                elapsed = time.perf_counter() - started
                io_delta = self.database.io_snapshot() - before
        described = plan.describe()
        if "degraded" in stats_detail:
            described += f" -> degraded-fallback scan({plan.class_name})"
            # Counted here — once per query — rather than inside the
            # fallback helper, so a plan whose legs degrade independently
            # can never inflate the metric.
            REGISTRY.counter("query.degraded_fallbacks").inc()
        stats = QueryStatistics(
            plan=described,
            candidates=candidates,
            false_drops=candidates - len(rows),
            results=len(rows),
            io=io_delta,
            elapsed_seconds=elapsed,
            detail=stats_detail,
        )
        self._record_metrics(stats)
        return QueryResult(rows=rows, statistics=stats)

    @staticmethod
    def _record_metrics(stats: QueryStatistics) -> None:
        """Feed the process-wide registry; pure arithmetic, no I/O."""
        REGISTRY.counter("query.executed").inc()
        REGISTRY.counter("query.candidates").inc(stats.candidates)
        REGISTRY.counter("query.false_drops").inc(stats.false_drops)
        REGISTRY.counter("query.results").inc(stats.results)
        if stats.io is not None:
            for name, counts in stats.io.files():
                pages = counts.logical_total
                if pages:
                    REGISTRY.counter(f"query.pages.{file_kind(name)}").inc(pages)
            REGISTRY.histogram("query.pages").record(stats.io.logical_total)
        REGISTRY.histogram("query.elapsed_seconds").record(stats.elapsed_seconds)
        if stats.candidates:
            REGISTRY.histogram("query.false_drop_ratio").record(
                stats.false_drops / stats.candidates
            )

    def _run_scan(self, plan: AccessPlan, query: ParsedQuery):
        rows = []
        scanned = 0
        for oid, values in self.database.scan(plan.class_name):
            scanned += 1
            if all(p.matches(values) for p in query.predicates):
                rows.append((oid, values))
        return rows, {"scanned": scanned}, scanned

    def _run_index(self, plan: AccessPlan, query: ParsedQuery):
        result, reason = self._driving_search(plan)
        if result is None:
            # The driving facility is unusable; answer via sequential scan
            # (exact by construction) instead of surfacing the failure.
            return self._run_degraded_scan(plan, query, reason)
        candidates = result.candidates
        detail = dict(result.detail)
        if plan.intersect_with is not None:
            second = plan.intersect_with
            second_facility = self.database.index(
                plan.class_name, second.predicate.attribute, second.facility_name
            )
            with trace.span(
                "query.intersect",
                facility=second.facility_name,
                attribute=second.predicate.attribute,
            ) as sp:
                try:
                    if second.search_mode == "superset":
                        second_result = second_facility.search_superset(
                            second.predicate.constant
                        )
                    elif second.search_mode == "subset":
                        second_result = second_facility.search_subset(
                            second.predicate.constant
                        )
                    else:
                        second_result = second_facility.search_overlap(
                            second.predicate.constant
                        )
                except StorageError as exc:
                    # Skipping the intersection is always safe: it only
                    # narrows candidates, and drop resolution re-checks
                    # every predicate exactly.
                    self.database.mark_degraded(
                        plan.class_name,
                        second.predicate.attribute,
                        second.facility_name,
                        str(exc),
                    )
                    second_result = None
                    sp.set("skipped", str(exc))
                else:
                    survivors = set(candidates) & set(second_result.candidates)
                    sp.set("surviving", len(survivors))
            if second_result is None:
                detail["intersection_skipped"] = {
                    "facility": second.facility_name,
                    "reason": "facility degraded",
                }
            else:
                detail["intersected_with"] = {
                    "facility": second.facility_name,
                    "candidates": len(second_result.candidates),
                    "surviving": len(survivors),
                }
                candidates = sorted(survivors)
        rows = []
        with trace.span("query.drop_resolution", candidates=len(candidates)) as sp:
            for oid in candidates:
                values = self.database.get(oid)
                if all(p.matches(values) for p in query.predicates):
                    rows.append((oid, values))
            sp.set("false_drops", len(candidates) - len(rows))
        detail["exact_search"] = result.exact and plan.intersect_with is None
        return rows, detail, len(candidates)

    # ------------------------------------------------------------------
    # Degraded-mode execution
    # ------------------------------------------------------------------
    def _driving_search(self, plan: AccessPlan):
        """Search the driving facility, degrading gracefully on failure.

        Returns ``(SearchResult, None)`` on success or ``(None, reason)``
        when the facility cannot answer — already degraded, or its storage
        failed mid-search — and the query must fall back to a scan. With
        ``auto_rebuild`` the facility is reconstructed from the object file
        and searched once more before giving up.
        """
        database = self.database
        attribute = plan.driving_predicate.attribute
        key = (plan.class_name, attribute, plan.facility_name)
        if database.is_degraded(*key):
            if not database.auto_rebuild:
                return None, database.degraded_reason(*key) or "facility degraded"
            if self._try_rebuild(*key) is None:
                return None, database.degraded_reason(*key) or "facility degraded"
        facility = database.index(plan.class_name, attribute, plan.facility_name)
        try:
            return self._search(facility, plan), None
        except StorageError as exc:
            database.mark_degraded(*key, str(exc))
            if database.auto_rebuild:
                rebuilt = self._try_rebuild(*key)
                if rebuilt is not None:
                    try:
                        return self._search(rebuilt, plan), None
                    except StorageError as again:
                        database.mark_degraded(*key, str(again))
                        return None, str(again)
            return None, str(exc)

    def _try_rebuild(self, class_name: str, attribute: str, facility_name: str):
        """Rebuild one facility, returning it, or ``None`` if that failed."""
        with trace.span(
            "recovery.rebuild", facility=facility_name, attribute=attribute
        ):
            try:
                return self.database.rebuild_facility(
                    class_name, attribute, facility_name
                )
            except (StorageError, AccessFacilityError):
                return None

    def _run_degraded_scan(self, plan: AccessPlan, query: ParsedQuery, reason):
        """Answer the query by sequential scan after a facility failure.

        The scan applies every predicate exactly, so results are identical
        to a healthy index path — only the page-access profile differs
        (object-file pages instead of facility pages).
        """
        with trace.span(
            "degraded-fallback",
            class_name=plan.class_name,
            facility=plan.facility_name,
            reason=str(reason),
        ):
            rows, detail, candidates = self._run_scan(plan, query)
        detail["degraded"] = {
            "facility": plan.facility_name,
            "reason": str(reason),
        }
        return rows, detail, candidates

    def _search(self, facility, plan: AccessPlan) -> SearchResult:
        constant = plan.driving_predicate.constant
        if plan.search_mode == "superset":
            if plan.use_elements is not None:
                return facility.search_superset(
                    constant, use_elements=plan.use_elements
                )
            return facility.search_superset(constant)
        if plan.search_mode == "subset":
            if plan.slices_to_examine is not None:
                return facility.search_subset(
                    constant, slices_to_examine=plan.slices_to_examine
                )
            return facility.search_subset(constant)
        if plan.search_mode == "overlap":
            return facility.search_overlap(constant)
        raise PlanningError(f"unknown search mode: {plan.search_mode!r}")
