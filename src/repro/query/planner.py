"""Query planner: facility selection and smart-strategy parameters.

Given a parsed query and a database, the planner picks one indexable
predicate to *drive* the plan through an access facility (the rest become
residual filters applied during drop resolution), chooses among the
facilities available on that attribute path using the Section 4 cost
model, and — when enabled — attaches the Section 5 smart-retrieval
parameters (``use_elements`` for ``T ⊇ Q``, ``slices_to_examine`` for
``T ⊆ Q``).

The cost model needs workload statistics (N, V, Dt); a
:class:`CostContext` supplies them, either explicitly or estimated by
sampling the database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.access.base import SetAccessFacility
from repro.access.bssf import BitSlicedSignatureFile
from repro.access.nix import NestedIndex
from repro.access.ssf import SequentialSignatureFile
from repro.core.signature import SetPredicateKind
from repro.costmodel.bssf_model import BSSFCostModel
from repro.costmodel.nix_model import NIXCostModel
from repro.costmodel.parameters import CostParameters
from repro.costmodel.smart import (
    smart_subset_bssf,
    smart_superset_bssf,
    smart_superset_nix,
)
from repro.costmodel.ssf_model import SSFCostModel
from repro.errors import PlanningError
from repro.objects.database import Database
from repro.query.parser import ParsedQuery
from repro.query.predicates import SetPredicate

#: predicate kinds an access facility can drive, and the search mode used
_DRIVABLE = {
    SetPredicateKind.HAS_SUBSET: "superset",
    SetPredicateKind.CONTAINS: "superset",
    SetPredicateKind.EQUALS: "superset",
    SetPredicateKind.IN_SUBSET: "subset",
    SetPredicateKind.OVERLAPS: "overlap",
}


@dataclass(frozen=True)
class CostContext:
    """Workload statistics feeding the analytical cost model."""

    num_objects: int
    domain_cardinality: int
    target_cardinality: int

    @classmethod
    def estimate(
        cls, database: Database, class_name: str, attribute: str, sample: int = 200
    ) -> "CostContext":
        """Sample the class to estimate N, V and Dt.

        V is estimated from distinct elements seen in the sample scaled by
        a simple coverage heuristic; exact statistics should be supplied
        explicitly when known (the experiments always do).
        """
        total = database.count(class_name)
        if total == 0:
            raise PlanningError(f"class {class_name!r} is empty; supply statistics")
        sizes = []
        distinct = set()
        for i, (_, values) in enumerate(database.scan(class_name)):
            if i >= sample:
                break
            value = values[attribute]
            sizes.append(len(value))
            distinct.update(value)
        mean_dt = max(1, round(sum(sizes) / len(sizes)))
        return cls(
            num_objects=total,
            domain_cardinality=max(len(distinct), mean_dt),
            target_cardinality=mean_dt,
        )

    def parameters(self, page_bytes: int) -> CostParameters:
        return CostParameters(
            num_objects=self.num_objects,
            page_bytes=page_bytes,
            domain_cardinality=self.domain_cardinality,
        )


@dataclass(frozen=True)
class SecondaryAccess:
    """The second leg of an index-intersection plan."""

    predicate: SetPredicate
    facility_name: str
    search_mode: str  # superset | subset | overlap


@dataclass(frozen=True)
class AccessPlan:
    """An executable plan for one query."""

    class_name: str
    #: None means full class scan
    driving_predicate: Optional[SetPredicate]
    facility_name: Optional[str]
    search_mode: Optional[str]  # superset | subset | overlap
    residual_predicates: Tuple[SetPredicate, ...]
    use_elements: Optional[int] = None
    slices_to_examine: Optional[int] = None
    estimated_cost: Optional[float] = None
    alternatives: Dict[str, float] = field(default_factory=dict)
    #: when set, the executor also runs this search and intersects the
    #: two candidate OID sets before drop resolution
    intersect_with: Optional[SecondaryAccess] = None

    @property
    def is_scan(self) -> bool:
        return self.facility_name is None

    def describe(self) -> str:
        if self.is_scan:
            return f"scan({self.class_name})"
        parts = [f"{self.facility_name}.{self.search_mode}"]
        if self.use_elements is not None:
            parts.append(f"use_elements={self.use_elements}")
        if self.slices_to_examine is not None:
            parts.append(f"slices={self.slices_to_examine}")
        if self.estimated_cost is not None:
            parts.append(f"~{self.estimated_cost:.1f} pages")
        body = ", ".join(parts)
        head = (
            f"index({self.class_name}.{self.driving_predicate.attribute}: {body})"
        )
        if self.intersect_with is not None:
            second = self.intersect_with
            head += (
                f" ∩ index({self.class_name}.{second.predicate.attribute}: "
                f"{second.facility_name}.{second.search_mode})"
            )
        return head


def _model_kind(facility: SetAccessFacility) -> str:
    """Cost-model family for one facility.

    LSM facilities price with their run format's model (same F, m and
    object statistics as the in-place layout), which keeps plan strings
    bit-identical across the two write paths — the cost inputs never
    depend on facility state, only on the scheme and the class statistics.
    """
    if getattr(facility, "is_lsm", False):
        return facility.kind
    if isinstance(facility, SequentialSignatureFile):
        return "ssf"
    if isinstance(facility, BitSlicedSignatureFile):
        return "bssf"
    if isinstance(facility, NestedIndex):
        return "nix"
    raise PlanningError(f"unknown facility type: {type(facility).__name__}")


def _estimate_facility_cost(
    facility: SetAccessFacility,
    mode: str,
    predicate: SetPredicate,
    context: CostContext,
    page_bytes: int,
    smart: bool,
) -> Tuple[float, Optional[int], Optional[int]]:
    """(estimated pages, use_elements, slices_to_examine) for one facility."""
    params = context.parameters(page_bytes)
    Dt = context.target_cardinality
    Dq = predicate.query_cardinality
    kind = _model_kind(facility)
    if kind == "ssf":
        model = SSFCostModel(
            params, facility.signature_bits, facility.scheme.bits_per_element
        )
        if mode == "subset":
            return model.retrieval_cost_subset(Dt, Dq), None, None
        # superset also approximates equals/overlap driving cost
        return model.retrieval_cost_superset(Dt, max(Dq, 1)), None, None
    if kind == "bssf":
        model = BSSFCostModel(
            params, facility.signature_bits, facility.scheme.bits_per_element
        )
        if mode == "subset":
            if smart:
                decision = smart_subset_bssf(model, Dt, Dq)
                return decision.cost, None, decision.parameter
            return model.retrieval_cost_subset(Dt, Dq), None, None
        if smart and mode == "superset" and Dq >= 1:
            decision = smart_superset_bssf(model, Dt, Dq)
            return decision.cost, decision.parameter, None
        return model.retrieval_cost_superset(Dt, max(Dq, 1)), None, None
    model = NIXCostModel(params, Dt)
    if mode == "subset":
        return model.retrieval_cost_subset(Dq), None, None
    if smart and mode == "superset" and Dq >= 1:
        decision = smart_superset_nix(model, Dq)
        return decision.cost, decision.parameter, None
    return model.retrieval_cost_superset(max(Dq, 1)), None, None


def _filter_profile(
    facility: SetAccessFacility,
    mode: str,
    predicate: SetPredicate,
    context: CostContext,
    page_bytes: int,
) -> Tuple[float, float]:
    """(filter page cost, surviving fraction of N) for one naive search.

    Used by the index-intersection planner: the filter cost excludes drop
    resolution, and the fraction estimates how many of the N objects the
    search leaves as candidates (false drops + actual matches).
    """
    from repro.core.false_drop import false_drop_subset, false_drop_superset
    from repro.costmodel.actual_drop import (
        actual_drops_subset,
        actual_drops_superset,
        expected_intersecting_non_subset,
    )

    params = context.parameters(page_bytes)
    Dt = context.target_cardinality
    Dq = max(predicate.query_cardinality, 1)
    N = params.num_objects
    kind = _model_kind(facility)
    if kind in ("ssf", "bssf"):
        F = facility.signature_bits
        m = facility.scheme.bits_per_element
        if mode == "subset":
            fd = false_drop_subset(F, m, Dt, Dq)
            actual = actual_drops_subset(params, Dt, Dq)
        else:
            fd = false_drop_superset(F, m, Dt, Dq)
            actual = actual_drops_superset(params, Dt, Dq)
        fraction = min(1.0, fd + actual / N)
        if kind == "ssf":
            pages = SSFCostModel(params, F, m).signature_file_pages
        else:
            model = BSSFCostModel(params, F, m)
            weight = model.query_weight(Dq)
            slices = weight if mode != "subset" else F - weight
            pages = model.slice_pages * slices
        # signature searches resolve entry indexes → OIDs via the OID file
        pages += params.oid_lookup_cost(min(fd, 1.0), actual)
        return pages, fraction
    model = NIXCostModel(params, Dt)
    pages = float(model.lookup_cost * Dq)
    if mode == "subset":
        surviving = (
            expected_intersecting_non_subset(params, Dt, Dq)
            + actual_drops_subset(params, Dt, Dq)
        )
    else:
        surviving = actual_drops_superset(params, Dt, Dq)
    return pages, min(1.0, surviving / N)


def plan_query(
    database: Database,
    query: ParsedQuery,
    context: Optional[CostContext] = None,
    prefer_facility: Optional[str] = None,
    smart: bool = True,
) -> AccessPlan:
    """Produce the cheapest plan for ``query``.

    ``prefer_facility`` forces a specific facility ("ssf" / "bssf" / "nix")
    when several index the driving attribute; ``smart=False`` disables the
    Section 5 strategies (used by the ablation benches).
    """
    class_name = query.class_name
    database.schema(class_name)  # raises for unknown classes
    if query.has_unresolved_subqueries():
        raise PlanningError(
            "query contains unresolved subqueries; execute it through "
            "QueryExecutor, which materializes them first"
        )

    candidates = []
    for position, predicate in enumerate(query.predicates):
        mode = _DRIVABLE.get(getattr(predicate, "kind", None))
        if mode is None:
            continue  # scalar predicates are residual filters only
        facilities = database.indexes_on(class_name, predicate.attribute)
        if prefer_facility is not None:
            facilities = {
                name: f for name, f in facilities.items() if name == prefer_facility
            }
        for facility in facilities.values():
            if mode == "overlap":
                try:
                    facility.search_overlap  # noqa: B018 — capability probe
                except AttributeError:  # pragma: no cover — all support it
                    continue
            candidates.append((position, predicate, mode, facility))

    if not candidates:
        if prefer_facility is not None:
            raise PlanningError(
                f"no {prefer_facility!r} index drives any predicate of "
                f"{query.describe()!r}"
            )
        return AccessPlan(
            class_name=class_name,
            driving_predicate=None,
            facility_name=None,
            search_mode=None,
            residual_predicates=tuple(query.predicates),
        )

    if context is None:
        # Use the database's ANALYZE cache (collected on demand, refreshed
        # when the class has drifted) rather than ad-hoc sampling.
        first_attr = candidates[0][1].attribute
        statistics = database.analyze(class_name, first_attr, refresh=False)
        context = statistics.cost_context()

    best = None
    alternatives: Dict[str, float] = {}
    for position, predicate, mode, facility in candidates:
        cost, use_elements, slices = _estimate_facility_cost(
            facility, mode, predicate, context, database.storage.page_size, smart
        )
        alternatives[f"{facility.name}:{predicate.attribute}"] = cost
        if best is None or cost < best[0]:
            best = (cost, position, predicate, mode, facility, use_elements, slices)

    cost, position, predicate, mode, facility, use_elements, slices = best

    # ------------------------------------------------------------------
    # Index intersection: when two different predicates are drivable, the
    # product of their surviving fractions can shrink drop resolution far
    # below what either filter achieves alone (cost model: filter pages of
    # both legs plus Pu·N·f1·f2 resolution, assuming independence).
    # ------------------------------------------------------------------
    intersection = None
    if prefer_facility is None:
        params = context.parameters(database.storage.page_size)
        resolution_rate = params.pages_per_unsuccessful * params.num_objects
        profiles: Dict[int, Tuple[float, float, SetPredicate, str, SetAccessFacility]] = {}
        for cand_position, cand_predicate, cand_mode, cand_facility in candidates:
            if cand_mode == "overlap":
                continue  # no surviving-fraction model for overlap
            pages, fraction = _filter_profile(
                cand_facility, cand_mode, cand_predicate, context,
                database.storage.page_size,
            )
            score = pages + fraction * resolution_rate
            current = profiles.get(cand_position)
            if current is None or score < current[0] + current[1] * resolution_rate:
                profiles[cand_position] = (
                    pages, fraction, cand_predicate, cand_mode, cand_facility
                )
        positions = sorted(profiles)
        for i, first in enumerate(positions):
            for second in positions[i + 1:]:
                pages_1, fraction_1, pred_1, mode_1, fac_1 = profiles[first]
                pages_2, fraction_2, pred_2, mode_2, fac_2 = profiles[second]
                combined = (
                    pages_1 + pages_2
                    + resolution_rate * fraction_1 * fraction_2
                )
                if combined < cost and (
                    intersection is None or combined < intersection[0]
                ):
                    # stronger filter drives; weaker one intersects
                    if fraction_1 <= fraction_2:
                        legs = (pred_1, mode_1, fac_1, pred_2, mode_2, fac_2)
                    else:
                        legs = (pred_2, mode_2, fac_2, pred_1, mode_1, fac_1)
                    intersection = (combined, first, second, legs)

    if intersection is not None:
        combined, first, second, legs = intersection
        primary_pred, primary_mode, primary_fac, other_pred, other_mode, other_fac = legs
        alternatives["intersection"] = combined
        residuals = tuple(
            p for p in query.predicates if p is not primary_pred
        )
        return AccessPlan(
            class_name=class_name,
            driving_predicate=primary_pred,
            facility_name=primary_fac.name,
            search_mode=primary_mode,
            residual_predicates=residuals,
            estimated_cost=combined,
            alternatives=alternatives,
            intersect_with=SecondaryAccess(
                predicate=other_pred,
                facility_name=other_fac.name,
                search_mode=other_mode,
            ),
        )

    residuals = tuple(
        p for i, p in enumerate(query.predicates) if i != position
    )
    return AccessPlan(
        class_name=class_name,
        driving_predicate=predicate,
        facility_name=facility.name,
        search_mode=mode,
        residual_predicates=residuals,
        use_elements=use_elements,
        slices_to_examine=slices,
        estimated_cost=cost,
        alternatives=alternatives,
    )
