"""Query layer: predicates, the SQL-like parser, planner, and executor."""

from repro.query.executor import QueryExecutor, QueryResult, QueryStatistics
from repro.query.options import ExecutionOptions, coerce_options
from repro.query.parser import ParsedQuery, parse_query, tokenize
from repro.query.planner import AccessPlan, CostContext, plan_query
from repro.query.predicates import (
    ScalarPredicate,
    SetPredicate,
    SubqueryPredicate,
    contains,
    has_subset,
    in_subset,
    overlaps,
    set_equals,
)

__all__ = [
    "AccessPlan",
    "CostContext",
    "ExecutionOptions",
    "ParsedQuery",
    "QueryExecutor",
    "QueryResult",
    "QueryStatistics",
    "coerce_options",
    "ScalarPredicate",
    "SetPredicate",
    "SubqueryPredicate",
    "contains",
    "has_subset",
    "in_subset",
    "overlaps",
    "parse_query",
    "plan_query",
    "set_equals",
    "tokenize",
]
