"""Parser for the paper's SQL-like set-query language.

Grammar (the [Kim90]-style syntax the paper's Section 2 uses, extended with
conjunction, scalar equality, subqueries, and the §6 operators)::

    query      := 'select' IDENT 'where' condition
    condition  := predicate ('and' predicate)*
    predicate  := IDENT operator set_literal
                | IDENT '=' literal
    operator   := 'has-subset' | 'in-subset' | 'contains'
                | 'set-equals' | 'overlaps'
    set_literal:= '(' literal (',' literal)* ')'
                | '(' query ')'                 -- subquery: result OIDs
                | literal                        -- for contains
    literal    := STRING | INTEGER | FLOAT

Examples — the paper's Q1/Q2 and the Section 1 two-step query::

    select Student where hobbies has-subset ("Baseball", "Fishing")
    select Student where hobbies in-subset ("Baseball", "Fishing", "Tennis")
    select Student where courses has-subset
        (select Course where category = "DB")
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Hashable, List, Tuple

from repro.core.signature import SetPredicateKind
from repro.errors import ParseError
from repro.query.predicates import ScalarPredicate, SetPredicate, SubqueryPredicate

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<float>-?\d+\.\d+)
  | (?P<int>-?\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_-]*)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<lbrace>\{)
  | (?P<rbrace>\})
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<eq>=)
    """,
    re.VERBOSE,
)

_OPERATORS = {kind.value: kind for kind in SetPredicateKind}


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    position: int


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        kind = match.lastgroup
        if kind != "ws":
            tokens.append(Token(kind=kind, text=match.group(), position=position))
        position = match.end()
    return tokens


@dataclass(frozen=True)
class ParsedQuery:
    """``select <class> where <predicates conjunction>``.

    Predicates are :class:`SetPredicate`, :class:`ScalarPredicate`, or
    (before the executor resolves them) :class:`SubqueryPredicate`.
    """

    class_name: str
    predicates: Tuple[object, ...]

    def has_unresolved_subqueries(self) -> bool:
        return any(isinstance(p, SubqueryPredicate) for p in self.predicates)

    def describe(self) -> str:
        body = " and ".join(p.describe() for p in self.predicates)
        return f"select {self.class_name} where {body}"


class _Cursor:
    def __init__(self, tokens: List[Token], source: str):
        self.tokens = tokens
        self.source = source
        self.index = 0

    def peek(self) -> Token:
        if self.index >= len(self.tokens):
            raise ParseError(f"unexpected end of query: {self.source!r}")
        return self.tokens[self.index]

    def next(self) -> Token:
        token = self.peek()
        self.index += 1
        return token

    def expect(self, kind: str, text: str = None) -> Token:
        token = self.next()
        if token.kind != kind or (text is not None and token.text.lower() != text):
            expected = text or kind
            raise ParseError(
                f"expected {expected!r} at offset {token.position}, "
                f"got {token.text!r}"
            )
        return token

    def done(self) -> bool:
        return self.index >= len(self.tokens)


def _parse_literal(cursor: _Cursor) -> Hashable:
    token = cursor.next()
    if token.kind == "string":
        body = token.text[1:-1]
        return body.replace('\\"', '"').replace("\\\\", "\\")
    if token.kind == "int":
        return int(token.text)
    if token.kind == "float":
        return float(token.text)
    raise ParseError(
        f"expected a literal at offset {token.position}, got {token.text!r}"
    )


def _parse_set_literal(cursor: _Cursor):
    """A literal set, or a parenthesized subquery (returns a ParsedQuery)."""
    if cursor.peek().kind != "lparen":
        # bare literal — convenient for `contains`
        return frozenset([_parse_literal(cursor)])
    cursor.expect("lparen")
    head = cursor.peek()
    if head.kind == "ident" and head.text.lower() == "select":
        subquery = _parse_select(cursor, nested=True)
        cursor.expect("rparen")
        return subquery
    elements = [_parse_literal(cursor)]
    while cursor.peek().kind == "comma":
        cursor.next()
        elements.append(_parse_literal(cursor))
    cursor.expect("rparen")
    return frozenset(elements)


def _parse_predicate(cursor: _Cursor):
    attribute = cursor.expect("ident").text
    if cursor.peek().kind == "eq":
        cursor.next()
        return ScalarPredicate(attribute=attribute, value=_parse_literal(cursor))
    op_token = cursor.expect("ident")
    kind = _OPERATORS.get(op_token.text.lower())
    if kind is None:
        raise ParseError(
            f"unknown operator {op_token.text!r} at offset {op_token.position}; "
            f"expected one of {sorted(_OPERATORS)} or '='"
        )
    constant = _parse_set_literal(cursor)
    if isinstance(constant, ParsedQuery):
        return SubqueryPredicate(attribute=attribute, kind=kind, subquery=constant)
    if kind is SetPredicateKind.CONTAINS and len(constant) != 1:
        raise ParseError("'contains' takes exactly one element")
    return SetPredicate(attribute=attribute, kind=kind, constant=constant)


def _parse_select(cursor: _Cursor, nested: bool) -> ParsedQuery:
    cursor.expect("ident", "select")
    class_name = cursor.expect("ident").text
    cursor.expect("ident", "where")
    predicates = [_parse_predicate(cursor)]
    while True:
        if cursor.done():
            break
        token = cursor.peek()
        if nested and token.kind == "rparen":
            break  # the caller consumes the closing paren
        cursor.expect("ident", "and")
        predicates.append(_parse_predicate(cursor))
    return ParsedQuery(class_name=class_name, predicates=tuple(predicates))


def parse_query(text: str) -> ParsedQuery:
    """Parse one query; raises :class:`ParseError` with position info."""
    tokens = tokenize(text)
    if not tokens:
        raise ParseError("empty query")
    cursor = _Cursor(tokens, text)
    query = _parse_select(cursor, nested=False)
    if not cursor.done():
        token = cursor.peek()
        raise ParseError(
            f"unexpected {token.text!r} at offset {token.position}"
        )
    return query
