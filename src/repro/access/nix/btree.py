"""Paged B+-tree mapping keys to OID lists.

The structural substrate of the nested index (§4.3): leaves hold
``key → {OIDs}`` entries, internal nodes route by separator keys, and every
node occupies exactly one page of the storage manager. Lookups therefore
cost ``height + 1`` logical page reads — the model's ``rc`` (3 pages for
the paper's parameter ranges).

Splitting is size-driven: after a mutation a node that no longer serializes
into a page is split at the byte midpoint. Deletion removes OIDs (and empty
entries) without rebalancing, matching the paper's update model, which
ignores structural reorganization.

A single entry must fit one page (~500 OIDs at P = 4096); the paper's
``d = Dt·N/V`` keeps lists an order of magnitude below that. Overflowing
that bound raises rather than silently corrupting.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.access.nix.node import (
    InternalNode,
    LeafEntry,
    LeafNode,
    OverflowNode,
    deserialize_node,
)
from repro.errors import AccessFacilityError, IndexCorruptionError
from repro.objects.oid import OID
from repro.storage.paged_file import PagedFile


class BPlusTree:
    """B+-tree of OID lists over one paged file.

    ``overflow_chains=True`` lets a posting list outgrow its leaf: the
    inline portion is capped (a third of the page) and the tail lives in
    chained overflow buckets. Without chains, an oversized list raises —
    the paper's single-leaf entry layout.
    """

    def __init__(self, paged_file: PagedFile, overflow_chains: bool = False):
        self.file = paged_file
        self.overflow_chains = overflow_chains
        # Entries whose inline image exceeds this spill to a chain (chains
        # enabled) or raise (paper layout). A third of the page keeps at
        # least two entries per leaf splittable.
        self.inline_cap = self.file.page_size // 3
        if self.file.num_pages == 0:
            root_no, page = self.file.append_page()
            LeafNode().serialize_into(page)
            self.file.write_page(root_no, page)
            self.root_page = root_no
        else:
            self.root_page = 0
        self.height = self._measure_height()

    # ------------------------------------------------------------------
    # Node I/O
    # ------------------------------------------------------------------
    def _load(self, page_no: int):
        return deserialize_node(self.file.read_page(page_no))

    def _store(self, page_no: int, node) -> None:
        page = self.file.read_page(page_no)
        node.serialize_into(page)
        self.file.write_page(page_no, page)

    def _allocate(self, node) -> int:
        page_no, page = self.file.append_page()
        node.serialize_into(page)
        self.file.write_page(page_no, page)
        return page_no

    def _measure_height(self) -> int:
        """Number of internal levels above the leaves (0 = root is a leaf)."""
        height = 0
        node = self._load(self.root_page)
        while isinstance(node, InternalNode):
            height += 1
            node = self._load(node.children[0])
        return height

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _descend(self, key: bytes) -> Tuple[List[int], LeafNode]:
        """Root-to-leaf path (page numbers) and the loaded leaf."""
        path = [self.root_page]
        node = self._load(self.root_page)
        while isinstance(node, InternalNode):
            child = node.child_for(key)
            path.append(child)
            node = self._load(child)
        return path, node

    def lookup(self, key: bytes) -> List[OID]:
        """OID list for ``key`` (empty if absent).

        Costs ``height + 1`` reads plus one per overflow bucket when the
        posting list is chained.
        """
        _, leaf = self._descend(key)
        entry = leaf.find(key)
        if entry is None:
            return []
        values = sorted(entry.oids + self._chain_collect(entry.overflow_page))
        return [OID.from_int(value) for value in values]

    # ------------------------------------------------------------------
    # Overflow chains
    # ------------------------------------------------------------------
    def _load_overflow(self, page_no: int) -> OverflowNode:
        node = self._load(page_no)
        if not isinstance(node, OverflowNode):
            raise IndexCorruptionError(
                f"page {page_no} expected to be an overflow bucket"
            )
        return node

    def _chain_collect(self, head: "Optional[int]") -> List[int]:
        values: List[int] = []
        page_no = head
        while page_no is not None:
            bucket = self._load_overflow(page_no)
            values.extend(bucket.oids)
            page_no = bucket.next_page
        return values

    def _chain_contains(self, head: "Optional[int]", oid_int: int) -> bool:
        page_no = head
        while page_no is not None:
            bucket = self._load_overflow(page_no)
            if oid_int in bucket.oids:
                return True
            page_no = bucket.next_page
        return False

    def _chain_add(self, entry: LeafEntry, oid_int: int) -> None:
        """Push one OID into the entry's chain (head bucket, else new)."""
        capacity = OverflowNode.capacity(self.file.page_size)
        if entry.overflow_page is not None:
            head = self._load_overflow(entry.overflow_page)
            if len(head.oids) < capacity:
                head.oids.append(oid_int)
                self._store(entry.overflow_page, head)
                return
        bucket = OverflowNode(oids=[oid_int], next_page=entry.overflow_page)
        entry.overflow_page = self._allocate(bucket)

    def _chain_remove(self, entry: LeafEntry, oid_int: int) -> bool:
        """Remove one OID from the chain; compacts away empty buckets."""
        previous_page: "Optional[int]" = None
        page_no = entry.overflow_page
        while page_no is not None:
            bucket = self._load_overflow(page_no)
            if oid_int in bucket.oids:
                bucket.oids.remove(oid_int)
                if bucket.oids:
                    self._store(page_no, bucket)
                elif previous_page is None:
                    entry.overflow_page = bucket.next_page
                else:
                    previous = self._load_overflow(previous_page)
                    previous.next_page = bucket.next_page
                    self._store(previous_page, previous)
                return True
            previous_page = page_no
            page_no = bucket.next_page
        return False

    def contains_key(self, key: bytes) -> bool:
        _, leaf = self._descend(key)
        return leaf.find(key) is not None

    # ------------------------------------------------------------------
    # Bulk construction
    # ------------------------------------------------------------------
    def bulk_load(self, entries: "List[Tuple[bytes, List[int]]]") -> None:
        """Build the tree bottom-up from sorted ``(key, sorted oid ints)``.

        Leaves are filled to page capacity and chained; internal levels are
        stacked until one root remains, which lands on the stable root page
        (page 0). Only valid on an empty tree.
        """
        if self.height != 0 or self._load(self.root_page).entries:
            raise AccessFacilityError("bulk_load requires an empty tree")
        keys = [key for key, _ in entries]
        if keys != sorted(set(keys)):
            raise AccessFacilityError("bulk_load input must be sorted, unique keys")
        if not entries:
            return
        page_size = self.file.page_size
        # ---- build leaves ------------------------------------------------
        leaves: List[LeafNode] = [LeafNode()]
        used = leaves[-1].serialized_size()
        for key, oid_ints in entries:
            entry = LeafEntry(key=key, oids=list(oid_ints))
            if self.overflow_chains and entry.serialized_size() > self.inline_cap:
                entry = self._bulk_chain_entry(key, list(oid_ints))
            size = entry.serialized_size()
            if size > page_size - 16:
                raise AccessFacilityError(
                    f"OID list for key {key!r} does not fit one page"
                )
            if used + size > page_size and leaves[-1].entries:
                leaves.append(LeafNode())
                used = leaves[-1].serialized_size()
            leaves[-1].entries.append(entry)
            used += size
        # ---- place nodes: root is page 0; everything else is appended ----
        if len(leaves) == 1:
            self._store(self.root_page, leaves[0])
            self.height = 0
            return
        leaf_pages = [self._allocate(leaf) for leaf in leaves]
        for leaf, next_page in zip(leaves[:-1], leaf_pages[1:]):
            leaf.next_leaf = next_page
        for leaf, page_no in zip(leaves, leaf_pages):
            self._store(page_no, leaf)
        # ---- stack internal levels ---------------------------------------
        level_pages = leaf_pages
        level_keys = [leaf.entries[0].key for leaf in leaves]
        height = 0
        while len(level_pages) > 1:
            height += 1
            parents: List[InternalNode] = [InternalNode(children=[level_pages[0]])]
            for key, child in zip(level_keys[1:], level_pages[1:]):
                candidate_size = parents[-1].serialized_size() + 2 + len(key) + 4
                if candidate_size > page_size:
                    parents.append(InternalNode(children=[child]))
                else:
                    parents[-1].keys.append(key)
                    parents[-1].children.append(child)
            if len(parents) == 1:
                self._store(self.root_page, parents[0])
                self.height = height
                return
            parent_pages = [self._allocate(node) for node in parents]
            # the separator guiding into each parent is the smallest key
            # reachable in its subtree (its first child's first key)
            first_child_keys = []
            child_key_by_page = dict(zip(level_pages, level_keys))
            for node in parents:
                first_child_keys.append(child_key_by_page[node.children[0]])
            level_pages = parent_pages
            level_keys = first_child_keys
        raise IndexCorruptionError("bulk_load failed to converge to a root")

    def _bulk_chain_entry(self, key: bytes, oid_ints: List[int]) -> LeafEntry:
        """Split a long posting list into inline prefix + overflow chain."""
        budget = max(1, (self.inline_cap - (8 + len(key))) // 8)
        inline, tail = oid_ints[:budget], oid_ints[budget:]
        capacity = OverflowNode.capacity(self.file.page_size)
        head: "Optional[int]" = None
        for start in range(len(tail) - capacity, -capacity, -capacity):
            chunk = tail[max(start, 0) : start + capacity]
            head = self._allocate(OverflowNode(oids=chunk, next_page=head))
        return LeafEntry(key=key, oids=inline, overflow_page=head)

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, key: bytes, oid: OID) -> bool:
        """Add ``oid`` to the key's list; False if it was already there."""
        path, leaf = self._descend(key)
        entry = leaf.find(key)
        if entry is None:
            entry = LeafEntry(key=key, oids=[])
            leaf.entries.insert(leaf.insert_position(key), entry)
        oid_int = oid.to_int()
        if entry.overflow_page is not None and self._chain_contains(
            entry.overflow_page, oid_int
        ):
            return False
        if not entry.add_oid(oid_int):
            return False
        if self.overflow_chains:
            while entry.serialized_size() > self.inline_cap and entry.oids:
                # spill the largest OID; the inline prefix stays sorted
                self._chain_add(entry, entry.oids.pop())
        elif entry.serialized_size() > self.file.page_size - 16:
            raise AccessFacilityError(
                f"OID list for key {key!r} no longer fits one page "
                f"({len(entry.oids)} OIDs); the nested index stores a "
                "key's posting list within a single leaf (enable "
                "overflow_chains to lift this)"
            )
        self._store_or_split_leaf(path, leaf)
        return True

    def _store_or_split_leaf(self, path: List[int], leaf: LeafNode) -> None:
        leaf_page = path[-1]
        if leaf.serialized_size() <= self.file.page_size:
            self._store(leaf_page, leaf)
            return
        left, right, separator = self._split_leaf(leaf)
        right_page = self._allocate(right)
        left.next_leaf = right_page
        self._store(leaf_page, left)
        self._propagate_split(path[:-1], leaf_page, separator, right_page)

    def _split_leaf(self, leaf: LeafNode) -> Tuple[LeafNode, LeafNode, bytes]:
        total = sum(e.serialized_size() for e in leaf.entries)
        accumulated = 0
        split_at = len(leaf.entries) - 1
        for i, entry in enumerate(leaf.entries):
            accumulated += entry.serialized_size()
            if accumulated >= total // 2:
                split_at = i + 1
                break
        split_at = max(1, min(split_at, len(leaf.entries) - 1))
        left = LeafNode(entries=leaf.entries[:split_at], next_leaf=None)
        right = LeafNode(entries=leaf.entries[split_at:], next_leaf=leaf.next_leaf)
        return left, right, right.entries[0].key

    def _propagate_split(
        self,
        ancestors: List[int],
        left_page: int,
        separator: bytes,
        right_page: int,
    ) -> None:
        if not ancestors:
            # Root split: move the old root's content to a new page so the
            # root page number stays stable, then rebuild the root above.
            old_root = self._load(self.root_page)
            moved_page = self._allocate(old_root)
            self._fix_moved_root_links(left_page, moved_page)
            new_root = InternalNode(
                keys=[separator],
                children=[
                    moved_page if left_page == self.root_page else left_page,
                    right_page,
                ],
            )
            self._store(self.root_page, new_root)
            self.height += 1
            return
        parent_page = ancestors[-1]
        parent = self._load(parent_page)
        if not isinstance(parent, InternalNode):
            raise IndexCorruptionError("leaf found on the ancestor path")
        parent.insert_separator(separator, right_page)
        if parent.serialized_size() <= self.file.page_size:
            self._store(parent_page, parent)
            return
        mid = len(parent.keys) // 2
        up_key = parent.keys[mid]
        right_node = InternalNode(
            keys=parent.keys[mid + 1 :],
            children=parent.children[mid + 1 :],
        )
        left_node = InternalNode(
            keys=parent.keys[:mid],
            children=parent.children[: mid + 1],
        )
        new_right_page = self._allocate(right_node)
        self._store(parent_page, left_node)
        self._propagate_split(ancestors[:-1], parent_page, up_key, new_right_page)

    def _fix_moved_root_links(self, split_left_page: int, moved_page: int) -> None:
        """After relocating the root's old content to ``moved_page``,
        repair the next-leaf chain if the old root was a leaf being split."""
        if split_left_page != self.root_page:
            return
        # The moved node is the left half of the split; nothing else pointed
        # at the root as next_leaf (it was the only leaf), so no chain fix
        # is needed beyond what the caller set on the node itself.

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def delete(self, key: bytes, oid: OID) -> bool:
        """Remove ``oid`` from the key's list; drop the entry when empty."""
        path, leaf = self._descend(key)
        entry = leaf.find(key)
        if entry is None:
            return False
        oid_int = oid.to_int()
        removed = entry.remove_oid(oid_int)
        if not removed:
            removed = self._chain_remove(entry, oid_int)
            if not removed:
                return False
        if not entry.oids and entry.overflow_page is not None:
            # Refill the inline portion from the chain head so the entry
            # never looks empty while OIDs remain chained. The refill is
            # capped so the entry stays within the inline budget.
            budget = max(1, (self.inline_cap - (8 + len(entry.key))) // 8)
            head_page = entry.overflow_page
            head = self._load_overflow(head_page)
            pulled = sorted(head.oids)[:budget]
            head.oids = [v for v in head.oids if v not in set(pulled)]
            entry.oids = pulled
            if head.oids:
                self._store(head_page, head)
            else:
                entry.overflow_page = head.next_page
        if not entry.oids and entry.overflow_page is None:
            leaf.entries = [e for e in leaf.entries if e.key != key]
        self._store(path[-1], leaf)
        return True

    # ------------------------------------------------------------------
    # Scans & verification
    # ------------------------------------------------------------------
    def _leftmost_leaf(self) -> Tuple[int, LeafNode]:
        page_no = self.root_page
        node = self._load(page_no)
        while isinstance(node, InternalNode):
            page_no = node.children[0]
            node = self._load(page_no)
        return page_no, node

    def iterate_entries(self) -> Iterator[Tuple[bytes, List[OID]]]:
        """All entries in key order via the leaf chain."""
        _, leaf = self._leftmost_leaf()
        while True:
            for entry in leaf.entries:
                values = sorted(
                    entry.oids + self._chain_collect(entry.overflow_page)
                )
                yield entry.key, [OID.from_int(value) for value in values]
            if leaf.next_leaf is None:
                return
            node = self._load(leaf.next_leaf)
            if not isinstance(node, LeafNode):
                raise IndexCorruptionError("next_leaf points at an internal node")
            leaf = node

    def range_lookup(
        self, low: Optional[bytes], high: Optional[bytes]
    ) -> Iterator[Tuple[bytes, List[OID]]]:
        """Entries with ``low <= key < high`` (either bound optional)."""
        if low is None:
            _, leaf = self._leftmost_leaf()
        else:
            _, leaf = self._descend(low)
        while True:
            for entry in leaf.entries:
                if low is not None and entry.key < low:
                    continue
                if high is not None and entry.key >= high:
                    return
                values = sorted(
                    entry.oids + self._chain_collect(entry.overflow_page)
                )
                yield entry.key, [OID.from_int(value) for value in values]
            if leaf.next_leaf is None:
                return
            node = self._load(leaf.next_leaf)
            if not isinstance(node, LeafNode):
                raise IndexCorruptionError("next_leaf points at an internal node")
            leaf = node

    def key_count(self) -> int:
        return sum(1 for _ in self.iterate_entries())

    @property
    def num_pages(self) -> int:
        return self.file.num_pages

    def leaf_and_nonleaf_pages(self) -> Tuple[int, int]:
        """(leaf pages, internal pages) — the model's ``lp`` and ``nlp``."""
        census = self.page_census()
        return census["leaf"], census["nonleaf"]

    def page_census(self) -> dict:
        """Page counts by role: leaf / nonleaf / overflow."""
        leaves = 0
        internals = 0
        overflow = 0
        stack = [self.root_page]
        seen = set()
        while stack:
            page_no = stack.pop()
            if page_no in seen:
                raise IndexCorruptionError(f"page {page_no} reachable twice")
            seen.add(page_no)
            node = self._load(page_no)
            if isinstance(node, LeafNode):
                leaves += 1
                for entry in node.entries:
                    chain = entry.overflow_page
                    while chain is not None:
                        if chain in seen:
                            raise IndexCorruptionError(
                                f"overflow page {chain} reachable twice"
                            )
                        seen.add(chain)
                        overflow += 1
                        chain = self._load_overflow(chain).next_page
            else:
                internals += 1
                stack.extend(node.children)
        return {"leaf": leaves, "nonleaf": internals, "overflow": overflow}

    def verify(self) -> None:
        """Full structural check: ordering, separators, sizes, leaf chain,
        overflow-chain integrity (no duplicates across inline + chain)."""
        self._verify_subtree(self.root_page, low=None, high=None)
        self.page_census()  # raises on chain sharing/cycles
        previous: Optional[bytes] = None
        for key, oids in self.iterate_entries():
            if previous is not None and key <= previous:
                raise IndexCorruptionError("leaf chain out of order")
            if not oids:
                raise IndexCorruptionError(f"empty OID list for key {key!r}")
            if len(set(oids)) != len(oids):
                raise IndexCorruptionError(
                    f"duplicate OIDs across inline+overflow for key {key!r}"
                )
            if oids != sorted(oids):
                raise IndexCorruptionError(f"unsorted OID list for key {key!r}")
            previous = key

    def _verify_subtree(
        self, page_no: int, low: Optional[bytes], high: Optional[bytes]
    ) -> None:
        node = self._load(page_no)
        if node.serialized_size() > self.file.page_size:
            raise IndexCorruptionError(f"node on page {page_no} oversized")
        if isinstance(node, LeafNode):
            keys = node.keys()
            if keys != sorted(set(keys)):
                raise IndexCorruptionError(f"leaf {page_no} keys unsorted/dup")
            for key in keys:
                if low is not None and key < low:
                    raise IndexCorruptionError(f"leaf key below separator bound")
                if high is not None and key >= high:
                    raise IndexCorruptionError(f"leaf key above separator bound")
            return
        if node.keys != sorted(set(node.keys)):
            raise IndexCorruptionError(f"internal {page_no} keys unsorted/dup")
        bounds = [low] + list(node.keys) + [high]
        for child, (child_low, child_high) in zip(
            node.children, zip(bounds[:-1], bounds[1:])
        ):
            self._verify_subtree(child, child_low, child_high)
