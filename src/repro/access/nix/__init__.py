"""Nested index (NIX): paged B+-tree with key → OID-list leaf entries."""

from repro.access.nix.btree import BPlusTree
from repro.access.nix.keycodec import EMPTY_SET_KEY, EmptySetMarker, decode_key, encode_key
from repro.access.nix.nested_index import NestedIndex
from repro.access.nix.node import InternalNode, LeafEntry, LeafNode

__all__ = [
    "BPlusTree",
    "EMPTY_SET_KEY",
    "EmptySetMarker",
    "InternalNode",
    "LeafEntry",
    "LeafNode",
    "NestedIndex",
    "decode_key",
    "encode_key",
]
