"""Order-preserving key encoding for the nested index.

B+-tree nodes compare keys as raw byte strings, so element values are
encoded such that ``encode(a) < encode(b)`` (bytewise) iff ``a < b`` within
a type, and types are segregated by a leading tag byte. Supported element
types match the schema layer: None, bool, int, float, str, bytes, OID.

Encodings:

* int — tag 0x10, 8-byte big-endian offset binary (``value + 2^63``);
* float — tag 0x20, IEEE-754 big-endian with the standard sortable
  transform (flip all bits of negatives, flip sign bit of positives);
* str — tag 0x30, UTF-8 bytes (bytewise order = code-point order);
* bytes — tag 0x40, raw;
* OID — tag 0x50, 8-byte big-endian of the packed 64-bit id;
* bool — tag 0x08, one byte;
* None — tag 0x01, empty payload;
* the reserved EMPTY_SET key (tag 0x00) indexes objects whose set
  attribute is empty, so ``T ⊆ Q`` searches can include them (an empty set
  is a subset of every query set).
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import AccessFacilityError
from repro.objects.oid import OID

EMPTY_SET_KEY = b"\x00"

_TAG_NONE = 0x01
_TAG_BOOL = 0x08
_TAG_INT = 0x10
_TAG_FLOAT = 0x20
_TAG_STR = 0x30
_TAG_BYTES = 0x40
_TAG_OID = 0x50

_INT_OFFSET = 1 << 63


def encode_key(value: Any) -> bytes:
    """Order-preserving byte encoding of one element value."""
    if value is None:
        return bytes([_TAG_NONE])
    if isinstance(value, bool):
        return bytes([_TAG_BOOL, 1 if value else 0])
    if isinstance(value, OID):
        return bytes([_TAG_OID]) + struct.pack(">Q", value.to_int())
    if isinstance(value, int):
        if not -(2**63) <= value < 2**63:
            raise AccessFacilityError(f"int key out of 64-bit range: {value}")
        return bytes([_TAG_INT]) + struct.pack(">Q", value + _INT_OFFSET)
    if isinstance(value, float):
        raw = struct.unpack(">Q", struct.pack(">d", value))[0]
        if raw & (1 << 63):
            raw ^= 0xFFFFFFFFFFFFFFFF  # negative: flip everything
        else:
            raw ^= 1 << 63  # positive: flip sign bit
        return bytes([_TAG_FLOAT]) + struct.pack(">Q", raw)
    if isinstance(value, str):
        return bytes([_TAG_STR]) + value.encode("utf-8")
    if isinstance(value, bytes):
        return bytes([_TAG_BYTES]) + value
    raise AccessFacilityError(
        f"cannot index element of type {type(value).__name__}: {value!r}"
    )


def decode_key(data: bytes) -> Any:
    """Inverse of :func:`encode_key` (EMPTY_SET_KEY decodes to the marker)."""
    if not data:
        raise AccessFacilityError("empty key")
    if data == EMPTY_SET_KEY:
        return EmptySetMarker
    tag = data[0]
    payload = data[1:]
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_BOOL:
        return bool(payload[0])
    if tag == _TAG_OID:
        return OID.from_int(struct.unpack(">Q", payload)[0])
    if tag == _TAG_INT:
        return struct.unpack(">Q", payload)[0] - _INT_OFFSET
    if tag == _TAG_FLOAT:
        raw = struct.unpack(">Q", payload)[0]
        if raw & (1 << 63):
            raw ^= 1 << 63
        else:
            raw ^= 0xFFFFFFFFFFFFFFFF
        return struct.unpack(">d", struct.pack(">Q", raw))[0]
    if tag == _TAG_STR:
        return payload.decode("utf-8")
    if tag == _TAG_BYTES:
        return bytes(payload)
    raise AccessFacilityError(f"unknown key tag: 0x{tag:02x}")


class _EmptySetMarkerType:
    """Singleton sentinel returned when decoding :data:`EMPTY_SET_KEY`."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<empty-set key>"


EmptySetMarker = _EmptySetMarkerType()
