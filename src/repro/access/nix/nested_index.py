"""The Nested Index (NIX) facility — paper §4.3.

A B+-tree whose leaf entries map an element value to the OIDs of all
objects whose indexed set attribute contains it (e.g. key ``"Baseball"`` →
every Student with that hobby). Retrieval:

``T ⊇ Q``
    Look up every query element and intersect the OID lists — an **exact**
    answer, no drop resolution needed (``RC = rc·Dq + Ps·A``).

``T ⊆ Q``
    Look up every query element and union the OID lists: all objects whose
    set *intersects* the query. These are candidates — objects containing
    elements outside the query are eliminated in drop resolution (the
    Appendix B cost). Objects with an *empty* set attribute are indexed
    under a reserved key so subset queries include them (an empty set is a
    subset of everything).

Smart ``T ⊇ Q`` (§5.1.3): look up only ``use_elements`` of the query's
elements, intersect those lists, and let drop resolution finish the job —
the result is then no longer exact.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.access.base import SearchResult, SetAccessFacility, SetValue
from repro.access.nix.btree import BPlusTree
from repro.access.nix.keycodec import EMPTY_SET_KEY, encode_key
from repro.errors import AccessFacilityError
from repro.objects.oid import OID
from repro.obs.tracer import traced_search
from repro.storage.paged_file import StorageManager


class NestedIndex(SetAccessFacility):
    """NIX over the paged B+-tree."""

    name = "nix"

    def __init__(
        self,
        storage: StorageManager,
        file_prefix: str = "nix",
        overflow_chains: bool = False,
    ):
        self.tree = BPlusTree(
            storage.create_file(f"{file_prefix}:btree"),
            overflow_chains=overflow_chains,
        )

    @property
    def overflow_chains(self) -> bool:
        return self.tree.overflow_chains

    @classmethod
    def attach(
        cls,
        storage: StorageManager,
        file_prefix: str,
        overflow_chains: bool = False,
    ) -> "NestedIndex":
        """Bind to an existing NIX's B+-tree file (snapshot rehydration)."""
        facility = cls.__new__(cls)
        facility.tree = BPlusTree(
            storage.open_file(f"{file_prefix}:btree"),
            overflow_chains=overflow_chains,
        )
        return facility

    # ------------------------------------------------------------------
    # Maintenance — Dt tree operations per set value (UC = rc·Dt)
    # ------------------------------------------------------------------
    def bulk_load(self, pairs) -> int:
        """Build the index bottom-up from ``(set value, OID)`` pairs.

        Gathers the full posting map in memory, sorts it, and hands it to
        the B+-tree's bottom-up builder — one page write per node instead
        of ``rc`` page accesses per element. Only valid on an empty index.
        """
        postings = {}
        count = 0
        for elements, oid in pairs:
            oid_int = oid.to_int()
            count += 1
            if not elements:
                postings.setdefault(EMPTY_SET_KEY, set()).add(oid_int)
                continue
            for element in elements:
                postings.setdefault(encode_key(element), set()).add(oid_int)
        entries = [
            (key, sorted(oid_ints)) for key, oid_ints in sorted(postings.items())
        ]
        self.tree.bulk_load(entries)
        return count

    def insert(self, elements: SetValue, oid: OID) -> None:
        self.log_wal_maintenance("facility_insert", elements, oid)
        if not elements:
            self.tree.insert(EMPTY_SET_KEY, oid)
            return
        for element in elements:
            self.tree.insert(encode_key(element), oid)

    def delete(self, elements: SetValue, oid: OID) -> None:
        self.log_wal_maintenance("facility_delete", elements, oid)
        if not elements:
            removed = self.tree.delete(EMPTY_SET_KEY, oid)
            if not removed:
                raise AccessFacilityError(f"{oid} not indexed under empty set")
            return
        for element in elements:
            if not self.tree.delete(encode_key(element), oid):
                raise AccessFacilityError(
                    f"{oid} not indexed under element {element!r}"
                )

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    @traced_search("nix.search.superset")
    def search_superset(
        self, query: SetValue, use_elements: Optional[int] = None
    ) -> SearchResult:
        """Intersect per-element OID lists (exact unless partial)."""
        if not query:
            # Everything contains the empty set: candidates = every indexed
            # object. NIX cannot enumerate that cheaply; signal inexact full.
            oids = self._all_indexed()
            return SearchResult(sorted(oids), exact=True, facility=self.name,
                                detail={"mode": "superset", "lookups": 0})
        elements = sorted(query, key=repr)
        if use_elements is not None:
            if use_elements < 1:
                raise AccessFacilityError("use_elements must be >= 1")
            elements = elements[:use_elements]
        partial = len(elements) < len(query)
        result: Optional[Set[OID]] = None
        lookups = 0
        for element in elements:
            oids = set(self.tree.lookup(encode_key(element)))
            lookups += 1
            result = oids if result is None else (result & oids)
            if not result:
                break
        candidates = sorted(result or set())
        return SearchResult(
            candidates=candidates,
            exact=not partial,
            facility=self.name,
            detail={"mode": "superset", "lookups": lookups, "partial": partial},
        )

    @traced_search("nix.search.subset")
    def search_subset(self, query: SetValue) -> SearchResult:
        """Union per-element OID lists plus the empty-set bucket."""
        result: Set[OID] = set(self.tree.lookup(EMPTY_SET_KEY))
        lookups = 1
        for element in sorted(query, key=repr):
            result |= set(self.tree.lookup(encode_key(element)))
            lookups += 1
        return SearchResult(
            candidates=sorted(result),
            exact=False,
            facility=self.name,
            detail={"mode": "subset", "lookups": lookups},
        )

    @traced_search("nix.search.overlap")
    def search_overlap(self, query: SetValue) -> SearchResult:
        """``T ∩ Q ≠ ∅`` (§6 extension): the union of posting lists is
        exactly the overlapping objects — an exact answer for NIX."""
        result: Set[OID] = set()
        lookups = 0
        for element in sorted(query, key=repr):
            result |= set(self.tree.lookup(encode_key(element)))
            lookups += 1
        return SearchResult(
            candidates=sorted(result),
            exact=True,
            facility=self.name,
            detail={"mode": "overlap", "lookups": lookups},
        )

    def lookup_element(self, element) -> List[OID]:
        """Single-element lookup (the membership operator ∈)."""
        return self.tree.lookup(encode_key(element))

    def _all_indexed(self) -> Set[OID]:
        oids: Set[OID] = set()
        for _, entry_oids in self.tree.iterate_entries():
            oids.update(entry_oids)
        return oids

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def storage_pages(self) -> dict:
        census = self.tree.page_census()
        pages = {"leaf": census["leaf"], "nonleaf": census["nonleaf"]}
        if census["overflow"]:
            pages["overflow"] = census["overflow"]
        return pages

    @property
    def height(self) -> int:
        return self.tree.height

    def lookup_cost_pages(self) -> int:
        """The model's ``rc``: pages read per element lookup."""
        return self.tree.height + 1

    def verify(self) -> None:
        self.tree.verify()
