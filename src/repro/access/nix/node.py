"""B+-tree node representations and page serialization.

Three node kinds share one page format family:

Leaf page
    ``u8 kind=0 | u16 entry_count | u32 next_leaf(+1, 0 = none) |``
    per entry: ``u16 key_len | key | u16 oid_count |
    u32 overflow_page(+1, 0 = none) | oid_count × u64``.
    An entry is the paper's nested-index leaf record: a key value and the
    OID list of all objects whose indexed set attribute contains it. When
    overflow chains are enabled and a posting list outgrows its inline
    budget, the tail lives in a chain of overflow pages.

Internal page
    ``u8 kind=1 | u16 key_count | u32 child_0 |``
    per key: ``u16 key_len | key | u32 child``.
    ``key_i`` separates ``child_{i-1}`` (keys < key_i) from ``child_i``
    (keys >= key_i).

Overflow page
    ``u8 kind=2 | u32 next(+1, 0 = none) | u16 count | count × u64``.
    A bucket of posting-list OIDs continuing one leaf entry.

Nodes are deserialized into plain Python objects, mutated, sized, and
serialized back; callers split when :meth:`serialized_size` exceeds the
page.
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import IndexCorruptionError
from repro.storage.page import Page

LEAF_KIND = 0
INTERNAL_KIND = 1
OVERFLOW_KIND = 2

_LEAF_HEADER = 7  # kind(1) + count(2) + next(4)
_INTERNAL_HEADER = 7  # kind(1) + count(2) + child0(4)
_OVERFLOW_HEADER = 7  # kind(1) + next(4) + count(2)


@dataclass
class LeafEntry:
    """One nested-index entry: key bytes → sorted OID list.

    OIDs are held as packed 64-bit ints (``OID.to_int`` order equals OID
    order) so whole leaves (de)serialize with single ``struct`` calls; the
    tree converts to :class:`OID` only at its public boundary.
    """

    key: bytes
    oids: List[int] = field(default_factory=list)
    #: page number of the first overflow bucket, when the posting list
    #: continues beyond the inline OIDs (None = fully inline)
    overflow_page: "Optional[int]" = None

    def serialized_size(self) -> int:
        return 2 + len(self.key) + 2 + 4 + 8 * len(self.oids)

    def add_oid(self, oid_int: int) -> bool:
        """Insert keeping sort order; False if already present."""
        position = bisect.bisect_left(self.oids, oid_int)
        if position < len(self.oids) and self.oids[position] == oid_int:
            return False
        self.oids.insert(position, oid_int)
        return True

    def remove_oid(self, oid_int: int) -> bool:
        position = bisect.bisect_left(self.oids, oid_int)
        if position < len(self.oids) and self.oids[position] == oid_int:
            del self.oids[position]
            return True
        return False


@dataclass
class LeafNode:
    entries: List[LeafEntry] = field(default_factory=list)
    next_leaf: Optional[int] = None

    kind = LEAF_KIND

    def keys(self) -> List[bytes]:
        return [entry.key for entry in self.entries]

    def find(self, key: bytes) -> Optional[LeafEntry]:
        position = bisect.bisect_left(self.keys(), key)
        if position < len(self.entries) and self.entries[position].key == key:
            return self.entries[position]
        return None

    def insert_position(self, key: bytes) -> int:
        return bisect.bisect_left(self.keys(), key)

    def serialized_size(self) -> int:
        return _LEAF_HEADER + sum(e.serialized_size() for e in self.entries)

    def serialize_into(self, page: Page) -> None:
        size = self.serialized_size()
        if size > page.page_size:
            raise IndexCorruptionError(
                f"leaf of {size} bytes exceeds page ({page.page_size})"
            )
        page.zero()
        page.write_bytes(0, bytes([LEAF_KIND]))
        page.write_u16(1, len(self.entries))
        page.write_u32(3, 0 if self.next_leaf is None else self.next_leaf + 1)
        offset = _LEAF_HEADER
        for entry in self.entries:
            page.write_u16(offset, len(entry.key))
            offset += 2
            page.write_bytes(offset, entry.key)
            offset += len(entry.key)
            page.write_u16(offset, len(entry.oids))
            offset += 2
            page.write_u32(
                offset,
                0 if entry.overflow_page is None else entry.overflow_page + 1,
            )
            offset += 4
            if entry.oids:
                page.write_bytes(
                    offset, struct.pack(f"<{len(entry.oids)}Q", *entry.oids)
                )
                offset += 8 * len(entry.oids)

    @classmethod
    def deserialize(cls, page: Page) -> "LeafNode":
        if page.read_bytes(0, 1)[0] != LEAF_KIND:
            raise IndexCorruptionError("page is not a leaf node")
        count = page.read_u16(1)
        next_raw = page.read_u32(3)
        node = cls(next_leaf=None if next_raw == 0 else next_raw - 1)
        offset = _LEAF_HEADER
        for _ in range(count):
            key_len = page.read_u16(offset)
            offset += 2
            key = page.read_bytes(offset, key_len)
            offset += key_len
            oid_count = page.read_u16(offset)
            offset += 2
            overflow_raw = page.read_u32(offset)
            offset += 4
            if oid_count:
                oids = list(
                    struct.unpack_from(f"<{oid_count}Q", page.data, offset)
                )
                offset += 8 * oid_count
            else:
                oids = []
            node.entries.append(
                LeafEntry(
                    key=key,
                    oids=oids,
                    overflow_page=None if overflow_raw == 0 else overflow_raw - 1,
                )
            )
        return node


@dataclass
class InternalNode:
    keys: List[bytes] = field(default_factory=list)
    children: List[int] = field(default_factory=list)  # len(keys) + 1 pages

    kind = INTERNAL_KIND

    def child_for(self, key: bytes) -> int:
        """Child page to descend into for ``key``."""
        position = bisect.bisect_right(self.keys, key)
        return self.children[position]

    def child_slot_for(self, key: bytes) -> int:
        return bisect.bisect_right(self.keys, key)

    def insert_separator(self, key: bytes, right_child: int) -> None:
        """Install a separator produced by a child split."""
        position = bisect.bisect_left(self.keys, key)
        self.keys.insert(position, key)
        self.children.insert(position + 1, right_child)

    def serialized_size(self) -> int:
        return _INTERNAL_HEADER + sum(2 + len(k) + 4 for k in self.keys)

    def serialize_into(self, page: Page) -> None:
        if len(self.children) != len(self.keys) + 1:
            raise IndexCorruptionError(
                f"internal node has {len(self.keys)} keys but "
                f"{len(self.children)} children"
            )
        size = self.serialized_size()
        if size > page.page_size:
            raise IndexCorruptionError(
                f"internal node of {size} bytes exceeds page ({page.page_size})"
            )
        page.zero()
        page.write_bytes(0, bytes([INTERNAL_KIND]))
        page.write_u16(1, len(self.keys))
        page.write_u32(3, self.children[0])
        offset = _INTERNAL_HEADER
        for key, child in zip(self.keys, self.children[1:]):
            page.write_u16(offset, len(key))
            offset += 2
            page.write_bytes(offset, key)
            offset += len(key)
            page.write_u32(offset, child)
            offset += 4

    @classmethod
    def deserialize(cls, page: Page) -> "InternalNode":
        if page.read_bytes(0, 1)[0] != INTERNAL_KIND:
            raise IndexCorruptionError("page is not an internal node")
        count = page.read_u16(1)
        node = cls(children=[page.read_u32(3)])
        offset = _INTERNAL_HEADER
        for _ in range(count):
            key_len = page.read_u16(offset)
            offset += 2
            node.keys.append(page.read_bytes(offset, key_len))
            offset += key_len
            node.children.append(page.read_u32(offset))
            offset += 4
        return node


@dataclass
class OverflowNode:
    """One bucket of a posting-list overflow chain."""

    oids: List[int] = field(default_factory=list)
    next_page: Optional[int] = None

    kind = OVERFLOW_KIND

    @staticmethod
    def capacity(page_size: int) -> int:
        """OIDs one overflow page holds."""
        return (page_size - _OVERFLOW_HEADER) // 8

    def serialized_size(self) -> int:
        return _OVERFLOW_HEADER + 8 * len(self.oids)

    def serialize_into(self, page: Page) -> None:
        if self.serialized_size() > page.page_size:
            raise IndexCorruptionError(
                f"overflow bucket of {len(self.oids)} OIDs exceeds page"
            )
        page.zero()
        page.write_bytes(0, bytes([OVERFLOW_KIND]))
        page.write_u32(1, 0 if self.next_page is None else self.next_page + 1)
        page.write_u16(5, len(self.oids))
        if self.oids:
            page.write_bytes(
                _OVERFLOW_HEADER, struct.pack(f"<{len(self.oids)}Q", *self.oids)
            )

    @classmethod
    def deserialize(cls, page: Page) -> "OverflowNode":
        if page.read_bytes(0, 1)[0] != OVERFLOW_KIND:
            raise IndexCorruptionError("page is not an overflow bucket")
        next_raw = page.read_u32(1)
        count = page.read_u16(5)
        oids = (
            list(struct.unpack_from(f"<{count}Q", page.data, _OVERFLOW_HEADER))
            if count
            else []
        )
        return cls(oids=oids, next_page=None if next_raw == 0 else next_raw - 1)


def node_kind(page: Page) -> int:
    kind = page.read_bytes(0, 1)[0]
    if kind not in (LEAF_KIND, INTERNAL_KIND, OVERFLOW_KIND):
        raise IndexCorruptionError(f"unknown node kind byte: {kind}")
    return kind


def deserialize_node(page: Page):
    """Dispatch on the kind byte."""
    kind = node_kind(page)
    if kind == LEAF_KIND:
        return LeafNode.deserialize(page)
    if kind == OVERFLOW_KIND:
        return OverflowNode.deserialize(page)
    return InternalNode.deserialize(page)
