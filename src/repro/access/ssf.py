"""Sequential Signature File (SSF) — paper §4.1 and Fig. 3 (left).

The simplest signature organization: set signatures are stored sequentially
(bit-packed, ``floor(P·b/F)`` per page) in one signature file; entry ``k``'s
OID lives at index ``k`` of the companion OID file. Every search is a full
scan of the signature file, which is why SSF retrieval cost tracks its
storage cost — the dilemma §5.1.1 discusses.

Updates follow the paper: insertion appends to both files (``UC_I = 2``
page accesses in the model); deletion tombstones the OID file only
(``UC_D = SC_OID / 2``), leaving a stale signature that later searches
filter out via the tombstone.

Like BSSF, the SSF has two execution paths with bit-identical results and
logical page-access counts: the default kernel path decodes the whole
signature file into one packed ``(N, F/64)`` uint64 matrix — memoized in a
version-keyed :class:`~repro.storage.decode_cache.DecodeCache` with
read-through charging — and runs the drop tests as row-wise word kernels;
``use_kernels=False`` keeps the original page-at-a-time unpacked-matrix
scan as the executable reference.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.access.base import SearchResult, SetAccessFacility, SetValue
from repro.access.oid_file import OIDFile
from repro.access.sigpack import (
    read_signature_matrix,
    signature_to_bits,
    signatures_per_page,
    store_bit_array,
    write_signature_in_page,
)
from repro.core import kernels
from repro.core.signature import SignatureScheme
from repro.errors import AccessFacilityError
from repro.obs import tracer as trace
from repro.obs.tracer import traced_search
from repro.objects.oid import OID
from repro.storage.decode_cache import DecodeCache
from repro.storage.paged_file import StorageManager


class SequentialSignatureFile(SetAccessFacility):
    """SSF over the paged storage substrate."""

    name = "ssf"

    def __init__(
        self,
        storage: StorageManager,
        scheme: SignatureScheme,
        file_prefix: str = "ssf",
        use_kernels: bool = True,
    ):
        self.scheme = scheme
        self.signature_bits = scheme.signature_bits
        self.sigs_per_page = signatures_per_page(
            storage.page_size, self.signature_bits
        )
        self.use_kernels = use_kernels
        self.signature_file = storage.create_file(f"{file_prefix}:signatures")
        self.oid_file = OIDFile(
            storage.create_file(f"{file_prefix}:oids"), use_cache=use_kernels
        )
        self._decode_cache = DecodeCache(max_entries=1)

    @classmethod
    def attach(
        cls,
        storage: StorageManager,
        scheme: SignatureScheme,
        file_prefix: str,
        entry_count: int,
        use_kernels: bool = True,
    ) -> "SequentialSignatureFile":
        """Bind to an existing SSF's files (snapshot rehydration)."""
        facility = cls.__new__(cls)
        facility.scheme = scheme
        facility.signature_bits = scheme.signature_bits
        facility.sigs_per_page = signatures_per_page(
            storage.page_size, scheme.signature_bits
        )
        facility.use_kernels = use_kernels
        facility.signature_file = storage.open_file(f"{file_prefix}:signatures")
        facility.oid_file = OIDFile(
            storage.open_file(f"{file_prefix}:oids"),
            entry_count=entry_count,
            use_cache=use_kernels,
        )
        facility._decode_cache = DecodeCache(max_entries=1)
        facility.verify()
        return facility

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    @property
    def entry_count(self) -> int:
        return self.oid_file.entry_count

    def bulk_load(self, pairs) -> int:
        """Build the SSF from scratch, page-at-a-time.

        ``pairs`` is an iterable of ``(set value, OID)``. Each signature
        page and each OID page is written once, instead of once per entry.
        The kernel path builds every page image with one batched
        ``unpackbits``/``packbits`` pass over the stacked signature words;
        the naive path fills a per-page bit buffer entry by entry. Only
        valid on an empty facility; returns the entry count.
        """
        if self.entry_count:
            raise AccessFacilityError("bulk_load requires an empty SSF")
        if self.use_kernels:
            return self._bulk_load_packed(pairs)
        oids: List[OID] = []
        page_bits = np.zeros(self.signature_file.page_size * 8, dtype=np.uint8)
        slot = 0
        page_dirty = False
        for elements, oid in pairs:
            signature = self.scheme.set_signature(elements)
            start = slot * self.signature_bits
            page_bits[start : start + self.signature_bits] = signature_to_bits(
                signature
            )
            page_dirty = True
            oids.append(oid)
            slot += 1
            if slot == self.sigs_per_page:
                self._flush_bulk_page(page_bits)
                page_bits[:] = 0
                slot = 0
                page_dirty = False
        if page_dirty:
            self._flush_bulk_page(page_bits)
        self.oid_file.bulk_append(oids)
        self.verify()
        return len(oids)

    def _bulk_load_packed(self, pairs) -> int:
        """Vectorized bulk path: one bit-matrix pass, one write per page."""
        pairs = list(pairs)
        oids: List[OID] = [oid for _, oid in pairs]
        if not oids:
            return 0
        entries = len(oids)
        word_rows = self.scheme.set_signature_words_many(
            [elements for elements, _ in pairs]
        )
        bit_rows = kernels.unpack_rows(word_rows, self.signature_bits)
        pages_needed = -(-entries // self.sigs_per_page)
        page_bit_count = self.signature_file.page_size * 8
        slot_bits = self.sigs_per_page * self.signature_bits
        slots = np.zeros(
            (pages_needed * self.sigs_per_page, self.signature_bits),
            dtype=np.uint8,
        )
        slots[:entries] = bit_rows
        page_images = np.zeros((pages_needed, page_bit_count), dtype=np.uint8)
        page_images[:, :slot_bits] = slots.reshape(pages_needed, slot_bits)
        packed = np.packbits(page_images, axis=1, bitorder="little")
        for page_no in range(pages_needed):
            new_page_no, page = self.signature_file.append_page()
            assert new_page_no == page_no
            page.write_bytes(0, packed[page_no].tobytes())
            self.signature_file.write_page(page_no, page)
        self.oid_file.bulk_append(oids)
        self.verify()
        return entries

    def _flush_bulk_page(self, page_bits) -> None:
        page_no, page = self.signature_file.append_page()
        store_bit_array(page, page_bits)
        self.signature_file.write_page(page_no, page)

    def insert(self, elements: SetValue, oid: OID) -> None:
        """Append signature + OID entry (the model's 2 page accesses)."""
        self.log_wal_maintenance("facility_insert", elements, oid)
        signature = self.scheme.set_signature(elements)
        index = self.oid_file.append(oid)
        page_no = index // self.sigs_per_page
        slot = index % self.sigs_per_page
        if page_no >= self.signature_file.num_pages:
            page_no_new, page = self.signature_file.append_page()
            assert page_no_new == page_no
        else:
            page = self.signature_file.read_page(page_no)
        write_signature_in_page(page, slot, signature)
        self.signature_file.write_page(page_no, page)

    def delete(self, elements: SetValue, oid: OID) -> None:
        """Tombstone the OID entry; the signature stays (paper's model)."""
        self.log_wal_maintenance("facility_delete", elements, oid)
        self.oid_file.delete(oid)

    # ------------------------------------------------------------------
    # Packed scan substrate
    # ------------------------------------------------------------------
    def _signature_matrix(self) -> np.ndarray:
        """All stored signatures as an ``(entry_count, F/64)`` uint64 matrix.

        Decode-cache backed: page images are read through the
        accounting-free :meth:`PagedFile.peek_page`, and the full scan the
        paper bills every SSF search for is charged uniformly — hit or
        miss — through :meth:`PagedFile.charge_reads`, which replays per
        page exactly the counters and pool state a real fetch sequence
        would produce. The decoded matrix is memoized keyed on the file
        version.
        """
        matrix = self._decoded_matrix()
        self.signature_file.charge_reads(self.signature_file.num_pages)
        return matrix

    def _decoded_matrix(self) -> np.ndarray:
        """The decoded signature matrix, *without* charging the scan.

        Split from :meth:`_signature_matrix` so the batch path can decode
        once for many queries and charge each query's full scan separately
        (keeping per-query page accounting identical to sequential runs).
        """
        num_pages = self.signature_file.num_pages
        version = self.signature_file.version
        name = self.signature_file.name
        matrix = self._decode_cache.get(name, version)
        trace.annotate(decode="miss" if matrix is None else "hit")
        if matrix is None:
            nwords = kernels.words_for_bits(self.signature_bits)
            if self.entry_count == 0:
                matrix = np.zeros((0, nwords), dtype=np.uint64)
            else:
                row_chunks: List[np.ndarray] = []
                for page_no in range(num_pages):
                    page = self.signature_file.peek_page(page_no)
                    count = self._entries_on_page(page_no)
                    raw = np.frombuffer(bytes(page.data), dtype=np.uint8)
                    bits = np.unpackbits(
                        raw, bitorder="little", count=count * self.signature_bits
                    )
                    row_chunks.append(bits.reshape(count, self.signature_bits))
                matrix = kernels.pack_rows(np.vstack(row_chunks))
            self._decode_cache.put(name, version, matrix)
        return matrix

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    @traced_search("ssf.search.superset")
    def search_superset(
        self, query: SetValue, use_elements: Optional[int] = None
    ) -> SearchResult:
        """Full-scan drop test for ``T ⊇ Q``.

        ``use_elements`` activates the §5.1.3 smart trick (query signature
        from only that many elements); for SSF it does not save signature
        pages (the scan is full either way) but is supported for symmetry
        and for the ablation bench.
        """
        if not query:
            # Every target contains the empty set.
            return self._all_live("superset", drops=self.entry_count)
        signature = self._query_signature(query, use_elements)
        if self.use_kernels:
            matrix = self._signature_matrix()
            hits = kernels.rows_covering(matrix, signature.words)
            drop_indices = np.nonzero(hits)[0].tolist()
            return self._resolve(drop_indices, mode="superset")
        query_bits = signature_to_bits(signature)
        drop_indices: List[int] = []
        for page_no in range(self.signature_file.num_pages):
            count = self._entries_on_page(page_no)
            matrix = read_signature_matrix(
                self.signature_file.read_page(page_no), self.signature_bits, count
            )
            # target covers query  <=>  no position has query=1, target=0
            misses = np.any(query_bits & ~matrix.astype(bool), axis=1)
            for local in np.nonzero(~misses)[0]:
                drop_indices.append(page_no * self.sigs_per_page + int(local))
        return self._resolve(drop_indices, mode="superset")

    @traced_search("ssf.search.subset")
    def search_subset(
        self, query: SetValue, slices_to_examine: Optional[int] = None
    ) -> SearchResult:
        """Full-scan drop test for ``T ⊆ Q``.

        ``slices_to_examine`` restricts the check to that many of the query
        signature's zero positions (Appendix A form) — again only meaningful
        for cost in BSSF, supported here for strategy-parity experiments.

        An empty query short-circuits without scanning the signature file
        (parity with BSSF's fast path): only empty targets satisfy
        ``T ⊆ ∅``, so every live entry is returned as a candidate
        (``exact=False``) for drop resolution to settle.
        """
        if slices_to_examine is not None and slices_to_examine < 0:
            raise AccessFacilityError("slices_to_examine must be >= 0")
        if not query:
            return self._all_live(
                "subset", drops=self.entry_count, exact=False
            )
        signature = self.scheme.set_signature(query)
        if self.use_kernels:
            zero_mask_bits = 1 - kernels.unpack_rows(
                signature.words[np.newaxis, :], self.signature_bits
            )[0]
            zero_positions = np.nonzero(zero_mask_bits)[0]
            if slices_to_examine is not None:
                zero_positions = zero_positions[:slices_to_examine]
                zero_mask_bits = np.zeros(self.signature_bits, dtype=np.uint8)
                zero_mask_bits[zero_positions] = 1
            mask_words = kernels.pack_rows(zero_mask_bits[np.newaxis, :])[0]
            matrix = self._signature_matrix()
            hits = kernels.rows_disjoint_from(matrix, mask_words)
            drop_indices = np.nonzero(hits)[0].tolist()
            return self._resolve(drop_indices, mode="subset")
        query_bits = signature_to_bits(signature).astype(bool)
        zero_positions = np.nonzero(~query_bits)[0]
        if slices_to_examine is not None:
            zero_positions = zero_positions[:slices_to_examine]
        drop_indices: List[int] = []
        for page_no in range(self.signature_file.num_pages):
            count = self._entries_on_page(page_no)
            matrix = read_signature_matrix(
                self.signature_file.read_page(page_no), self.signature_bits, count
            )
            # target covered by query <=> target has 0 at every examined
            # zero position of the query signature
            if len(zero_positions):
                hits = ~np.any(matrix[:, zero_positions].astype(bool), axis=1)
            else:
                hits = np.ones(count, dtype=bool)
            for local in np.nonzero(hits)[0]:
                drop_indices.append(page_no * self.sigs_per_page + int(local))
        return self._resolve(drop_indices, mode="subset")

    @traced_search("ssf.search.overlap")
    def search_overlap(self, query: SetValue) -> SearchResult:
        """Full-scan drop test for ``T ∩ Q ≠ ∅`` (§6 extension).

        Two sets sharing an element share at least one signature bit, so
        any target signature intersecting the query signature is a
        candidate; empty-signature targets (empty sets) never overlap.
        """
        if not query:
            return SearchResult([], exact=True, facility=self.name,
                                detail={"mode": "overlap", "drops": 0,
                                        "live_drops": 0})
        if self.use_kernels:
            signature = self.scheme.set_signature(query)
            matrix = self._signature_matrix()
            hits = kernels.rows_intersecting(matrix, signature.words)
            drop_indices = np.nonzero(hits)[0].tolist()
            return self._resolve(drop_indices, mode="overlap")
        query_bits = signature_to_bits(self.scheme.set_signature(query))
        drop_indices: List[int] = []
        for page_no in range(self.signature_file.num_pages):
            count = self._entries_on_page(page_no)
            matrix = read_signature_matrix(
                self.signature_file.read_page(page_no), self.signature_bits, count
            )
            hits = np.any(matrix.astype(bool) & query_bits.astype(bool), axis=1)
            for local in np.nonzero(hits)[0]:
                drop_indices.append(page_no * self.sigs_per_page + int(local))
        return self._resolve(drop_indices, mode="overlap")

    # ------------------------------------------------------------------
    # Batched search
    # ------------------------------------------------------------------
    def prepare_batch(self, specs):
        """Stage many drop tests against one decoded signature matrix.

        The matrix is decoded (uncharged) once; each mode group is
        evaluated with a single batched kernel call. Completions charge
        the full signature scan and resolve OIDs per query, in call order,
        so per-query accounting is identical to the sequential searches.
        Empty-query fast paths defer to the sequential method (which does
        not scan, hence does not charge).
        """
        if not self.use_kernels or self.entry_count == 0:
            return super().prepare_batch(specs)
        completions = [None] * len(specs)
        matrix = self._decoded_matrix()
        groups = {"superset": [], "subset": [], "overlap": []}
        for i, spec in enumerate(specs):
            if not spec.query or spec.mode not in groups:
                completions[i] = lambda s=spec: self.search_spec(s)
                continue
            if spec.mode == "superset":
                words = self._query_signature(spec.query, spec.use_elements).words
            elif spec.mode == "subset":
                signature = self.scheme.set_signature(spec.query)
                zero_mask_bits = 1 - kernels.unpack_rows(
                    signature.words[np.newaxis, :], self.signature_bits
                )[0]
                if spec.slices_to_examine is not None:
                    zero_positions = np.nonzero(zero_mask_bits)[0]
                    zero_positions = zero_positions[: spec.slices_to_examine]
                    zero_mask_bits = np.zeros(self.signature_bits, dtype=np.uint8)
                    zero_mask_bits[zero_positions] = 1
                words = kernels.pack_rows(zero_mask_bits[np.newaxis, :])[0]
            else:
                words = self.scheme.set_signature(spec.query).words
            groups[spec.mode].append((i, words))
        kernel_for = {
            "superset": kernels.rows_covering_many,
            "subset": kernels.rows_disjoint_from_many,
            "overlap": kernels.rows_intersecting_many,
        }

        def completion(drop_indices, mode):
            def run():
                self.signature_file.charge_reads(self.signature_file.num_pages)
                return self._resolve(drop_indices, mode=mode)

            return run

        for mode, members in groups.items():
            if not members:
                continue
            query_matrix = np.stack([words for _, words in members])
            hit_rows = kernel_for[mode](matrix, query_matrix)
            for (i, _), hits in zip(members, hit_rows):
                drop_indices = np.nonzero(hits)[0].tolist()
                completions[i] = completion(drop_indices, mode)
        return completions

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _query_signature(self, query: SetValue, use_elements: Optional[int]):
        if use_elements is not None:
            if use_elements < 1:
                raise AccessFacilityError("use_elements must be >= 1")
            return self.scheme.partial_query_signature(
                sorted(query, key=repr), use_elements
            )
        return self.scheme.set_signature(query)

    def _entries_on_page(self, page_no: int) -> int:
        start = page_no * self.sigs_per_page
        return min(self.sigs_per_page, self.entry_count - start)

    def _resolve(self, drop_indices: List[int], mode: str) -> SearchResult:
        oids = self.oid_file.get_many(drop_indices)
        live = [oid for oid in oids if oid is not None]
        return SearchResult(
            candidates=live,
            exact=False,
            facility=self.name,
            detail={"mode": mode, "drops": len(drop_indices), "live_drops": len(live)},
        )

    def _all_live(self, mode: str, drops: int, exact: bool = True) -> SearchResult:
        live = [oid for _, oid in self.oid_file.scan_live()]
        return SearchResult(
            candidates=live,
            exact=exact,
            facility=self.name,
            detail={"mode": mode, "drops": drops, "live_drops": len(live)},
        )

    def storage_pages(self) -> dict:
        return {
            "signature": self.signature_file.num_pages,
            "oid": self.oid_file.num_pages,
        }

    def decode_cache_stats(self) -> dict:
        """Hit/miss counters of the signature-matrix decode cache."""
        return self._decode_cache.stats()

    def verify(self) -> None:
        """Structural check: signature file sized for the OID entry count."""
        expected = -(-self.entry_count // self.sigs_per_page) if self.entry_count else 0
        if self.signature_file.num_pages != expected:
            raise AccessFacilityError(
                f"SSF size mismatch: {self.signature_file.num_pages} signature "
                f"pages for {self.entry_count} entries (expected {expected})"
            )
