"""Sequential Signature File (SSF) — paper §4.1 and Fig. 3 (left).

The simplest signature organization: set signatures are stored sequentially
(bit-packed, ``floor(P·b/F)`` per page) in one signature file; entry ``k``'s
OID lives at index ``k`` of the companion OID file. Every search is a full
scan of the signature file, which is why SSF retrieval cost tracks its
storage cost — the dilemma §5.1.1 discusses.

Updates follow the paper: insertion appends to both files (``UC_I = 2``
page accesses in the model); deletion tombstones the OID file only
(``UC_D = SC_OID / 2``), leaving a stale signature that later searches
filter out via the tombstone.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.access.base import SearchResult, SetAccessFacility, SetValue
from repro.access.oid_file import OIDFile
from repro.access.sigpack import (
    read_signature_matrix,
    signature_to_bits,
    signatures_per_page,
    store_bit_array,
    write_signature_in_page,
)
from repro.core.signature import SignatureScheme
from repro.errors import AccessFacilityError
from repro.objects.oid import OID
from repro.storage.paged_file import StorageManager


class SequentialSignatureFile(SetAccessFacility):
    """SSF over the paged storage substrate."""

    name = "ssf"

    def __init__(
        self,
        storage: StorageManager,
        scheme: SignatureScheme,
        file_prefix: str = "ssf",
    ):
        self.scheme = scheme
        self.signature_bits = scheme.signature_bits
        self.sigs_per_page = signatures_per_page(
            storage.page_size, self.signature_bits
        )
        self.signature_file = storage.create_file(f"{file_prefix}:signatures")
        self.oid_file = OIDFile(storage.create_file(f"{file_prefix}:oids"))

    @classmethod
    def attach(
        cls,
        storage: StorageManager,
        scheme: SignatureScheme,
        file_prefix: str,
        entry_count: int,
    ) -> "SequentialSignatureFile":
        """Bind to an existing SSF's files (snapshot rehydration)."""
        facility = cls.__new__(cls)
        facility.scheme = scheme
        facility.signature_bits = scheme.signature_bits
        facility.sigs_per_page = signatures_per_page(
            storage.page_size, scheme.signature_bits
        )
        facility.signature_file = storage.open_file(f"{file_prefix}:signatures")
        facility.oid_file = OIDFile(
            storage.open_file(f"{file_prefix}:oids"), entry_count=entry_count
        )
        facility.verify()
        return facility

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    @property
    def entry_count(self) -> int:
        return self.oid_file.entry_count

    def bulk_load(self, pairs) -> int:
        """Build the SSF from scratch, page-at-a-time.

        ``pairs`` is an iterable of ``(set value, OID)``. Each signature
        page and each OID page is written once, instead of once per entry.
        Only valid on an empty facility; returns the entry count.
        """
        if self.entry_count:
            raise AccessFacilityError("bulk_load requires an empty SSF")
        oids: List[OID] = []
        page_bits = np.zeros(self.signature_file.page_size * 8, dtype=np.uint8)
        slot = 0
        page_dirty = False
        for elements, oid in pairs:
            signature = self.scheme.set_signature(elements)
            start = slot * self.signature_bits
            page_bits[start : start + self.signature_bits] = signature_to_bits(
                signature
            )
            page_dirty = True
            oids.append(oid)
            slot += 1
            if slot == self.sigs_per_page:
                self._flush_bulk_page(page_bits)
                page_bits[:] = 0
                slot = 0
                page_dirty = False
        if page_dirty:
            self._flush_bulk_page(page_bits)
        self.oid_file.bulk_append(oids)
        self.verify()
        return len(oids)

    def _flush_bulk_page(self, page_bits) -> None:
        page_no, page = self.signature_file.append_page()
        store_bit_array(page, page_bits)
        self.signature_file.write_page(page_no, page)

    def insert(self, elements: SetValue, oid: OID) -> None:
        """Append signature + OID entry (the model's 2 page accesses)."""
        signature = self.scheme.set_signature(elements)
        index = self.oid_file.append(oid)
        page_no = index // self.sigs_per_page
        slot = index % self.sigs_per_page
        if page_no >= self.signature_file.num_pages:
            page_no_new, page = self.signature_file.append_page()
            assert page_no_new == page_no
        else:
            page = self.signature_file.read_page(page_no)
        write_signature_in_page(page, slot, signature)
        self.signature_file.write_page(page_no, page)

    def delete(self, elements: SetValue, oid: OID) -> None:
        """Tombstone the OID entry; the signature stays (paper's model)."""
        self.oid_file.delete(oid)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search_superset(
        self, query: SetValue, use_elements: Optional[int] = None
    ) -> SearchResult:
        """Full-scan drop test for ``T ⊇ Q``.

        ``use_elements`` activates the §5.1.3 smart trick (query signature
        from only that many elements); for SSF it does not save signature
        pages (the scan is full either way) but is supported for symmetry
        and for the ablation bench.
        """
        if not query:
            # Every target contains the empty set.
            return self._all_live("superset", drops=self.entry_count)
        signature = self._query_signature(query, use_elements)
        query_bits = signature_to_bits(signature)
        drop_indices: List[int] = []
        for page_no in range(self.signature_file.num_pages):
            count = self._entries_on_page(page_no)
            matrix = read_signature_matrix(
                self.signature_file.read_page(page_no), self.signature_bits, count
            )
            # target covers query  <=>  no position has query=1, target=0
            misses = np.any(query_bits & ~matrix.astype(bool), axis=1)
            for local in np.nonzero(~misses)[0]:
                drop_indices.append(page_no * self.sigs_per_page + int(local))
        return self._resolve(drop_indices, mode="superset")

    def search_subset(
        self, query: SetValue, slices_to_examine: Optional[int] = None
    ) -> SearchResult:
        """Full-scan drop test for ``T ⊆ Q``.

        ``slices_to_examine`` restricts the check to that many of the query
        signature's zero positions (Appendix A form) — again only meaningful
        for cost in BSSF, supported here for strategy-parity experiments.
        """
        signature = self.scheme.set_signature(query)
        query_bits = signature_to_bits(signature).astype(bool)
        zero_positions = np.nonzero(~query_bits)[0]
        if slices_to_examine is not None:
            if slices_to_examine < 0:
                raise AccessFacilityError("slices_to_examine must be >= 0")
            zero_positions = zero_positions[:slices_to_examine]
        drop_indices: List[int] = []
        for page_no in range(self.signature_file.num_pages):
            count = self._entries_on_page(page_no)
            matrix = read_signature_matrix(
                self.signature_file.read_page(page_no), self.signature_bits, count
            )
            # target covered by query <=> target has 0 at every examined
            # zero position of the query signature
            if len(zero_positions):
                hits = ~np.any(matrix[:, zero_positions].astype(bool), axis=1)
            else:
                hits = np.ones(count, dtype=bool)
            for local in np.nonzero(hits)[0]:
                drop_indices.append(page_no * self.sigs_per_page + int(local))
        return self._resolve(drop_indices, mode="subset")

    def search_overlap(self, query: SetValue) -> SearchResult:
        """Full-scan drop test for ``T ∩ Q ≠ ∅`` (§6 extension).

        Two sets sharing an element share at least one signature bit, so
        any target signature intersecting the query signature is a
        candidate; empty-signature targets (empty sets) never overlap.
        """
        if not query:
            return SearchResult([], exact=True, facility=self.name,
                                detail={"mode": "overlap", "drops": 0,
                                        "live_drops": 0})
        query_bits = signature_to_bits(self.scheme.set_signature(query))
        drop_indices: List[int] = []
        for page_no in range(self.signature_file.num_pages):
            count = self._entries_on_page(page_no)
            matrix = read_signature_matrix(
                self.signature_file.read_page(page_no), self.signature_bits, count
            )
            hits = np.any(matrix.astype(bool) & query_bits.astype(bool), axis=1)
            for local in np.nonzero(hits)[0]:
                drop_indices.append(page_no * self.sigs_per_page + int(local))
        return self._resolve(drop_indices, mode="overlap")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _query_signature(self, query: SetValue, use_elements: Optional[int]):
        if use_elements is not None:
            if use_elements < 1:
                raise AccessFacilityError("use_elements must be >= 1")
            return self.scheme.partial_query_signature(
                sorted(query, key=repr), use_elements
            )
        return self.scheme.set_signature(query)

    def _entries_on_page(self, page_no: int) -> int:
        start = page_no * self.sigs_per_page
        return min(self.sigs_per_page, self.entry_count - start)

    def _resolve(self, drop_indices: List[int], mode: str) -> SearchResult:
        oids = self.oid_file.get_many(drop_indices)
        live = [oid for oid in oids if oid is not None]
        return SearchResult(
            candidates=live,
            exact=False,
            facility=self.name,
            detail={"mode": mode, "drops": len(drop_indices), "live_drops": len(live)},
        )

    def _all_live(self, mode: str, drops: int) -> SearchResult:
        live = [oid for _, oid in self.oid_file.scan_live()]
        return SearchResult(
            candidates=live,
            exact=True,
            facility=self.name,
            detail={"mode": mode, "drops": drops, "live_drops": len(live)},
        )

    def storage_pages(self) -> dict:
        return {
            "signature": self.signature_file.num_pages,
            "oid": self.oid_file.num_pages,
        }

    def verify(self) -> None:
        """Structural check: signature file sized for the OID entry count."""
        expected = -(-self.entry_count // self.sigs_per_page) if self.entry_count else 0
        if self.signature_file.num_pages != expected:
            raise AccessFacilityError(
                f"SSF size mismatch: {self.signature_file.num_pages} signature "
                f"pages for {self.entry_count} entries (expected {expected})"
            )
