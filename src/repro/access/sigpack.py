"""Bit-level packing of signatures into pages.

The cost model stores ``floor(P·b / F)`` signatures per page — signatures
are packed bit-contiguously within a page (never crossing a page boundary).
These helpers convert between :class:`BitVector` signatures, page images,
and numpy 0/1 bit arrays.

Bit order: position ``j`` of a page's bitstream lives in byte ``j // 8`` at
in-byte position ``j % 8``, LSB first — exactly numpy's
``bitorder="little"`` and exactly :meth:`BitVector.to_bytes`'s layout, so
conversions are pure ``packbits`` / ``unpackbits`` calls.
"""

from __future__ import annotations

import numpy as np

from repro.core.bits import BitVector
from repro.errors import ConfigurationError
from repro.storage.page import Page


def signatures_per_page(page_size: int, signature_bits: int) -> int:
    """``floor(P·b / F)`` — capacity of one signature page."""
    if signature_bits <= 0:
        raise ConfigurationError(f"F must be positive, got {signature_bits}")
    capacity = (page_size * 8) // signature_bits
    if capacity == 0:
        raise ConfigurationError(
            f"signature of {signature_bits} bits does not fit a "
            f"{page_size}-byte page"
        )
    return capacity


def signature_to_bits(signature: BitVector) -> np.ndarray:
    """Signature as a 0/1 uint8 array of length F."""
    raw = np.frombuffer(signature.to_bytes(), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[: signature.nbits]


def bits_to_signature(bits: np.ndarray) -> BitVector:
    """Inverse of :func:`signature_to_bits`."""
    nbits = len(bits)
    packed = np.packbits(bits.astype(np.uint8), bitorder="little")
    nwords = (nbits + 63) // 64
    padded = np.zeros(nwords * 8, dtype=np.uint8)
    padded[: len(packed)] = packed
    return BitVector.from_bytes(nbits, padded.tobytes())


def page_bit_array(page: Page) -> np.ndarray:
    """The page's full bitstream as a 0/1 uint8 array (P·b long)."""
    raw = np.frombuffer(bytes(page.data), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")


def store_bit_array(page: Page, bits: np.ndarray) -> None:
    """Write a full bitstream back into the page image."""
    expected = page.page_size * 8
    if len(bits) != expected:
        raise ConfigurationError(
            f"bit array of {len(bits)} bits does not match page of {expected}"
        )
    page.write_bytes(0, np.packbits(bits.astype(np.uint8), bitorder="little").tobytes())


def write_signature_in_page(page: Page, slot: int, signature: BitVector) -> None:
    """Install a signature at bit offset ``slot · F`` within the page."""
    capacity = signatures_per_page(page.page_size, signature.nbits)
    if not 0 <= slot < capacity:
        raise ConfigurationError(
            f"slot {slot} out of range for capacity {capacity}"
        )
    bits = page_bit_array(page)
    start = slot * signature.nbits
    bits[start : start + signature.nbits] = signature_to_bits(signature)
    store_bit_array(page, bits)


def read_signature_matrix(page: Page, signature_bits: int, count: int) -> np.ndarray:
    """The first ``count`` signatures of a page as a (count, F) 0/1 matrix."""
    capacity = signatures_per_page(page.page_size, signature_bits)
    if not 0 <= count <= capacity:
        raise ConfigurationError(f"count {count} exceeds page capacity {capacity}")
    bits = page_bit_array(page)
    used = bits[: count * signature_bits]
    return used.reshape(count, signature_bits)
