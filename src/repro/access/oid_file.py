"""The OID file shared by both signature-file organizations (Fig. 3).

Entry ``k`` of the OID file holds the OID of the object whose set signature
is entry ``k`` of the signature file; ``O_p = P / oid = 512`` entries fit a
page (Table 2). Deletion follows the paper's model: the entry is flagged
(tombstoned) in the OID file only — the stale signature remains and any drop
on it is filtered out when the tombstone is seen. Locating the entry to flag
requires a sequential scan, hence the paper's expected deletion cost of
``SC_OID / 2`` pages.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import AccessFacilityError
from repro.objects.oid import OID, OID_BYTES
from repro.storage.decode_cache import DecodeCache
from repro.storage.paged_file import PagedFile

# All-ones is not a constructible OID in practice (class id 0xFFFF is
# reserved by convention), so it serves as the tombstone pattern.
_TOMBSTONE = b"\xff" * OID_BYTES


class OIDFile:
    """Sequential OID file with delete flags.

    With ``use_cache=True`` the decoded entry table is memoized against the
    underlying file's version, so drop-index materialization skips per-entry
    byte decoding on repeat lookups. Logical and physical page accesses are
    charged identically either way (see :meth:`get_many`).
    """

    def __init__(
        self, paged_file: PagedFile, entry_count: int = 0, use_cache: bool = True
    ):
        self.file = paged_file
        self.entries_per_page = self.file.page_size // OID_BYTES
        if entry_count < 0:
            raise AccessFacilityError(
                f"entry_count must be >= 0, got {entry_count}"
            )
        max_entries = self.file.num_pages * self.entries_per_page
        if entry_count > max_entries:
            raise AccessFacilityError(
                f"entry_count {entry_count} exceeds file capacity {max_entries}"
            )
        self._count = entry_count
        self._decode_cache = DecodeCache(max_entries=1) if use_cache else None

    @property
    def entry_count(self) -> int:
        """Total entries ever appended, tombstones included."""
        return self._count

    @property
    def num_pages(self) -> int:
        return self.file.num_pages

    # ------------------------------------------------------------------
    # Entry operations
    # ------------------------------------------------------------------
    def bulk_append(self, oids: "Sequence[OID]") -> int:
        """Append many entries page-at-a-time (index bulk construction).

        Touches each OID page once instead of once per entry; returns the
        index of the first appended entry.
        """
        first_index = self._count
        position = 0
        while position < len(oids):
            index = self._count
            page_no, offset = self._locate(index)
            if page_no >= self.file.num_pages:
                page_no_new, page = self.file.append_page()
                assert page_no_new == page_no
            else:
                page = self.file.read_page(page_no)
            room = self.entries_per_page - (index % self.entries_per_page)
            batch = oids[position : position + room]
            payload = b"".join(oid.to_bytes() for oid in batch)
            page.write_bytes(offset, payload)
            self.file.write_page(page_no, page)
            self._count += len(batch)
            position += len(batch)
        return first_index

    def append(self, oid: OID) -> int:
        """Append an entry; returns its index. One page touched."""
        index = self._count
        page_no, offset = self._locate(index)
        if page_no >= self.file.num_pages:
            page_no_new, page = self.file.append_page()
            assert page_no_new == page_no
        else:
            page = self.file.read_page(page_no)
        page.write_bytes(offset, oid.to_bytes())
        self.file.write_page(page_no, page)
        self._count += 1
        return index

    def get(self, index: int) -> Optional[OID]:
        """Entry at ``index``; ``None`` if tombstoned. One page read."""
        self._check_index(index)
        page_no, offset = self._locate(index)
        raw = self.file.read_page(page_no).read_bytes(offset, OID_BYTES)
        if raw == _TOMBSTONE:
            return None
        return OID.from_bytes(raw)

    def get_many(self, indices: Sequence[int]) -> List[Optional[OID]]:
        """Fetch several entries, reading each touched page once.

        This is the executor's OID-list lookup step; its page cost is the
        number of *distinct* pages the indices fall on, matching the
        ``LC_OID`` term of the cost model. The cached path answers from the
        decoded entry table but charges exactly the same distinct pages, in
        the same ascending order, as the per-entry reference path below.
        """
        if self._decode_cache is not None:
            if not indices:
                return []
            unique = np.unique(np.asarray(indices, dtype=np.int64))
            if unique[0] < 0:
                self._check_index(int(unique[0]))
            elif unique[-1] >= self._count:
                self._check_index(int(unique[unique >= self._count][0]))
            entries = self._decoded_entries()
            for page_no in np.unique(unique // self.entries_per_page):
                self.file.charge_read(int(page_no))
            return [entries[index] for index in indices]
        by_page: Dict[int, List[int]] = {}
        for index in sorted(set(indices)):
            self._check_index(index)
            by_page.setdefault(index // self.entries_per_page, []).append(index)
        results: Dict[int, Optional[OID]] = {}
        for page_no in sorted(by_page):
            page = self.file.read_page(page_no)
            for index in by_page[page_no]:
                offset = (index % self.entries_per_page) * OID_BYTES
                raw = page.read_bytes(offset, OID_BYTES)
                results[index] = None if raw == _TOMBSTONE else OID.from_bytes(raw)
        return [results[index] for index in indices]

    def delete(self, oid: OID) -> int:
        """Tombstone the entry holding ``oid``; returns its index.

        Sequentially scans pages until the OID is found — expected cost
        ``SC_OID / 2`` page reads plus one write, the paper's ``UC_D``.
        """
        needle = oid.to_bytes()
        for page_no in range(self.file.num_pages):
            page = self.file.read_page(page_no)
            page_entries = self._entries_on_page(page_no)
            for slot in range(page_entries):
                offset = slot * OID_BYTES
                if page.read_bytes(offset, OID_BYTES) == needle:
                    page.write_bytes(offset, _TOMBSTONE)
                    self.file.write_page(page_no, page)
                    return page_no * self.entries_per_page + slot
        raise AccessFacilityError(f"OID {oid} not present in OID file")

    def is_live(self, index: int) -> bool:
        return self.get(index) is not None

    def scan_live(self) -> Iterable[tuple]:
        """(index, OID) for every live entry, page-sequentially."""
        for page_no in range(self.file.num_pages):
            page = self.file.read_page(page_no)
            for slot in range(self._entries_on_page(page_no)):
                raw = page.read_bytes(slot * OID_BYTES, OID_BYTES)
                if raw != _TOMBSTONE:
                    yield page_no * self.entries_per_page + slot, OID.from_bytes(raw)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _decoded_entries(self) -> List[Optional[OID]]:
        """Every entry decoded once, memoized against the file version.

        Decoding goes through :meth:`PagedFile.peek_page`, which performs
        no accounting; callers charge the pages their lookup logically
        touches themselves.
        """
        name = self.file.name
        version = self.file.version
        cached = self._decode_cache.get(name, version)
        if cached is None:
            cached = []
            for page_no in range(self.file.num_pages):
                data = bytes(self.file.peek_page(page_no).data)
                for slot in range(self._entries_on_page(page_no)):
                    raw = data[slot * OID_BYTES : (slot + 1) * OID_BYTES]
                    cached.append(
                        None if raw == _TOMBSTONE else OID.from_bytes(raw)
                    )
            self._decode_cache.put(name, version, cached)
        return cached

    def _locate(self, index: int) -> tuple:
        return index // self.entries_per_page, (index % self.entries_per_page) * OID_BYTES

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._count:
            raise AccessFacilityError(
                f"OID-file index {index} out of range [0, {self._count})"
            )

    def _entries_on_page(self, page_no: int) -> int:
        start = page_no * self.entries_per_page
        return min(self.entries_per_page, self._count - start)
