"""Bit-Sliced Signature File (BSSF) — paper §4.2 and Fig. 3 (right).

Signatures are stored column-wise: slice file ``i`` holds bit ``i`` of every
entry's signature, ``P·b = 32,768`` entries per slice page. Searching reads
only the slices the query needs — ``m_q`` slices (query-signature 1s) for
``T ⊇ Q``, ``F − m_q`` slices (query-signature 0s) for ``T ⊆ Q`` — which is
why BSSF beats SSF on retrieval and why its ``T ⊇ Q`` cost grows with the
query weight (the motivation for small ``m``, §5.1.2).

Smart strategies (§5.1.3, §5.2.2) are first-class:

* ``search_superset(query, use_elements=k)`` forms the query signature from
  only ``k`` elements, capping the slices read;
* ``search_subset(query, slices_to_examine=k)`` examines only ``k`` of the
  query's zero slices.

Insertion honestly touches one page in each slice whose bit is 1 (about
``m`` pages) plus the OID file; the paper's ``UC_I = F + 1`` is its declared
worst case — ``worst_case_insert=True`` reproduces it by touching every
slice. Slice files are fully materialized (``ceil(N / P·b)`` pages each) as
entries grow; that extension is bulk file formatting, charged to storage
(the model's SC) rather than to any single operation's I/O.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.access.base import SearchResult, SetAccessFacility, SetValue
from repro.access.oid_file import OIDFile
from repro.core.signature import SignatureScheme
from repro.errors import AccessFacilityError
from repro.objects.oid import OID
from repro.storage.paged_file import PagedFile, StorageManager


class BitSlicedSignatureFile(SetAccessFacility):
    """BSSF over the paged storage substrate."""

    name = "bssf"

    def __init__(
        self,
        storage: StorageManager,
        scheme: SignatureScheme,
        file_prefix: str = "bssf",
        worst_case_insert: bool = False,
    ):
        self.scheme = scheme
        self.signature_bits = scheme.signature_bits
        self.entries_per_slice_page = storage.page_size * 8
        self.worst_case_insert = worst_case_insert
        self._storage = storage
        self._slice_files: List[PagedFile] = [
            storage.create_file(f"{file_prefix}:slice:{i:04d}")
            for i in range(self.signature_bits)
        ]
        self.oid_file = OIDFile(storage.create_file(f"{file_prefix}:oids"))
        self._formatted_pages = 0

    @classmethod
    def attach(
        cls,
        storage: StorageManager,
        scheme: SignatureScheme,
        file_prefix: str,
        entry_count: int,
        worst_case_insert: bool = False,
    ) -> "BitSlicedSignatureFile":
        """Bind to an existing BSSF's files (snapshot rehydration)."""
        facility = cls.__new__(cls)
        facility.scheme = scheme
        facility.signature_bits = scheme.signature_bits
        facility.entries_per_slice_page = storage.page_size * 8
        facility.worst_case_insert = worst_case_insert
        facility._storage = storage
        facility._slice_files = [
            storage.open_file(f"{file_prefix}:slice:{i:04d}")
            for i in range(scheme.signature_bits)
        ]
        facility.oid_file = OIDFile(
            storage.open_file(f"{file_prefix}:oids"), entry_count=entry_count
        )
        facility._formatted_pages = facility.slice_pages
        facility.verify()
        return facility

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    @property
    def entry_count(self) -> int:
        return self.oid_file.entry_count

    @property
    def slice_pages(self) -> int:
        """Pages per slice file — the model's ``ceil(N / P·b)`` term."""
        if self.entry_count == 0:
            return 0
        return -(-self.entry_count // self.entries_per_slice_page)

    def _format_slices_to(self, pages_needed: int) -> None:
        """Extend every slice file to ``pages_needed`` pages.

        Uses raw store allocation (pages are born zeroed) so that bulk file
        formatting does not pollute per-operation logical I/O counts.
        """
        if pages_needed <= self._formatted_pages:
            return
        store = self._storage.store
        for slice_file in self._slice_files:
            while store.num_pages(slice_file.name) < pages_needed:
                store.allocate_page(slice_file.name)
        self._formatted_pages = pages_needed

    def bulk_load(self, pairs) -> int:
        """Build the BSSF from scratch, slice-column-at-a-time.

        Materializes the full (entries × F) bit matrix in memory, then
        writes each slice file's pages once. Only valid on an empty
        facility; returns the entry count.
        """
        if self.entry_count:
            raise AccessFacilityError("bulk_load requires an empty BSSF")
        oids: List[OID] = []
        rows: List[np.ndarray] = []
        for elements, oid in pairs:
            signature = self.scheme.set_signature(elements)
            row = np.zeros(self.signature_bits, dtype=np.uint8)
            row[signature.set_positions()] = 1
            rows.append(row)
            oids.append(oid)
        if not rows:
            return 0
        matrix = np.stack(rows)
        entries = len(oids)
        pages_needed = -(-entries // self.entries_per_slice_page)
        page_bytes = self._storage.page_size
        padded = np.zeros(pages_needed * self.entries_per_slice_page, dtype=np.uint8)
        for position in range(self.signature_bits):
            padded[:entries] = matrix[:, position]
            packed = np.packbits(padded, bitorder="little").tobytes()
            slice_file = self._slice_files[position]
            for page_no in range(pages_needed):
                new_page_no, page = slice_file.append_page()
                assert new_page_no == page_no
                page.write_bytes(
                    0, packed[page_no * page_bytes : (page_no + 1) * page_bytes]
                )
                slice_file.write_page(page_no, page)
        self._formatted_pages = pages_needed
        self.oid_file.bulk_append(oids)
        self.verify()
        return entries

    def insert(self, elements: SetValue, oid: OID) -> None:
        index = self.oid_file.append(oid)
        pages_needed = -(-(index + 1) // self.entries_per_slice_page)
        self._format_slices_to(pages_needed)
        page_no = index // self.entries_per_slice_page
        bit_in_page = index % self.entries_per_slice_page
        signature = self.scheme.set_signature(elements)
        one_positions = set(signature.set_positions())
        for position in range(self.signature_bits):
            is_one = position in one_positions
            if not is_one and not self.worst_case_insert:
                continue
            slice_file = self._slice_files[position]
            page = slice_file.read_page(page_no)
            if is_one:
                byte_offset = bit_in_page // 8
                page.data[byte_offset] |= 1 << (bit_in_page % 8)
            slice_file.write_page(page_no, page)

    def delete(self, elements: SetValue, oid: OID) -> None:
        """Tombstone the OID entry only — slice bits stay (paper's model)."""
        self.oid_file.delete(oid)

    # ------------------------------------------------------------------
    # Slice access
    # ------------------------------------------------------------------
    def read_slice(self, position: int) -> np.ndarray:
        """Bit column ``position`` over all entries, as a bool array.

        Costs ``slice_pages`` logical reads — one per page of the slice.
        """
        if not 0 <= position < self.signature_bits:
            raise AccessFacilityError(
                f"slice {position} out of range [0, {self.signature_bits})"
            )
        chunks = []
        slice_file = self._slice_files[position]
        for page_no in range(self.slice_pages):
            page = slice_file.read_page(page_no)
            raw = np.frombuffer(bytes(page.data), dtype=np.uint8)
            chunks.append(np.unpackbits(raw, bitorder="little"))
        if not chunks:
            return np.zeros(0, dtype=bool)
        return np.concatenate(chunks)[: self.entry_count].astype(bool)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search_superset(
        self, query: SetValue, use_elements: Optional[int] = None
    ) -> SearchResult:
        """``T ⊇ Q``: AND the slices of the query signature's 1 bits.

        With ``use_elements = k`` (smart §5.1.3), only the signature of ``k``
        arbitrary query elements is used, reading ~``k·m`` slices instead of
        ``m_q``; the weaker filter's extra drops are false drops by
        construction and die in drop resolution.
        """
        if not query:
            live = [oid for _, oid in self.oid_file.scan_live()]
            return SearchResult(live, exact=True, facility=self.name,
                                detail={"mode": "superset", "slices_read": 0,
                                        "drops": self.entry_count,
                                        "live_drops": len(live)})
        if use_elements is not None:
            if use_elements < 1:
                raise AccessFacilityError("use_elements must be >= 1")
            signature = self.scheme.partial_query_signature(
                sorted(query, key=repr), use_elements
            )
        else:
            signature = self.scheme.set_signature(query)
        positions = signature.set_positions()
        surviving = np.ones(self.entry_count, dtype=bool)
        slices_read = 0
        for position in positions:
            surviving &= self.read_slice(position)
            slices_read += 1
            if not surviving.any():
                # Remaining slices cannot resurrect entries; a real system
                # would stop here too. Counted slices stay honest.
                break
        drop_indices = np.nonzero(surviving)[0].tolist()
        return self._resolve(drop_indices, "superset", slices_read)

    def search_subset(
        self, query: SetValue, slices_to_examine: Optional[int] = None
    ) -> SearchResult:
        """``T ⊆ Q``: OR the slices of the query signature's 0 bits.

        Entries with a 1 in any examined zero slice contain an element
        outside the query set (modulo hashing) and are eliminated. With
        ``slices_to_examine = k`` (smart §5.2.2), only ``k`` arbitrary zero
        slices are read; Appendix A gives the resulting drop probability.
        """
        signature = self.scheme.set_signature(query)
        one_positions = set(signature.set_positions())
        zero_positions = [
            i for i in range(self.signature_bits) if i not in one_positions
        ]
        if slices_to_examine is not None:
            if slices_to_examine < 0:
                raise AccessFacilityError("slices_to_examine must be >= 0")
            zero_positions = zero_positions[:slices_to_examine]
        eliminated = np.zeros(self.entry_count, dtype=bool)
        slices_read = 0
        for position in zero_positions:
            eliminated |= self.read_slice(position)
            slices_read += 1
            if eliminated.all():
                break
        drop_indices = np.nonzero(~eliminated)[0].tolist()
        return self._resolve(drop_indices, "subset", slices_read)

    def search_overlap(self, query: SetValue) -> SearchResult:
        """``T ∩ Q ≠ ∅`` (§6 extension): OR the query signature's 1-slices.

        Any entry with a 1 in some query-signature position may share an
        element with the query; entries with none cannot.
        """
        if not query:
            return SearchResult([], exact=True, facility=self.name,
                                detail={"mode": "overlap", "slices_read": 0,
                                        "drops": 0, "live_drops": 0})
        signature = self.scheme.set_signature(query)
        overlapping = np.zeros(self.entry_count, dtype=bool)
        slices_read = 0
        for position in signature.set_positions():
            overlapping |= self.read_slice(position)
            slices_read += 1
            if overlapping.all():
                break
        drop_indices = np.nonzero(overlapping)[0].tolist()
        return self._resolve(drop_indices, "overlap", slices_read)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve(
        self, drop_indices: List[int], mode: str, slices_read: int
    ) -> SearchResult:
        oids = self.oid_file.get_many(drop_indices)
        live = [oid for oid in oids if oid is not None]
        return SearchResult(
            candidates=live,
            exact=False,
            facility=self.name,
            detail={
                "mode": mode,
                "slices_read": slices_read,
                "drops": len(drop_indices),
                "live_drops": len(live),
            },
        )

    def storage_pages(self) -> dict:
        return {
            "slices": sum(f.num_pages for f in self._slice_files),
            "oid": self.oid_file.num_pages,
        }

    def verify(self) -> None:
        """Every slice file must be exactly ``slice_pages`` long."""
        for i, slice_file in enumerate(self._slice_files):
            if slice_file.num_pages != self.slice_pages:
                raise AccessFacilityError(
                    f"slice {i} has {slice_file.num_pages} pages, "
                    f"expected {self.slice_pages}"
                )
