"""Bit-Sliced Signature File (BSSF) — paper §4.2 and Fig. 3 (right).

Signatures are stored column-wise: slice file ``i`` holds bit ``i`` of every
entry's signature, ``P·b = 32,768`` entries per slice page. Searching reads
only the slices the query needs — ``m_q`` slices (query-signature 1s) for
``T ⊇ Q``, ``F − m_q`` slices (query-signature 0s) for ``T ⊆ Q`` — which is
why BSSF beats SSF on retrieval and why its ``T ⊇ Q`` cost grows with the
query weight (the motivation for small ``m``, §5.1.2).

Smart strategies (§5.1.3, §5.2.2) are first-class:

* ``search_superset(query, use_elements=k)`` forms the query signature from
  only ``k`` elements, capping the slices read;
* ``search_subset(query, slices_to_examine=k)`` examines only ``k`` of the
  query's zero slices.

Insertion honestly touches one page in each slice whose bit is 1 (about
``m`` pages) plus the OID file; the paper's ``UC_I = F + 1`` is its declared
worst case — ``worst_case_insert=True`` reproduces it by touching every
slice. Slice files are fully materialized (``ceil(N / P·b)`` pages each) as
entries grow; that extension is bulk file formatting, charged to storage
(the model's SC) rather than to any single operation's I/O.

Two execution paths produce bit-identical results and bit-identical
*logical page-access counts* (the paper's metric):

``use_kernels=True`` (default)
    Slice columns stay packed in uint64 words end-to-end
    (:mod:`repro.core.kernels`). All ``F`` slices are decoded once into a
    stacked ``(F, W)`` word matrix memoized in a version-keyed
    :class:`~repro.storage.decode_cache.DecodeCache` (validated in O(1)
    through a :meth:`DiskStore.register_version_group` counter spanning
    every slice file). Decoding reads page images through the
    accounting-free :meth:`PagedFile.peek_page`; each search then charges
    exactly the slices it examines through the pool's read-through
    ``touch`` machinery, so every logical/physical counter and the buffer
    pool's LRU state match the naive per-slice reads bit for bit. The
    per-slice AND/OR loops collapse into chunked ``np.bitwise_*.reduce``
    sweeps; survivor extinction and coverage are monotone along the scan,
    so a binary search inside the stopping chunk replays the naive loop's
    early exit at exactly the same slice.

``use_kernels=False``
    The original per-entry ``unpackbits``-into-bools path, kept as the
    executable reference for parity tests and the wall-clock benchmark's
    before/after comparison.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.access.base import SearchResult, SetAccessFacility, SetValue
from repro.access.oid_file import OIDFile
from repro.core import kernels
from repro.core.signature import SignatureScheme
from repro.errors import AccessFacilityError
from repro.objects.oid import OID
from repro.obs import tracer as trace
from repro.obs.tracer import traced_search
from repro.storage.decode_cache import DecodeCache
from repro.storage.paged_file import PagedFile, StorageManager


class BitSlicedSignatureFile(SetAccessFacility):
    """BSSF over the paged storage substrate."""

    name = "bssf"

    def __init__(
        self,
        storage: StorageManager,
        scheme: SignatureScheme,
        file_prefix: str = "bssf",
        worst_case_insert: bool = False,
        use_kernels: bool = True,
    ):
        self.scheme = scheme
        self.signature_bits = scheme.signature_bits
        self.entries_per_slice_page = storage.page_size * 8
        self.worst_case_insert = worst_case_insert
        self.use_kernels = use_kernels
        self._storage = storage
        self._slice_files: List[PagedFile] = [
            storage.create_file(f"{file_prefix}:slice:{i:04d}")
            for i in range(self.signature_bits)
        ]
        self.oid_file = OIDFile(
            storage.create_file(f"{file_prefix}:oids"), use_cache=use_kernels
        )
        self._formatted_pages = 0
        self._group_name = f"{file_prefix}:slices"
        storage.store.register_version_group(
            self._group_name, [f.name for f in self._slice_files]
        )
        self._decode_cache = DecodeCache(max_entries=1)

    @classmethod
    def attach(
        cls,
        storage: StorageManager,
        scheme: SignatureScheme,
        file_prefix: str,
        entry_count: int,
        worst_case_insert: bool = False,
        use_kernels: bool = True,
    ) -> "BitSlicedSignatureFile":
        """Bind to an existing BSSF's files (snapshot rehydration)."""
        facility = cls.__new__(cls)
        facility.scheme = scheme
        facility.signature_bits = scheme.signature_bits
        facility.entries_per_slice_page = storage.page_size * 8
        facility.worst_case_insert = worst_case_insert
        facility.use_kernels = use_kernels
        facility._storage = storage
        facility._slice_files = [
            storage.open_file(f"{file_prefix}:slice:{i:04d}")
            for i in range(scheme.signature_bits)
        ]
        facility.oid_file = OIDFile(
            storage.open_file(f"{file_prefix}:oids"),
            entry_count=entry_count,
            use_cache=use_kernels,
        )
        facility._formatted_pages = facility.slice_pages
        facility._group_name = f"{file_prefix}:slices"
        storage.store.register_version_group(
            facility._group_name, [f.name for f in facility._slice_files]
        )
        facility._decode_cache = DecodeCache(max_entries=1)
        facility.verify()
        return facility

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    @property
    def entry_count(self) -> int:
        return self.oid_file.entry_count

    @property
    def slice_pages(self) -> int:
        """Pages per slice file — the model's ``ceil(N / P·b)`` term."""
        if self.entry_count == 0:
            return 0
        return -(-self.entry_count // self.entries_per_slice_page)

    def _format_slices_to(self, pages_needed: int) -> None:
        """Extend every slice file to ``pages_needed`` pages.

        Uses raw store allocation (pages are born zeroed) so that bulk file
        formatting does not pollute per-operation logical I/O counts.
        """
        if pages_needed <= self._formatted_pages:
            return
        store = self._storage.store
        for slice_file in self._slice_files:
            while store.num_pages(slice_file.name) < pages_needed:
                store.allocate_page(slice_file.name)
        self._formatted_pages = pages_needed

    def bulk_load(self, pairs) -> int:
        """Build the BSSF from scratch, slice-column-at-a-time.

        On the kernel path the full bit matrix is produced by one
        ``unpackbits`` over the stacked signature words and written out with
        a single transpose + ``packbits`` covering every slice; the naive
        path keeps the original per-entry row construction and per-slice
        packing. Both charge identical I/O: two logical writes (append +
        write-back) per slice page. Only valid on an empty facility;
        returns the entry count.
        """
        if self.entry_count:
            raise AccessFacilityError("bulk_load requires an empty BSSF")
        oids: List[OID] = []
        if self.use_kernels:
            pairs = list(pairs)
            oids = [oid for _, oid in pairs]
            if not oids:
                return 0
            word_rows = self.scheme.set_signature_words_many(
                [elements for elements, _ in pairs]
            )
            matrix = kernels.unpack_rows(word_rows, self.signature_bits)
        else:
            rows: List[np.ndarray] = []
            for elements, oid in pairs:
                signature = self.scheme.set_signature(elements)
                row = np.zeros(self.signature_bits, dtype=np.uint8)
                row[signature.set_positions()] = 1
                rows.append(row)
                oids.append(oid)
            if not rows:
                return 0
            matrix = np.stack(rows)
        entries = len(oids)
        pages_needed = -(-entries // self.entries_per_slice_page)
        page_bytes = self._storage.page_size
        if self.use_kernels:
            padded = np.zeros(
                (self.signature_bits, pages_needed * self.entries_per_slice_page),
                dtype=np.uint8,
            )
            padded[:, :entries] = matrix.T
            packed_slices = np.packbits(padded, axis=1, bitorder="little")
        else:
            packed_slices = None
        for position in range(self.signature_bits):
            if packed_slices is not None:
                packed = packed_slices[position].tobytes()
            else:
                column = np.zeros(
                    pages_needed * self.entries_per_slice_page, dtype=np.uint8
                )
                column[:entries] = matrix[:, position]
                packed = np.packbits(column, bitorder="little").tobytes()
            slice_file = self._slice_files[position]
            for page_no in range(pages_needed):
                new_page_no, page = slice_file.append_page()
                assert new_page_no == page_no
                page.write_bytes(
                    0, packed[page_no * page_bytes : (page_no + 1) * page_bytes]
                )
                slice_file.write_page(page_no, page)
        self._formatted_pages = pages_needed
        self.oid_file.bulk_append(oids)
        self.verify()
        return entries

    def insert(self, elements: SetValue, oid: OID) -> None:
        self.log_wal_maintenance("facility_insert", elements, oid)
        index = self.oid_file.append(oid)
        pages_needed = -(-(index + 1) // self.entries_per_slice_page)
        self._format_slices_to(pages_needed)
        page_no = index // self.entries_per_slice_page
        bit_in_page = index % self.entries_per_slice_page
        signature = self.scheme.set_signature(elements)
        one_positions = set(signature.set_positions())
        for position in range(self.signature_bits):
            is_one = position in one_positions
            if not is_one and not self.worst_case_insert:
                continue
            slice_file = self._slice_files[position]
            page = slice_file.read_page(page_no)
            if is_one:
                byte_offset = bit_in_page // 8
                page.data[byte_offset] |= 1 << (bit_in_page % 8)
            slice_file.write_page(page_no, page)

    def delete(self, elements: SetValue, oid: OID) -> None:
        """Tombstone the OID entry only — slice bits stay (paper's model)."""
        self.log_wal_maintenance("facility_delete", elements, oid)
        self.oid_file.delete(oid)

    # ------------------------------------------------------------------
    # Slice access
    # ------------------------------------------------------------------
    def _stacked_slices(self) -> np.ndarray:
        """All ``F`` slices as one ``(F, W)`` uint64 matrix, cache backed.

        Decoding reads page images through :meth:`PagedFile.peek_page`,
        which performs *no* accounting: the matrix is a pure decode of
        store content, and what a search logically reads is charged
        separately (and exactly) by :meth:`_charge_slices`. The cache key
        is the slice files' shared version-group counter, so any slice
        write invalidates in O(1). Bits at index ``>= entry_count`` are
        always zero (pages are born zeroed and only live entries set bits).
        """
        store = self._storage.store
        version = store.group_version(self._group_name)
        cached = self._decode_cache.get(self._group_name, version)
        trace.annotate(decode="miss" if cached is None else "hit")
        if cached is not None:
            return cached
        pages = self.slice_pages
        words_per_page = self._storage.page_size // 8
        matrix = np.zeros(
            (self.signature_bits, pages * words_per_page), dtype=np.uint64
        )
        for position, slice_file in enumerate(self._slice_files):
            row = matrix[position]
            for page_no in range(pages):
                row[page_no * words_per_page : (page_no + 1) * words_per_page] = (
                    np.frombuffer(slice_file.peek_page(page_no).data, dtype="<u8")
                )
        self._decode_cache.put(self._group_name, version, matrix)
        return matrix

    def _charge_slices(self, positions) -> None:
        """Charge ``slice_pages`` logical reads against each listed slice.

        Bulk read-through accounting: per-file logical and physical
        counters, pool hit/miss counts, and (in cached-pool mode) LRU
        order and residency end up exactly as per-page fetches in the
        same order would leave them.
        """
        pages = self.slice_pages
        if pages == 0 or len(positions) == 0:
            return
        names = [self._slice_files[p].name for p in positions]
        self._storage.stats.record_logical_read_many(names, pages)
        self._storage.pool.touch_files(names, pages)

    _SCAN_CHUNK = 128

    def _query_bits(self, signature) -> np.ndarray:
        """Query signature as a flat 0/1 uint8 array of length ``F``."""
        return kernels.unpack_rows(
            signature.words[np.newaxis, :], self.signature_bits
        )[0]

    def _or_scan(self, positions, charge: bool = True):
        """OR the listed slices in order; return ``(acc_words, slices_read)``.

        Chunked ``bitwise_or.reduce`` over rows gathered from the stacked
        matrix. Coverage is monotone under OR, so when a chunk's total
        first covers every live entry, a binary search over its prefixes
        finds the minimal covering prefix — exactly the slice where the
        naive per-slice loop's ``eliminated.all()`` break fires — and only
        slices up to that point are counted and charged.

        ``charge=False`` performs the identical scan without touching any
        counters; the batch path uses it and replays the charge later
        (``_charge_slices(positions[:slices_read])`` — the same files in
        the same order, so the accounting is bit-identical).
        """
        acc = np.zeros(self._slice_word_count, dtype=np.uint64)
        if len(positions) == 0:
            return acc, 0
        full = kernels.ones_mask(self.entry_count, self._slice_word_count)
        matrix = self._stacked_slices()
        read = 0
        for start in range(0, len(positions), self._SCAN_CHUNK):
            chunk = positions[start : start + self._SCAN_CHUNK]
            rows = matrix[chunk]
            total = np.bitwise_or.reduce(rows, axis=0) | acc
            if not kernels.covers_all(total, full):
                if charge:
                    self._charge_slices(chunk)
                acc = total
                read += len(chunk)
                continue
            lo, hi = 1, len(chunk)
            while lo < hi:
                mid = (lo + hi) // 2
                prefix = np.bitwise_or.reduce(rows[:mid], axis=0) | acc
                if kernels.covers_all(prefix, full):
                    hi = mid
                else:
                    lo = mid + 1
            acc = np.bitwise_or.reduce(rows[:lo], axis=0) | acc
            if charge:
                self._charge_slices(chunk[:lo])
            return acc, read + lo
        return acc, read

    def _and_scan(self, positions, charge: bool = True):
        """AND the listed slices in order; return ``(acc_words, slices_read)``.

        Mirror of :meth:`_or_scan` for the superset search: survivor
        extinction is monotone under AND, so the binary search finds the
        minimal prefix with no survivors — the naive loop's
        ``not surviving.any()`` break point — and charging stops there.
        """
        acc = kernels.ones_mask(self.entry_count, self._slice_word_count)
        if len(positions) == 0:
            return acc, 0
        matrix = self._stacked_slices()
        read = 0
        for start in range(0, len(positions), self._SCAN_CHUNK):
            chunk = positions[start : start + self._SCAN_CHUNK]
            rows = matrix[chunk]
            total = np.bitwise_and.reduce(rows, axis=0) & acc
            if kernels.any_bit(total):
                if charge:
                    self._charge_slices(chunk)
                acc = total
                read += len(chunk)
                continue
            lo, hi = 1, len(chunk)
            while lo < hi:
                mid = (lo + hi) // 2
                prefix = np.bitwise_and.reduce(rows[:mid], axis=0) & acc
                if kernels.any_bit(prefix):
                    lo = mid + 1
                else:
                    hi = mid
            acc = np.bitwise_and.reduce(rows[:lo], axis=0) & acc
            if charge:
                self._charge_slices(chunk[:lo])
            return acc, read + lo
        return acc, read

    def read_slice(self, position: int) -> np.ndarray:
        """Bit column ``position`` over all entries, as a bool array.

        Costs ``slice_pages`` logical reads — one per page of the slice.
        """
        if not 0 <= position < self.signature_bits:
            raise AccessFacilityError(
                f"slice {position} out of range [0, {self.signature_bits})"
            )
        if self.use_kernels:
            words = self._stacked_slices()[position]
            self._slice_files[position].charge_reads(self.slice_pages)
            if words.size == 0:
                return np.zeros(0, dtype=bool)
            bits = np.unpackbits(
                np.ascontiguousarray(words).view(np.uint8),
                bitorder="little",
                count=self.entry_count,
            )
            return bits.astype(bool)
        chunks = []
        slice_file = self._slice_files[position]
        for page_no in range(self.slice_pages):
            page = slice_file.read_page(page_no)
            raw = np.frombuffer(bytes(page.data), dtype=np.uint8)
            chunks.append(np.unpackbits(raw, bitorder="little"))
        if not chunks:
            return np.zeros(0, dtype=bool)
        return np.concatenate(chunks)[: self.entry_count].astype(bool)

    @property
    def _slice_word_count(self) -> int:
        return self.slice_pages * self._storage.page_size // 8

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    @traced_search("bssf.search.superset")
    def search_superset(
        self, query: SetValue, use_elements: Optional[int] = None
    ) -> SearchResult:
        """``T ⊇ Q``: AND the slices of the query signature's 1 bits.

        With ``use_elements = k`` (smart §5.1.3), only the signature of ``k``
        arbitrary query elements is used, reading ~``k·m`` slices instead of
        ``m_q``; the weaker filter's extra drops are false drops by
        construction and die in drop resolution.
        """
        if not query:
            live = [oid for _, oid in self.oid_file.scan_live()]
            return SearchResult(live, exact=True, facility=self.name,
                                detail={"mode": "superset", "slices_read": 0,
                                        "drops": self.entry_count,
                                        "live_drops": len(live)})
        if use_elements is not None:
            if use_elements < 1:
                raise AccessFacilityError("use_elements must be >= 1")
            signature = self.scheme.partial_query_signature(
                sorted(query, key=repr), use_elements
            )
        else:
            signature = self.scheme.set_signature(query)
        if self.use_kernels:
            positions = np.flatnonzero(self._query_bits(signature))
            surviving, slices_read = self._and_scan(positions)
            drop_indices = kernels.set_bit_indices(
                surviving, self.entry_count
            ).tolist()
        else:
            surviving = np.ones(self.entry_count, dtype=bool)
            slices_read = 0
            for position in signature.set_positions():
                surviving &= self.read_slice(position)
                slices_read += 1
                if not surviving.any():
                    # Remaining slices cannot resurrect entries; a real
                    # system would stop here too. Counted slices stay honest.
                    break
            drop_indices = np.nonzero(surviving)[0].tolist()
        return self._resolve(drop_indices, "superset", slices_read)

    @traced_search("bssf.search.subset")
    def search_subset(
        self, query: SetValue, slices_to_examine: Optional[int] = None
    ) -> SearchResult:
        """``T ⊆ Q``: OR the slices of the query signature's 0 bits.

        Entries with a 1 in any examined zero slice contain an element
        outside the query set (modulo hashing) and are eliminated. With
        ``slices_to_examine = k`` (smart §5.2.2), only ``k`` arbitrary zero
        slices are read; Appendix A gives the resulting drop probability.

        An empty query short-circuits without touching a single slice:
        ``T ⊆ ∅`` is satisfiable only by empty targets, so instead of OR-ing
        all ``F`` zero slices just to isolate the all-zero signatures, every
        live entry is returned as a candidate (``exact=False``) and drop
        resolution finds the empty sets — mirroring ``search_superset``'s
        empty-query fast path.
        """
        if slices_to_examine is not None and slices_to_examine < 0:
            raise AccessFacilityError("slices_to_examine must be >= 0")
        if not query:
            live = [oid for _, oid in self.oid_file.scan_live()]
            return SearchResult(live, exact=False, facility=self.name,
                                detail={"mode": "subset", "slices_read": 0,
                                        "drops": self.entry_count,
                                        "live_drops": len(live)})
        signature = self.scheme.set_signature(query)
        if self.use_kernels:
            zero_positions = np.flatnonzero(self._query_bits(signature) == 0)
            if slices_to_examine is not None:
                zero_positions = zero_positions[:slices_to_examine]
            eliminated, slices_read = self._or_scan(zero_positions)
            drop_indices = kernels.cleared_bit_indices(
                eliminated, self.entry_count
            ).tolist()
        else:
            one_positions = set(signature.set_positions())
            zero_positions = [
                i for i in range(self.signature_bits) if i not in one_positions
            ]
            if slices_to_examine is not None:
                zero_positions = zero_positions[:slices_to_examine]
            eliminated = np.zeros(self.entry_count, dtype=bool)
            slices_read = 0
            for position in zero_positions:
                eliminated |= self.read_slice(position)
                slices_read += 1
                if eliminated.all():
                    break
            drop_indices = np.nonzero(~eliminated)[0].tolist()
        return self._resolve(drop_indices, "subset", slices_read)

    @traced_search("bssf.search.overlap")
    def search_overlap(self, query: SetValue) -> SearchResult:
        """``T ∩ Q ≠ ∅`` (§6 extension): OR the query signature's 1-slices.

        Any entry with a 1 in some query-signature position may share an
        element with the query; entries with none cannot.
        """
        if not query:
            return SearchResult([], exact=True, facility=self.name,
                                detail={"mode": "overlap", "slices_read": 0,
                                        "drops": 0, "live_drops": 0})
        signature = self.scheme.set_signature(query)
        if self.use_kernels:
            overlapping, slices_read = self._or_scan(
                np.flatnonzero(self._query_bits(signature))
            )
            drop_indices = kernels.set_bit_indices(
                overlapping, self.entry_count
            ).tolist()
        else:
            overlapping = np.zeros(self.entry_count, dtype=bool)
            slices_read = 0
            for position in signature.set_positions():
                overlapping |= self.read_slice(position)
                slices_read += 1
                if overlapping.all():
                    break
            drop_indices = np.nonzero(overlapping)[0].tolist()
        return self._resolve(drop_indices, "overlap", slices_read)

    # ------------------------------------------------------------------
    # Batched search
    # ------------------------------------------------------------------
    def prepare_batch(self, specs):
        """Stage many slice scans against one stacked-slice decode.

        The ``(F, W)`` slice matrix is decoded (uncharged) once and every
        spec's scan runs against it with ``charge=False``; the returned
        completions replay each query's charge —
        ``_charge_slices(positions[:slices_read])``, the same files in the
        same order as the sequential scan — and resolve OIDs, in call
        order. Early-exit points (and hence ``slices_read``) are computed
        per query exactly as the sequential scans compute them.
        """
        if not self.use_kernels or self.entry_count == 0:
            return super().prepare_batch(specs)
        self._stacked_slices()  # one shared decode for the whole batch
        completions = [None] * len(specs)

        def completion(positions, slices_read, drop_indices, mode):
            def run():
                self._charge_slices(positions[:slices_read])
                return self._resolve(drop_indices, mode, slices_read)

            return run

        for i, spec in enumerate(specs):
            if not spec.query or spec.mode not in ("superset", "subset", "overlap"):
                completions[i] = lambda s=spec: self.search_spec(s)
                continue
            if spec.mode == "superset":
                if spec.use_elements is not None:
                    if spec.use_elements < 1:
                        raise AccessFacilityError("use_elements must be >= 1")
                    signature = self.scheme.partial_query_signature(
                        sorted(spec.query, key=repr), spec.use_elements
                    )
                else:
                    signature = self.scheme.set_signature(spec.query)
                positions = np.flatnonzero(self._query_bits(signature))
                surviving, slices_read = self._and_scan(positions, charge=False)
                drop_indices = kernels.set_bit_indices(
                    surviving, self.entry_count
                ).tolist()
            elif spec.mode == "subset":
                if spec.slices_to_examine is not None and spec.slices_to_examine < 0:
                    raise AccessFacilityError("slices_to_examine must be >= 0")
                signature = self.scheme.set_signature(spec.query)
                positions = np.flatnonzero(self._query_bits(signature) == 0)
                if spec.slices_to_examine is not None:
                    positions = positions[: spec.slices_to_examine]
                eliminated, slices_read = self._or_scan(positions, charge=False)
                drop_indices = kernels.cleared_bit_indices(
                    eliminated, self.entry_count
                ).tolist()
            else:
                signature = self.scheme.set_signature(spec.query)
                positions = np.flatnonzero(self._query_bits(signature))
                overlapping, slices_read = self._or_scan(positions, charge=False)
                drop_indices = kernels.set_bit_indices(
                    overlapping, self.entry_count
                ).tolist()
            completions[i] = completion(positions, slices_read, drop_indices, spec.mode)
        return completions

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve(
        self, drop_indices: List[int], mode: str, slices_read: int
    ) -> SearchResult:
        oids = self.oid_file.get_many(drop_indices)
        live = [oid for oid in oids if oid is not None]
        return SearchResult(
            candidates=live,
            exact=False,
            facility=self.name,
            detail={
                "mode": mode,
                "slices_read": slices_read,
                "drops": len(drop_indices),
                "live_drops": len(live),
            },
        )

    def storage_pages(self) -> dict:
        return {
            "slices": sum(f.num_pages for f in self._slice_files),
            "oid": self.oid_file.num_pages,
        }

    def decode_cache_stats(self) -> dict:
        """Hit/miss counters of the slice decode cache (diagnostics)."""
        return self._decode_cache.stats()

    def verify(self) -> None:
        """Every slice file must be exactly ``slice_pages`` long."""
        for i, slice_file in enumerate(self._slice_files):
            if slice_file.num_pages != self.slice_pages:
                raise AccessFacilityError(
                    f"slice {i} has {slice_file.num_pages} pages, "
                    f"expected {self.slice_pages}"
                )
