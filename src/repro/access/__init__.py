"""Set access facilities: SSF, BSSF and NIX, plus the shared OID file."""

from repro.access.base import SearchResult, SetAccessFacility
from repro.access.bssf import BitSlicedSignatureFile
from repro.access.nix import NestedIndex
from repro.access.oid_file import OIDFile
from repro.access.ssf import SequentialSignatureFile

__all__ = [
    "BitSlicedSignatureFile",
    "NestedIndex",
    "OIDFile",
    "SearchResult",
    "SequentialSignatureFile",
    "SetAccessFacility",
]
