"""Abstract interface of a set access facility.

A facility indexes one set-valued attribute path (e.g. ``Student.hobbies``)
and supports the two search shapes of the paper plus maintenance:

* ``search_superset(query)`` — candidates for ``target ⊇ query`` (Q1);
* ``search_subset(query)`` — candidates for ``target ⊆ query`` (Q2);
* ``insert`` / ``delete`` of one (set value, OID) pair.

Searches return *candidate* OIDs. Signature facilities may return false
drops; the query executor performs drop resolution against the object store.
NIX returns exact answers for ``T ⊇ Q`` and over-approximations for
``T ⊆ Q`` (the union of per-element OID lists — everything that intersects
the query set), matching the paper's §4.3 retrieval procedures.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, FrozenSet, Hashable, List, Optional

from repro.objects.oid import OID

SetValue = FrozenSet[Hashable]


@dataclass(frozen=True)
class BatchQuerySpec:
    """One query's search parameters inside a facility batch.

    Mirrors the keyword surface of ``search_superset`` / ``search_subset``
    / ``search_overlap``: ``mode`` selects the drop test, the optional
    fields carry the §5.1.3 smart-strategy knobs.
    """

    mode: str
    query: SetValue
    use_elements: Optional[int] = None
    slices_to_examine: Optional[int] = None


class SearchResult:
    """Candidates plus provenance for the executor and the experiments."""

    __slots__ = ("candidates", "exact", "facility", "detail")

    def __init__(
        self,
        candidates: List[OID],
        exact: bool,
        facility: str,
        detail: Optional[dict] = None,
    ):
        self.candidates = candidates
        self.exact = exact
        self.facility = facility
        self.detail = detail or {}

    def __len__(self) -> int:
        return len(self.candidates)

    def __repr__(self) -> str:
        kind = "exact" if self.exact else "candidate"
        return (
            f"SearchResult({len(self.candidates)} {kind} OIDs "
            f"from {self.facility})"
        )


class SetAccessFacility(abc.ABC):
    """Base class for SSF, BSSF and NIX."""

    #: short identifier used in plans, stats and reports
    name: str = "abstract"

    #: ``(wal, class_name, attribute)`` when bound to a write-ahead log;
    #: ``None`` otherwise (class attribute so facilities need no __init__
    #: cooperation).
    _wal_context = None

    def bind_wal(self, wal, class_name: str, attribute: str) -> None:
        """Attach a write-ahead log to this facility's maintenance path.

        Afterwards :meth:`log_wal_maintenance` records direct facility
        mutations. Database-level operations suppress these (their logical
        record already covers the maintenance), so facility records appear
        only for callers mutating a facility outside the database facade.
        """
        self._wal_context = (wal, class_name, attribute)

    def log_wal_maintenance(self, op: str, elements: SetValue, oid: OID) -> None:
        """Redo-log one facility mutation, if a WAL is bound and accepting.

        Facilities call this as the first statement of ``insert``/``delete``
        so the record is durable before any page is touched.
        """
        if self._wal_context is None:
            return
        wal, class_name, attribute = self._wal_context
        if not wal.accepts_facility_records:
            return
        wal.append(
            [op, class_name, attribute, self.name, oid.to_int(), elements]
        )

    @abc.abstractmethod
    def insert(self, elements: SetValue, oid: OID) -> None:
        """Index one object's set value."""

    @abc.abstractmethod
    def delete(self, elements: SetValue, oid: OID) -> None:
        """Remove one object's set value from the index."""

    @abc.abstractmethod
    def search_superset(self, query: SetValue) -> SearchResult:
        """Candidates for ``T ⊇ Q``."""

    @abc.abstractmethod
    def search_subset(self, query: SetValue) -> SearchResult:
        """Candidates for ``T ⊆ Q``."""

    def search_overlap(self, query: SetValue) -> SearchResult:
        """Candidates for ``T ∩ Q ≠ ∅`` (a §6 extension operator).

        Optional; facilities that support it override. The default raises.
        """
        raise NotImplementedError(f"{self.name} does not support overlap search")

    def search_spec(self, spec: BatchQuerySpec) -> SearchResult:
        """Run one :class:`BatchQuerySpec` through the sequential search."""
        if spec.mode == "superset":
            if spec.use_elements is not None:
                return self.search_superset(
                    spec.query, use_elements=spec.use_elements
                )
            return self.search_superset(spec.query)
        if spec.mode == "subset":
            if spec.slices_to_examine is not None:
                return self.search_subset(
                    spec.query, slices_to_examine=spec.slices_to_examine
                )
            return self.search_subset(spec.query)
        if spec.mode == "overlap":
            return self.search_overlap(spec.query)
        raise ValueError(f"unknown search mode: {spec.mode!r}")

    def prepare_batch(
        self, specs: List[BatchQuerySpec]
    ) -> List[Callable[[], SearchResult]]:
        """Stage a batch of searches; return one completion per spec.

        Phase 1 (this call) may do arbitrary *uncharged* shared work — e.g.
        decode the signature matrix once for the whole batch. Each returned
        completion, invoked later in query order, performs that query's
        page-access charging and candidate resolution, producing a
        :class:`SearchResult` identical to the sequential search's. The
        base implementation stages nothing: every completion just runs the
        sequential search, so any facility is batch-safe by default.
        """
        return [(lambda s=spec: self.search_spec(s)) for spec in specs]

    @abc.abstractmethod
    def storage_pages(self) -> dict:
        """Per-component page counts, e.g. ``{"signature": 493, "oid": 63}``."""

    def total_storage_pages(self) -> int:
        return sum(self.storage_pages().values())

    def verify(self) -> None:
        """Check internal invariants; raise IndexCorruptionError on failure.

        Default: no-op. Facilities override with real structural checks.
        """
