"""Command-line interface: regenerate any paper table or figure.

Usage::

    sigfile-repro list
    sigfile-repro run figure4 [figure5 ...]
    sigfile-repro run all
    sigfile-repro trace 'select Student where hobbies contains "Chess"'
    sigfile-repro serve --port 7731 --load campus.sigdb
    python -m repro run table6

Output is the plain-text rendering of the experiment (the same rows/series
the paper reports).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.registry import experiment_ids, run_experiment
from repro.experiments.result import render_result


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sigfile-repro",
        description=(
            "Reproduce 'Evaluation of Signature Files as Set Access "
            "Facilities in OODBs' (SIGMOD 1993)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list experiment ids")
    run = subparsers.add_parser("run", help="run experiments by id")
    run.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (or 'all' / 'analytical')",
    )
    run.add_argument(
        "--format",
        choices=("text", "csv"),
        default="text",
        help="output format (csv suits external plotting)",
    )
    report = subparsers.add_parser(
        "report", help="run every experiment and write a single report file"
    )
    report.add_argument(
        "--output", default="REPORT.md", help="report path (default REPORT.md)"
    )
    report.add_argument(
        "--analytical-only",
        action="store_true",
        help="skip the simulator-based experiments (faster)",
    )
    bench = subparsers.add_parser(
        "bench",
        help="wall-clock benchmarks (kernels, WAL, concurrent serving)",
        description=(
            "Run benchmarks/bench_wallclock.py from the repository "
            "checkout: packed-kernel speedups, tracer and WAL overhead, "
            "and the concurrent serving sweep (sequential vs a "
            "QueryService worker pool over a simulated-latency store)."
        ),
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=8,
        help="worker-pool width for the concurrent sweep (default 8)",
    )
    bench.add_argument(
        "--smoke", action="store_true", help="small fast configuration"
    )
    bench.add_argument(
        "--concurrent-only",
        action="store_true",
        help="run only the concurrent serving sweep",
    )
    bench.add_argument(
        "--json", action="store_true", help="dump the JSON report to stdout"
    )
    bench.add_argument(
        "--out", default=None, help="output JSON path (benchmark default)"
    )
    bench.add_argument(
        "--min-concurrent-speedup",
        type=float,
        default=None,
        help="fail unless the concurrent serving speedup reaches this",
    )
    bench.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="batch size for the batched execute_many sweep "
        "(default: the benchmark mode's configured size)",
    )
    bench.add_argument(
        "--process-workers",
        type=int,
        default=None,
        help="worker processes for the process-pool sweep (default 4)",
    )
    shell = subparsers.add_parser("shell", help="interactive database shell")
    shell.add_argument(
        "--load", metavar="SNAPSHOT", default=None,
        help="start from a saved database snapshot",
    )
    serve = subparsers.add_parser(
        "serve",
        help="serve a database over TCP (the repro.wire protocol)",
        description=(
            "Start a TcpQueryServer answering remote queries over the "
            "length-prefixed repro.wire protocol. Serves a snapshot "
            "(--load) or, by default, the bundled university sample "
            "database (the same one `trace` uses). Connect with "
            "repro.connect('sigfile://host:port') or the shell's "
            "\\connect."
        ),
    )
    serve.add_argument(
        "--load", metavar="SNAPSHOT", default=None,
        help="serve a saved database snapshot instead of the sample",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    serve.add_argument(
        "--port", type=int, default=None,
        help="bind port (default 7731; 0 picks a free port)",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="QueryService worker-pool width (default 4)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=None,
        help="admitted-but-waiting backlog (default 2x workers)",
    )
    serve.add_argument(
        "--auth", action="append", default=[], metavar="TOKEN[:TENANT]",
        help=(
            "require client tokens; repeatable. TOKEN alone maps to a "
            "tenant of the same name"
        ),
    )
    serve.add_argument(
        "--quota", action="append", default=[], metavar="TENANT=N",
        help="cap a tenant at N in-flight queries; repeatable",
    )
    serve.add_argument(
        "--read-timeout", type=float, default=30.0,
        help="per-connection idle read timeout in seconds (default 30)",
    )
    serve.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help=(
            "serve a WAL-mode primary out of DIR (recovers existing state "
            "or starts fresh); replicas can subscribe to it"
        ),
    )
    serve.add_argument(
        "--replica-of", default=None, metavar="URL",
        help=(
            "serve a read-only replica that tails the primary at URL "
            "(sigfile://host:port); requires --wal-dir for the replica's "
            "own log"
        ),
    )
    serve.add_argument(
        "--replica-name", default=None, metavar="NAME",
        help="name this replica reports to the primary (default: from DIR)",
    )
    serve.add_argument(
        "--token", default=None,
        help="auth token --replica-of presents to the primary",
    )
    serve.add_argument(
        "--shard-of", default=None, metavar="K/N",
        help=(
            "announce this server as shard K of an N-way hash "
            "partitioning (0-based); clients discover it via PONG"
        ),
    )
    route = subparsers.add_parser(
        "route",
        help="serve a scatter-gather router over a shard map",
        description=(
            "Start a TcpQueryServer whose backend is a ShardRouter: every "
            "query fans out to the shard servers, answers merge in OID "
            "order, and the partial-result policy decides what a lost "
            "shard does. SHARDS is ';'-separated, one segment per shard; "
            "a segment may be a comma-separated replicated fleet, e.g. "
            "'s0a:7731,s0b:7731;s1:7731'."
        ),
    )
    route.add_argument(
        "shards", metavar="SHARDS",
        help="shard map: ';' between shards, ',' between a shard's replicas",
    )
    route.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    route.add_argument(
        "--port", type=int, default=None,
        help="bind port (default 7731; 0 picks a free port)",
    )
    route.add_argument(
        "--partial-results", choices=("strict", "degraded"), default="strict",
        help=(
            "lost-shard policy: strict raises shard-unavailable, degraded "
            "returns partial answers flagged as such (default strict)"
        ),
    )
    route.add_argument(
        "--deadline-ms", type=float, default=None,
        help="default per-request deadline budget in milliseconds",
    )
    route.add_argument(
        "--hedge", default=None, metavar="SECONDS|p99",
        help=(
            "hedged reads: launch a backup sub-request after this many "
            "seconds, or adaptively at each shard's p99 latency"
        ),
    )
    route.add_argument(
        "--token", default=None,
        help="auth token presented to every shard server",
    )
    traced = subparsers.add_parser(
        "trace",
        help="run one query with tracing on and print the span tree",
        description=(
            "Execute a query with span tracing enabled and print an "
            "EXPLAIN ANALYZE-style report attributing every page access. "
            "Runs against a snapshot (--load) or, by default, the bundled "
            "university sample database."
        ),
    )
    traced.add_argument("query", help="query text (the SQL-like language)")
    traced.add_argument(
        "--load", metavar="SNAPSHOT", default=None,
        help="run against a saved database snapshot instead of the sample",
    )
    traced.add_argument(
        "--json",
        action="store_true",
        help="emit the span tree and metrics snapshot as JSON",
    )
    fsck = subparsers.add_parser(
        "fsck",
        help="check a snapshot for corruption; optionally repair it",
        description=(
            "Load a snapshot (without failing on checksum mismatches), "
            "sweep every page against its recorded CRC32, structurally "
            "verify every access facility, and report. With --repair, "
            "rebuild facilities implicated by the issues from the object "
            "file and re-save the snapshot atomically. Exit status: 0 "
            "clean, 1 issues found (0 after a successful repair)."
        ),
    )
    fsck.add_argument(
        "snapshot", nargs="?", default=None, help="snapshot file to check"
    )
    fsck.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help=(
            "check a WAL-mode database directory instead of a snapshot "
            "(recovers checkpoint + log tail, then checks; --repair "
            "checkpoints after rebuilding)"
        ),
    )
    fsck.add_argument(
        "--deep",
        action="store_true",
        help="also cross-validate facilities against the object store",
    )
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="rebuild implicated facilities and re-save the snapshot",
    )
    wal = subparsers.add_parser(
        "wal",
        help="inspect or repair a write-ahead log",
        description=(
            "Operate on a WAL directory's log file without opening the "
            "database. 'inspect' lists records and tail health; 'truncate' "
            "cuts the log at a record boundary — the repair for interior "
            "corruption (work at and past the cut is lost)."
        ),
    )
    wal_sub = wal.add_subparsers(dest="wal_command", required=True)
    wal_inspect = wal_sub.add_parser("inspect", help="list log records and health")
    wal_inspect.add_argument("wal_dir", help="WAL directory (holds wal.log)")
    wal_inspect.add_argument(
        "--json", action="store_true", help="emit records as JSON"
    )
    wal_truncate = wal_sub.add_parser(
        "truncate", help="drop every record at or past an LSN"
    )
    wal_truncate.add_argument("wal_dir", help="WAL directory (holds wal.log)")
    wal_truncate.add_argument(
        "--lsn", type=int, required=True,
        help="record boundary to cut at (from 'wal inspect' or fsck)",
    )
    return parser


def _expand(requested: List[str]) -> List[str]:
    if requested == ["all"]:
        return experiment_ids()
    if requested == ["analytical"]:
        return [eid for eid in experiment_ids() if not eid.startswith("empirical")]
    return requested


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    if args.command == "shell":
        from repro.persistence.snapshot import load_database
        from repro.shell.repl import interactive_loop

        database = load_database(args.load) if args.load else None
        return interactive_loop(database)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "route":
        return _run_route(args)
    if args.command == "trace":
        return _run_trace(args.query, snapshot=args.load, as_json=args.json)
    if args.command == "fsck":
        return _run_fsck(
            args.snapshot,
            deep=args.deep,
            repair=args.repair,
            wal_dir=args.wal_dir,
        )
    if args.command == "wal":
        if args.wal_command == "inspect":
            return _run_wal_inspect(args.wal_dir, as_json=args.json)
        return _run_wal_truncate(args.wal_dir, lsn=args.lsn)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "report":
        return _write_report(args.output, analytical_only=args.analytical_only)
    failures = 0
    for experiment_id in _expand(args.experiments):
        try:
            result = run_experiment(experiment_id)
        except Exception as exc:  # surface per-experiment failures, keep going
            print(f"!! {experiment_id} failed: {exc}", file=sys.stderr)
            failures += 1
            continue
        print(render_result(result, fmt=args.format))
        print()
    return 1 if failures else 0


def _run_bench(args) -> int:
    """Delegate to ``benchmarks/bench_wallclock.py`` from the checkout.

    The benchmark harness lives outside the installed package (it is a
    repository tool, not library code), so locate it relative to this
    module and load it by path.
    """
    import importlib.util
    from pathlib import Path

    script = (
        Path(__file__).resolve().parents[2] / "benchmarks" / "bench_wallclock.py"
    )
    if not script.is_file():
        print(
            "bench: benchmarks/bench_wallclock.py not found "
            f"(looked at {script}); run from a repository checkout",
            file=sys.stderr,
        )
        return 2
    spec = importlib.util.spec_from_file_location("bench_wallclock", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    forwarded: List[str] = ["--workers", str(args.workers)]
    if args.smoke:
        forwarded.append("--smoke")
    if args.concurrent_only:
        forwarded.append("--concurrent-only")
    if args.json:
        forwarded.append("--json")
    if args.out:
        forwarded.extend(["--out", args.out])
    if args.min_concurrent_speedup is not None:
        forwarded.extend(
            ["--min-concurrent-speedup", str(args.min_concurrent_speedup)]
        )
    if args.batch_size is not None:
        forwarded.extend(["--batch-size", str(args.batch_size)])
    if args.process_workers is not None:
        forwarded.extend(["--process-workers", str(args.process_workers)])
    return module.main(forwarded)


def _sample_database():
    """The bundled university sample, indexed the way ``trace`` indexes it."""
    from repro.workloads.university import build_university

    uni = build_university()
    database = uni.database
    database.create_bssf_index(
        "Student", "hobbies", signature_bits=128, bits_per_element=2
    )
    database.create_nested_index("Student", "courses")
    return database


def _run_serve(args) -> int:
    """Serve a database over TCP until interrupted."""
    from repro.errors import ReproError
    from repro.server.net import TcpQueryServer
    from repro.wire import DEFAULT_PORT

    replica = None
    modes = sum(
        1 for flag in (args.load, args.wal_dir and not args.replica_of, args.replica_of)
        if flag
    )
    if modes > 1:
        print(
            "serve: --load, --wal-dir, and --replica-of are exclusive "
            "(--replica-of also needs --wal-dir)",
            file=sys.stderr,
        )
        return 2
    if args.replica_of:
        if not args.wal_dir:
            print("serve: --replica-of needs --wal-dir", file=sys.stderr)
            return 2
        from repro.replication import ReplicaDatabase

        try:
            replica = ReplicaDatabase(
                args.replica_of,
                args.wal_dir,
                name=args.replica_name,
                token=args.token,
            )
        except ReproError as exc:
            print(f"serve: cannot start replica: {exc}", file=sys.stderr)
            return 1
        database = replica.database
        source = f"replica of {args.replica_of} (wal in {args.wal_dir})"
    elif args.wal_dir:
        from repro.objects.database import Database

        try:
            database = Database.open(args.wal_dir)
        except ReproError as exc:
            print(f"serve: cannot recover {args.wal_dir!r}: {exc}", file=sys.stderr)
            return 1
        source = f"wal-mode primary in {args.wal_dir}"
    elif args.load:
        from repro.persistence.snapshot import load_database

        database = load_database(args.load)
        source = args.load
    else:
        database = _sample_database()
        source = "university sample"
    auth_tokens = {}
    for spec in args.auth:
        token, _, tenant = spec.partition(":")
        if not token:
            print(f"serve: bad --auth {spec!r}", file=sys.stderr)
            return 2
        auth_tokens[token] = tenant or token
    tenant_quotas = {}
    for spec in args.quota:
        tenant, sep, limit = spec.partition("=")
        if not sep or not tenant or not limit.lstrip("-").isdigit():
            print(f"serve: bad --quota {spec!r} (want TENANT=N)", file=sys.stderr)
            return 2
        tenant_quotas[tenant] = int(limit)
    shard_info = None
    if args.shard_of:
        index_text, sep, count_text = args.shard_of.partition("/")
        if (
            not sep
            or not index_text.isdigit()
            or not count_text.isdigit()
            or int(count_text) < 1
            or not int(index_text) < int(count_text)
        ):
            print(
                f"serve: bad --shard-of {args.shard_of!r} "
                "(want K/N with 0 <= K < N)",
                file=sys.stderr,
            )
            return 2
        shard_info = {"index": int(index_text), "count": int(count_text)}
    try:
        server = TcpQueryServer(
            database,
            host=args.host,
            port=args.port if args.port is not None else DEFAULT_PORT,
            max_workers=args.workers,
            queue_depth=args.queue_depth,
            auth_tokens=auth_tokens or None,
            tenant_quotas=tenant_quotas or None,
            read_timeout_seconds=args.read_timeout,
            shard_info=shard_info,
        )
        server.start()
    except (OSError, ReproError) as exc:
        print(f"serve: cannot start: {exc}", file=sys.stderr)
        return 1
    guarded = " (token auth on)" if auth_tokens else ""
    if shard_info is not None:
        source = (
            f"{source} as shard {shard_info['index']}/{shard_info['count']}"
        )
    print(f"serving {source} at {server.url}{guarded} — Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nserve: draining ...", file=sys.stderr)
    finally:
        server.stop(drain=True)
        if replica is not None:
            replica.close()
    return 0


def _run_route(args) -> int:
    """Serve a scatter-gather shard router over TCP until interrupted."""
    from repro.errors import ReproError
    from repro.server.net import TcpQueryServer
    from repro.serving import connect
    from repro.wire import DEFAULT_PORT

    hedge = args.hedge
    if hedge is not None and hedge != "p99":
        try:
            hedge = float(hedge)
        except ValueError:
            print(
                f"route: bad --hedge {args.hedge!r} (want seconds or 'p99')",
                file=sys.stderr,
            )
            return 2
    client_kwargs = {}
    if args.token:
        client_kwargs["token"] = args.token
    try:
        router = connect(
            args.shards,
            partial_results=args.partial_results,
            deadline_ms=args.deadline_ms,
            hedge_delay_seconds=hedge,
            **client_kwargs,
        )
    except (OSError, ReproError, ValueError) as exc:
        print(f"route: cannot build router: {exc}", file=sys.stderr)
        return 1
    shard_count = getattr(router, "shard_count", None)
    if shard_count is None:
        print(
            f"route: {args.shards!r} names fewer than two shards; "
            "use 'serve' for a single server",
            file=sys.stderr,
        )
        router.close()
        return 2
    try:
        server = TcpQueryServer(
            service=router,
            host=args.host,
            port=args.port if args.port is not None else DEFAULT_PORT,
        )
        server.start()
    except (OSError, ReproError) as exc:
        print(f"route: cannot start: {exc}", file=sys.stderr)
        router.close()
        return 1
    print(
        f"routing over {shard_count} shard(s) "
        f"[{args.partial_results}] at {server.url} — Ctrl-C to stop"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nroute: draining ...", file=sys.stderr)
    finally:
        server.stop(drain=True)
        router.close()
    return 0


def _run_trace(query: str, snapshot: Optional[str], as_json: bool) -> int:
    """Execute one query with tracing on and print the report."""
    import json

    from repro.obs.metrics import REGISTRY
    from repro.query.executor import QueryExecutor
    from repro.query.options import ExecutionOptions

    if snapshot:
        from repro.persistence.snapshot import load_database

        database = load_database(snapshot)
    else:
        database = _sample_database()
    executor = QueryExecutor(database)
    try:
        if as_json:
            result = executor.execute_text(query, ExecutionOptions(trace=True))
            payload = {
                "plan": result.statistics.plan,
                "rows": result.statistics.results,
                "candidates": result.statistics.candidates,
                "false_drops": result.statistics.false_drops,
                "logical_pages": result.statistics.page_accesses,
                "trace": result.trace.to_dict() if result.trace else None,
                "metrics": REGISTRY.snapshot(),
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(executor.explain_analyze(query))
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _run_fsck(
    snapshot: Optional[str],
    deep: bool,
    repair: bool,
    wal_dir: Optional[str] = None,
) -> int:
    """Check (and optionally repair) a saved snapshot or WAL directory."""
    from repro.errors import WalCorruptError
    from repro.persistence.snapshot import load_database, save_database
    from repro.recovery import facility_of_file, run_fsck

    if (snapshot is None) == (wal_dir is None):
        print("fsck: pass either a snapshot or --wal-dir", file=sys.stderr)
        return 1
    if wal_dir is not None:
        from repro.objects.database import Database

        try:
            database = Database.open(wal_dir)
        except WalCorruptError as exc:
            print(
                f"fsck: wal in {wal_dir!r} is corrupt at lsn {exc.lsn}: {exc}\n"
                f"fsck: repair with `wal truncate {wal_dir} --lsn {exc.lsn}` "
                "(work at and past that lsn is lost), then re-run",
                file=sys.stderr,
            )
            return 1
        except Exception as exc:
            print(f"fsck: cannot recover {wal_dir!r}: {exc}", file=sys.stderr)
            return 1
        return _fsck_database(database, deep=deep, repair=repair, wal_dir=wal_dir)
    try:
        # verify_checksums=False: fsck's job is to *report* corruption, so
        # a bad page must not abort the load.
        database = load_database(snapshot, verify_checksums=False)
    except Exception as exc:
        print(f"fsck: cannot load {snapshot!r}: {exc}", file=sys.stderr)
        return 1
    report = run_fsck(database, deep=deep)
    print(report.render())
    if report.ok or not repair:
        return 0 if report.ok else 1

    # Repair: rebuild every facility implicated by an issue. Object-file
    # damage is unrepairable (the object file is the source of truth).
    implicated = set()
    unrepairable = []
    for issue in report.issues:
        if issue.kind == "checksum":
            owner = facility_of_file(issue.subject)
            if owner is None:
                unrepairable.append(issue)
            else:
                implicated.add(owner)
        else:
            class_attr, _, name = issue.subject.rpartition("/")
            if "." in class_attr:
                class_name, attribute = class_attr.split(".", 1)
                implicated.add((class_name, attribute, name))
    for class_name, attribute, name in sorted(implicated):
        try:
            database.rebuild_facility(class_name, attribute, name)
            print(f"fsck: rebuilt {name} on {class_name}.{attribute}")
        except Exception as exc:
            print(
                f"fsck: rebuild of {name} on {class_name}.{attribute} "
                f"failed: {exc}",
                file=sys.stderr,
            )
            return 1
    for issue in unrepairable:
        print(f"fsck: cannot repair {issue.render()}", file=sys.stderr)
    after = run_fsck(database, deep=deep)
    if not after.ok:
        print(after.render(), file=sys.stderr)
        return 1
    save_database(database, snapshot)
    print(f"fsck: repaired snapshot saved to {snapshot}")
    return 0


def _fsck_database(database, deep: bool, repair: bool, wal_dir: str) -> int:
    """fsck of a recovered WAL-mode database; --repair checkpoints after."""
    from repro.recovery import facility_of_file, run_fsck

    report = run_fsck(database, deep=deep)
    print(report.render())
    if report.ok or not repair:
        database.close()
        return 0 if report.ok else 1
    implicated = set()
    unrepairable = []
    for issue in report.issues:
        if issue.kind == "wal":
            continue  # already handled by recovery / needs wal truncate
        if issue.kind == "checksum":
            owner = facility_of_file(issue.subject)
            if owner is None:
                unrepairable.append(issue)
            else:
                implicated.add(owner)
        else:
            class_attr, _, name = issue.subject.rpartition("/")
            if "." in class_attr:
                class_name, attribute = class_attr.split(".", 1)
                implicated.add((class_name, attribute, name))
    for class_name, attribute, name in sorted(implicated):
        try:
            database.rebuild_facility(class_name, attribute, name)
            print(f"fsck: rebuilt {name} on {class_name}.{attribute}")
        except Exception as exc:
            print(
                f"fsck: rebuild of {name} on {class_name}.{attribute} "
                f"failed: {exc}",
                file=sys.stderr,
            )
            database.close()
            return 1
    for issue in unrepairable:
        print(f"fsck: cannot repair {issue.render()}", file=sys.stderr)
    after = run_fsck(database, deep=deep)
    if not after.ok:
        print(after.render(), file=sys.stderr)
        database.close()
        return 1
    database.checkpoint()
    database.close()
    print(f"fsck: repaired database checkpointed in {wal_dir}")
    return 0


def _run_wal_inspect(wal_dir: str, as_json: bool) -> int:
    """Print a WAL directory's log records and tail health."""
    import json
    import os

    from repro.errors import WalCorruptError, WalError
    from repro.wal.log import WAL_FILE_NAME, scan_wal

    path = os.path.join(wal_dir, WAL_FILE_NAME)
    try:
        scan = scan_wal(path)
    except WalCorruptError as exc:
        print(
            f"wal: {path} corrupt at lsn {exc.lsn}: {exc}\n"
            f"wal: repair with `wal truncate {wal_dir} --lsn {exc.lsn}`",
            file=sys.stderr,
        )
        return 1
    except (OSError, WalError) as exc:
        print(f"wal: cannot read {path}: {exc}", file=sys.stderr)
        return 1
    if as_json:
        payload = {
            "path": path,
            "base_lsn": scan.base_lsn,
            "end_lsn": scan.end_lsn,
            "torn_bytes": scan.torn_bytes,
            "records": [
                {"lsn": r.lsn, "type": r.type, "fields": repr(r.fields[1:])}
                for r in scan.records
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"wal: {path}: {len(scan.records)} record(s), "
        f"lsn [{scan.base_lsn}, {scan.end_lsn}]"
    )
    for record in scan.records:
        print(f"  {record.lsn:>8}  {record.type:<16} {record.fields[1:]!r}")
    if scan.torn_bytes:
        print(
            f"wal: torn tail of {scan.torn_bytes} byte(s) after lsn "
            f"{scan.end_lsn} (recovery will truncate it)"
        )
    return 0


def _run_wal_truncate(wal_dir: str, lsn: int) -> int:
    """Cut a log at a record boundary (the interior-corruption repair)."""
    import os

    from repro.errors import WalError
    from repro.wal.log import WAL_FILE_NAME, truncate_wal

    path = os.path.join(wal_dir, WAL_FILE_NAME)
    try:
        dropped, end_lsn = truncate_wal(path, lsn)
    except (OSError, WalError) as exc:
        print(f"wal: cannot truncate {path}: {exc}", file=sys.stderr)
        return 1
    print(
        f"wal: dropped {dropped} record(s); {path} now ends at lsn {end_lsn}"
    )
    return 0


def _write_report(output_path: str, analytical_only: bool) -> int:
    """Run every registered experiment and write one markdown report."""
    ids = (
        [eid for eid in experiment_ids() if not eid.startswith("empirical")
         and eid != "false_drop_validation"]
        if analytical_only
        else experiment_ids()
    )
    sections = [
        "# Reproduction report",
        "",
        "Generated by `sigfile-repro report`: every registered experiment of",
        "the SIGMOD 1993 signature-file reproduction, rendered in full.",
        "",
    ]
    failures = 0
    for experiment_id in ids:
        print(f"running {experiment_id} ...", file=sys.stderr)
        try:
            result = run_experiment(experiment_id)
        except Exception as exc:
            sections.append(f"## {experiment_id}\n\nFAILED: {exc}\n")
            failures += 1
            continue
        sections.append(f"## {experiment_id}\n\n```\n{render_result(result)}\n```\n")
    with open(output_path, "w", encoding="utf-8") as stream:
        stream.write("\n".join(sections))
    print(f"report written to {output_path} ({len(ids)} experiments)")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
