"""Workload generators: the Section 4 synthetic workload and the Section 1
university sample database."""

from repro.workloads.generator import (
    EVAL_ATTRIBUTE,
    EVAL_CLASS,
    SetWorkloadGenerator,
    WorkloadSpec,
    load_workload,
    query_sets_for_sweep,
)
from repro.workloads.university import (
    COURSE_CATEGORIES,
    HOBBY_POOL,
    UniversityDatabase,
    build_university,
    define_university_schema,
)

__all__ = [
    "COURSE_CATEGORIES",
    "EVAL_ATTRIBUTE",
    "EVAL_CLASS",
    "HOBBY_POOL",
    "SetWorkloadGenerator",
    "UniversityDatabase",
    "WorkloadSpec",
    "build_university",
    "define_university_schema",
    "load_workload",
    "query_sets_for_sweep",
]
