"""Workload generation under the paper's Section 4 assumptions.

The evaluation database has ``N`` objects, each with an indexed set
attribute of exactly ``Dt`` elements drawn uniformly without replacement
from a domain of cardinality ``V`` (integers ``0 .. V−1`` here; any
hashable element type works). Query sets are drawn the same way with
cardinality ``Dq`` — or, for *successful-search* experiments, derived from
a stored target so that actual drops are guaranteed.

All randomness flows from an explicit seed for reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.objects.database import Database
from repro.objects.schema import ClassSchema


@dataclass(frozen=True)
class WorkloadSpec:
    """The Section 4 synthetic workload at one design point.

    ``zipf_exponent > 0`` replaces the paper's uniform element choice with
    a Zipf-distributed one (element ``k`` drawn with weight ``1/(k+1)^s``)
    — real set attributes are rarely uniform, and skew stresses the nested
    index's per-element posting lists while leaving signature behaviour
    almost unchanged (the skew ablation bench quantifies this).
    """

    num_objects: int           # N
    domain_cardinality: int    # V
    target_cardinality: int    # Dt
    seed: int = 0
    variable_cardinality: bool = False  # §6 extension: Dt varies per object
    zipf_exponent: float = 0.0          # 0 = the paper's uniform domain

    def __post_init__(self) -> None:
        if self.num_objects < 0:
            raise ConfigurationError(f"N must be >= 0, got {self.num_objects}")
        if self.domain_cardinality <= 0:
            raise ConfigurationError(
                f"V must be positive, got {self.domain_cardinality}"
            )
        if not 0 <= self.target_cardinality <= self.domain_cardinality:
            raise ConfigurationError(
                f"Dt must lie in [0, V], got {self.target_cardinality}"
            )
        if self.zipf_exponent < 0:
            raise ConfigurationError(
                f"zipf_exponent must be >= 0, got {self.zipf_exponent}"
            )


class SetWorkloadGenerator:
    """Draws target sets and query sets for one workload spec."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self._domain = range(spec.domain_cardinality)
        if spec.zipf_exponent > 0:
            weights = [
                1.0 / (k + 1) ** spec.zipf_exponent
                for k in range(spec.domain_cardinality)
            ]
            total = sum(weights)
            self._cumulative = []
            running = 0.0
            for weight in weights:
                running += weight / total
                self._cumulative.append(running)
        else:
            self._cumulative = None

    def _draw_skewed_set(self, cardinality: int) -> FrozenSet[int]:
        """Distinct Zipf-weighted elements via rejection over the CDF."""
        import bisect

        if cardinality > self.spec.domain_cardinality:
            raise ConfigurationError(
                f"cannot draw {cardinality} distinct elements from a domain "
                f"of {self.spec.domain_cardinality}"
            )
        chosen = set()
        # Rejection is cheap until the set saturates the hot head; past a
        # generous attempt budget, fill the remainder uniformly from the
        # unchosen tail so termination is unconditional.
        attempts = 0
        budget = 50 * max(cardinality, 1)
        while len(chosen) < cardinality and attempts < budget:
            point = self._rng.random()
            chosen.add(bisect.bisect_left(self._cumulative, point))
            attempts += 1
        if len(chosen) < cardinality:
            remaining = [v for v in self._domain if v not in chosen]
            chosen.update(
                self._rng.sample(remaining, cardinality - len(chosen))
            )
        return frozenset(chosen)

    # ------------------------------------------------------------------
    # Target sets
    # ------------------------------------------------------------------
    def target_cardinality_for(self, index: int) -> int:
        """Dt for the ``index``-th object.

        Fixed at ``spec.target_cardinality`` normally; under the
        variable-cardinality extension it is uniform in
        ``[1, 2·Dt − 1]`` (mean Dt), per object, deterministically.
        """
        if not self.spec.variable_cardinality:
            return self.spec.target_cardinality
        # Derived deterministically from (seed, index); str hashing is
        # process-salted in Python, so only arithmetic mixing is safe here.
        rng = random.Random(self.spec.seed * 1_000_003 + index * 7919 + 17)
        return rng.randint(1, max(1, 2 * self.spec.target_cardinality - 1))

    def target_sets(self) -> Iterator[FrozenSet[int]]:
        """``N`` random target sets."""
        for index in range(self.spec.num_objects):
            cardinality = self.target_cardinality_for(index)
            if self._cumulative is not None:
                yield self._draw_skewed_set(cardinality)
            else:
                yield frozenset(self._rng.sample(self._domain, cardinality))

    # ------------------------------------------------------------------
    # Query sets
    # ------------------------------------------------------------------
    def random_query_set(self, cardinality: int) -> FrozenSet[int]:
        """A Dq-element query set drawn uniformly from the domain."""
        if not 0 <= cardinality <= self.spec.domain_cardinality:
            raise ConfigurationError(
                f"Dq must lie in [0, V], got {cardinality}"
            )
        return frozenset(self._rng.sample(self._domain, cardinality))

    def skewed_query_set(self, cardinality: int) -> FrozenSet[int]:
        """A Dq-element query drawn with the spec's Zipf weights.

        Skewed queries hit the hot head of the domain — the worst case for
        posting-list facilities. Requires ``zipf_exponent > 0``.
        """
        if self._cumulative is None:
            raise ConfigurationError(
                "skewed_query_set requires a zipf_exponent > 0 workload"
            )
        return self._draw_skewed_set(cardinality)

    def hot_elements(self, count: int) -> FrozenSet[int]:
        """The ``count`` most-probable domain elements (Zipf head)."""
        if count > self.spec.domain_cardinality:
            raise ConfigurationError(
                f"domain has only {self.spec.domain_cardinality} elements"
            )
        return frozenset(range(count))

    def subquery_of(self, target: Sequence[int], cardinality: int) -> FrozenSet[int]:
        """A query set ⊆ a given target — guarantees a ``T ⊇ Q`` hit."""
        target = list(target)
        if cardinality > len(target):
            raise ConfigurationError(
                f"cannot draw {cardinality} elements from a target of "
                f"{len(target)}"
            )
        return frozenset(self._rng.sample(target, cardinality))

    def superquery_of(self, target: Sequence[int], cardinality: int) -> FrozenSet[int]:
        """A query set ⊇ a given target — guarantees a ``T ⊆ Q`` hit."""
        target_set = set(target)
        if cardinality < len(target_set):
            raise ConfigurationError(
                f"superquery of {cardinality} cannot cover a target of "
                f"{len(target_set)}"
            )
        remaining = [v for v in self._domain if v not in target_set]
        extra = self._rng.sample(remaining, cardinality - len(target_set))
        return frozenset(target_set) | frozenset(extra)


#: Name of the synthetic evaluation class and its indexed attribute.
EVAL_CLASS = "EvalObject"
EVAL_ATTRIBUTE = "elements"


def load_workload(
    database: Database,
    spec: WorkloadSpec,
    class_name: str = EVAL_CLASS,
    attribute: str = EVAL_ATTRIBUTE,
) -> List:
    """Create the evaluation class and populate ``N`` objects.

    Returns the inserted OIDs in insertion order. Indexes created on the
    database *before* loading are maintained incrementally (measuring
    insert costs); indexes created after are backfilled by the facade.
    """
    if class_name not in database.objects.class_names():
        database.define_class(ClassSchema.build(class_name, **{attribute: "set"}))
    generator = SetWorkloadGenerator(spec)
    oids = []
    for target in generator.target_sets():
        oids.append(database.insert(class_name, {attribute: set(target)}))
    return oids


def query_sets_for_sweep(
    spec: WorkloadSpec,
    cardinalities: Sequence[int],
    queries_per_point: int = 1,
    seed_offset: int = 1,
) -> dict:
    """Unsuccessful-search query sets for a Dq sweep, keyed by Dq.

    Uses an independent RNG stream (``seed + seed_offset``) so queries are
    uncorrelated with the stored targets — the paper's unsuccessful-search
    regime where essentially every drop is false.
    """
    rng_spec = WorkloadSpec(
        num_objects=0,
        domain_cardinality=spec.domain_cardinality,
        target_cardinality=spec.target_cardinality,
        seed=spec.seed + seed_offset,
    )
    generator = SetWorkloadGenerator(rng_spec)
    return {
        dq: [generator.random_query_set(dq) for _ in range(queries_per_point)]
        for dq in cardinalities
    }
