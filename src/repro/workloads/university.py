"""The paper's Section 1 sample database: Students, Courses, Teachers.

Builds the motivating schema —

* ``Teacher``  [name]
* ``Course``   [name, category, teacher: Teacher]
* ``Student``  [name, courses: set of Course OIDs, hobbies: set of strings]

— and populates it with a deterministic synthetic campus so the examples
and tests can run the paper's two motivating queries:

1. *"Find all students who take all of the lectures in the DB category"*
   (``courses has-subset <OIDs of DB courses>``);
2. the hobby queries Q1/Q2 (``hobbies has-subset / in-subset …``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.objects.database import Database
from repro.objects.oid import OID
from repro.objects.schema import ClassSchema

HOBBY_POOL = [
    "Baseball", "Fishing", "Tennis", "Football", "Golf", "Chess",
    "Photography", "Climbing", "Cycling", "Painting", "Cooking", "Sailing",
    "Running", "Skiing", "Reading", "Gardening", "Astronomy", "Archery",
]

COURSE_CATEGORIES = {
    "DB": ["DB Theory", "Query Processing", "Transaction Management"],
    "OS": ["Operating Systems", "Distributed Systems"],
    "AI": ["Machine Learning", "Knowledge Representation"],
    "PL": ["Compilers", "Type Systems"],
}

FIRST_NAMES = [
    "Jeff", "Aiko", "Maria", "Chen", "Ravi", "Lena", "Tomas", "Yuki",
    "Sara", "Omar", "Ines", "Pavel", "Mina", "Kofi", "Elsa", "Hugo",
]


@dataclass
class UniversityDatabase:
    """Handle bundling the database with the OIDs it created."""

    database: Database
    teachers: List[OID] = field(default_factory=list)
    courses: Dict[str, List[OID]] = field(default_factory=dict)  # category → OIDs
    students: List[OID] = field(default_factory=list)

    def course_oids(self, category: str) -> List[OID]:
        return list(self.courses.get(category, []))

    def all_course_oids(self) -> List[OID]:
        return [oid for oids in self.courses.values() for oid in oids]


def define_university_schema(database: Database) -> None:
    """Install the three Section 1 classes."""
    database.define_class(ClassSchema.build("Teacher", name="scalar"))
    database.define_class(
        ClassSchema.build(
            "Course", name="scalar", category="scalar", teacher="scalar:Teacher"
        )
    )
    database.define_class(
        ClassSchema.build(
            "Student", name="scalar", courses="set:Course", hobbies="set"
        )
    )


def build_university(
    num_students: int = 200,
    hobbies_per_student: int = 3,
    courses_per_student: int = 4,
    seed: int = 7,
    page_size: int = 4096,
    pool_capacity: int = 0,
) -> UniversityDatabase:
    """Create and populate the sample campus."""
    rng = random.Random(seed)
    database = Database(page_size=page_size, pool_capacity=pool_capacity)
    define_university_schema(database)
    campus = UniversityDatabase(database=database)

    for i, category in enumerate(sorted(COURSE_CATEGORIES)):
        teacher = database.insert("Teacher", {"name": f"Prof. {chr(65 + i)}"})
        campus.teachers.append(teacher)
        campus.courses[category] = [
            database.insert(
                "Course", {"name": name, "category": category, "teacher": teacher}
            )
            for name in COURSE_CATEGORIES[category]
        ]

    all_courses = campus.all_course_oids()
    for i in range(num_students):
        name = f"{rng.choice(FIRST_NAMES)}-{i:04d}"
        hobbies = set(rng.sample(HOBBY_POOL, hobbies_per_student))
        courses = set(rng.sample(all_courses, min(courses_per_student, len(all_courses))))
        campus.students.append(
            database.insert(
                "Student", {"name": name, "hobbies": hobbies, "courses": courses}
            )
        )
    return campus
