"""False-drop probability theory (paper Section 3.2 and Appendix A).

Symbols (Table 1): F signature size in bits, m 1-bits per element signature,
``Dt`` target-set cardinality, ``Dq`` query-set cardinality, ``m_t`` / ``m_q``
expected signature weights.

Key results reproduced here:

* Expected weights:  ``m_t = F (1 - (1 - m/F)^Dt)  ≈  F (1 - e^(-m Dt / F))``
* ``T ⊇ Q`` (eq. 2): ``Fd = (1 - e^(-m Dt / F))^(m Dq)``,
  minimized at ``m_opt = F ln 2 / Dt`` where it equals ``(1/2)^(m_opt Dq)``
  (eq. 4).
* ``T ⊆ Q`` (eq. 6): ``Fd = (1 - e^(-m Dq / F))^(m Dt)``,
  minimized at ``m_opt = F ln 2 / Dq`` (impractical since ``Dq`` varies per
  query — the paper's point in §3.2.2).
* Appendix A partial-examination form: the probability that ``k`` specific
  bit positions are all zero in a weight-``(m·D)``-superimposed signature is
  ``≈ (1 - k/F)^(m D)``; this powers the smart ``T ⊆ Q`` strategy, which
  examines only ``k`` of the query's zero slices.

Both the exponential approximation used throughout the paper and the exact
binomial form are provided; tests pin them against each other and against
Monte-Carlo simulation of the actual hashing scheme.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def _validate(F: int, m: int) -> None:
    if F <= 0:
        raise ConfigurationError(f"F must be positive, got {F}")
    if not 0 < m <= F:
        raise ConfigurationError(f"m must satisfy 0 < m <= F, got m={m}, F={F}")


def expected_weight(F: int, m: int, cardinality: int, exact: bool = False) -> float:
    """Expected number of 1s in a signature of a ``cardinality``-element set.

    ``m_t`` / ``m_q`` of Table 1. With ``exact=True`` uses the binomial form
    ``F (1 - (1 - m/F)^D)``; otherwise the paper's exponential approximation.
    """
    _validate(F, m)
    if cardinality < 0:
        raise ConfigurationError(f"cardinality must be >= 0, got {cardinality}")
    if cardinality == 0:
        return 0.0
    if exact:
        return F * (1.0 - (1.0 - m / F) ** cardinality)
    return F * (1.0 - math.exp(-m * cardinality / F))


def one_bit_probability(F: int, m: int, cardinality: int, exact: bool = False) -> float:
    """Probability that a given bit position is set in a set signature."""
    return expected_weight(F, m, cardinality, exact=exact) / F


def false_drop_superset(
    F: int, m: int, Dt: int, Dq: int, exact: bool = False
) -> float:
    """False-drop probability for ``T ⊇ Q`` — paper equation (2).

    Probability that a random target signature covers the query signature
    when the target set does *not* actually contain the query set. Derived
    for the unsuccessful-search case, per §3.2.1.
    """
    _validate(F, m)
    if Dt < 0 or Dq < 0:
        raise ConfigurationError("set cardinalities must be >= 0")
    if Dq == 0:
        # An empty query set is contained in everything: every drop is real.
        return 1.0
    p_one = one_bit_probability(F, m, Dt, exact=exact)
    return p_one ** (m * Dq)


def false_drop_superset_optimal(F: int, Dt: int, Dq: int) -> float:
    """Equation (4): ``Fd`` at ``m = m_opt = F ln2 / Dt`` for ``T ⊇ Q``."""
    if F <= 0 or Dt <= 0 or Dq < 0:
        raise ConfigurationError("need F > 0, Dt > 0, Dq >= 0")
    m_opt = F * math.log(2.0) / Dt
    return 0.5 ** (m_opt * Dq)


def false_drop_subset(F: int, m: int, Dt: int, Dq: int, exact: bool = False) -> float:
    """False-drop probability for ``T ⊆ Q`` — paper equation (6).

    Probability that the query signature covers a random target signature
    when the target set is *not* actually a subset of the query set.
    """
    _validate(F, m)
    if Dt < 0 or Dq < 0:
        raise ConfigurationError("set cardinalities must be >= 0")
    if Dt == 0:
        # Empty targets are subsets of everything: every drop is real.
        return 1.0
    p_one = one_bit_probability(F, m, Dq, exact=exact)
    return p_one ** (m * Dt)


def false_drop_partial_zero_slices(F: int, m: int, Dt: int, slices_examined: int) -> float:
    """Appendix A: drop probability when only ``k`` zero slices are checked.

    For the smart ``T ⊆ Q`` strategy, only ``k = slices_examined`` of the
    query signature's zero positions are tested; a target survives (is a
    drop) iff it has 0 in all of them, with probability
    ``(1 - k/F)^(m Dt)``.
    """
    _validate(F, m)
    if not 0 <= slices_examined <= F:
        raise ConfigurationError(
            f"slices_examined must lie in [0, F], got {slices_examined}"
        )
    if Dt < 0:
        raise ConfigurationError("Dt must be >= 0")
    if Dt == 0:
        return 1.0
    return (1.0 - slices_examined / F) ** (m * Dt)


def false_drop_partial_query(F: int, m: int, Dt: int, used_elements: int) -> float:
    """Drop probability for ``T ⊇ Q`` with a partial query signature.

    The §5.1.3 smart strategy builds the query signature from only
    ``used_elements`` of the query set's elements, so equation (2) applies
    with ``Dq`` replaced by the number of elements actually used.
    """
    return false_drop_superset(F, m, Dt, used_elements)


def optimal_m_superset(F: int, Dt: int) -> float:
    """Equation (3): ``m_opt = F ln 2 / Dt`` minimizing eq. (2)."""
    if F <= 0 or Dt <= 0:
        raise ConfigurationError("need F > 0 and Dt > 0")
    return F * math.log(2.0) / Dt


def optimal_m_subset(F: int, Dq: int) -> float:
    """§3.2.2: ``m_opt = F ln 2 / Dq`` minimizing eq. (6).

    The paper notes this is impractical because ``Dq`` varies per query; it
    is exposed for completeness and for the ablation benchmarks.
    """
    if F <= 0 or Dq <= 0:
        raise ConfigurationError("need F > 0 and Dq > 0")
    return F * math.log(2.0) / Dq


def rounded_optimal_m(F: int, D: int, minimum: int = 1) -> int:
    """``m_opt`` rounded to the nearest usable integer (>= ``minimum``).

    The analysis treats m as continuous; real signature files need an
    integer. Rounds to nearest, clamping into ``[minimum, F]``.
    """
    m_star = F * math.log(2.0) / D
    return max(minimum, min(F, round(m_star)))
