"""Element-signature hashing.

An element signature is an F-bit vector with exactly ``m`` bits set. The
paper assumes the hash function "has ideal characteristics": the 1s are
uniformly distributed over the F positions. We realize that with double
hashing over a 64-bit mix of the element value, drawing ``m`` *distinct*
positions per element deterministically (the same element always yields the
same signature, a requirement for the scheme to work at all).

Elements may be arbitrary hashable Python values; strings, ints and bytes get
a stable cross-run encoding (Python's builtin ``hash`` is salted per process,
so it must not be used here).
"""

from __future__ import annotations

import hashlib
import random
import struct
from typing import Hashable, List

from repro.core.bits import BitVector
from repro.errors import ConfigurationError

_MASK64 = 0xFFFFFFFFFFFFFFFF


def stable_element_key(element: Hashable) -> bytes:
    """Deterministic byte encoding of an element value.

    Distinct types never collide because the encoding is tag-prefixed.
    """
    if isinstance(element, bytes):
        return b"b:" + element
    if isinstance(element, str):
        return b"s:" + element.encode("utf-8")
    if isinstance(element, bool):
        # bool before int: bool is an int subclass.
        return b"o:" + (b"1" if element else b"0")
    if isinstance(element, int):
        return b"i:" + str(element).encode("ascii")
    if isinstance(element, float):
        return b"f:" + struct.pack("<d", element)
    if isinstance(element, tuple):
        parts = [stable_element_key(item) for item in element]
        body = b"".join(struct.pack("<I", len(p)) + p for p in parts)
        return b"t:" + body
    # OIDs are first-class set elements in OODBs (e.g. Student.courses).
    # Imported lazily to keep the core layer free of an objects dependency
    # at module-import time.
    from repro.objects.oid import OID

    if isinstance(element, OID):
        return b"d:" + element.to_bytes()
    raise ConfigurationError(
        f"cannot hash element of type {type(element).__name__}; "
        "supported: str, bytes, int, float, bool, tuple, OID"
    )


def _mix64(data: bytes, seed: int) -> int:
    """64-bit digest of ``data`` under ``seed`` (blake2b keyed, truncated)."""
    digest = hashlib.blake2b(
        data, digest_size=8, key=seed.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little")


class ElementHasher:
    """Draws ``m`` distinct bit positions in ``[0, F)`` per element.

    A 64-bit keyed digest of the element seeds a PRNG whose
    ``sample(range(F), m)`` yields the positions: a uniform m-subset of the
    F positions, exactly the paper's ideal-hash assumption, deterministic
    in (element, F, m, seed), and structurally incapable of the orbit
    pathologies that double-hashing probe sequences suffer when ``m``
    approaches ``F``.

    Parameters
    ----------
    signature_bits:
        F — the signature width in bits.
    bits_per_element:
        m — the number of 1s in every element signature.
    seed:
        Optional salt so independent signature files can decorrelate their
        hash functions.
    """

    def __init__(self, signature_bits: int, bits_per_element: int, seed: int = 0):
        if signature_bits <= 0:
            raise ConfigurationError(f"F must be positive, got {signature_bits}")
        if not 1 <= bits_per_element <= signature_bits:
            raise ConfigurationError(
                f"m must satisfy 1 <= m <= F, got m={bits_per_element}, F={signature_bits}"
            )
        self.signature_bits = signature_bits
        self.bits_per_element = bits_per_element
        self.seed = seed & _MASK64
        # Positions are pure in (element, F, m, seed); domains are small
        # relative to database sizes, so a bounded memo pays for itself in
        # bulk loads. Evicted wholesale when full (no LRU bookkeeping).
        self._memo: dict = {}
        self._word_memo: dict = {}
        self._memo_cap = 65_536

    def positions(self, element: Hashable) -> List[int]:
        """The ``m`` distinct bit positions for ``element`` (sorted)."""
        # Key by (type, value): Python dicts treat True == 1 == 1.0 as the
        # same key, but the tagged hashing must keep them distinct.
        memo_key = (type(element).__name__, element)
        cached = self._memo.get(memo_key)
        if cached is not None:
            return list(cached)
        key = stable_element_key(element)
        rng = random.Random(_mix64(key, self.seed))
        chosen: List[int] = sorted(
            rng.sample(range(self.signature_bits), self.bits_per_element)
        )
        if len(self._memo) >= self._memo_cap:
            self._memo.clear()
        self._memo[memo_key] = tuple(chosen)
        return chosen

    def element_signature(self, element: Hashable) -> BitVector:
        """The F-bit, weight-m signature of a single element."""
        return BitVector.from_positions(self.signature_bits, self.positions(element))

    def signature_words(self, element: Hashable):
        """The element signature as shared packed uint64 words.

        The returned array is memoized and write-protected: callers OR it
        into their own accumulators (set-signature superimposition) without
        paying per-bit construction again. Mutating it raises.
        """
        memo_key = (type(element).__name__, element)
        cached = self._word_memo.get(memo_key)
        if cached is None:
            cached = BitVector.from_positions(
                self.signature_bits, self.positions(element)
            ).words
            cached.setflags(write=False)
            if len(self._word_memo) >= self._memo_cap:
                self._word_memo.clear()
            self._word_memo[memo_key] = cached
        return cached

    def __repr__(self) -> str:
        return (
            f"ElementHasher(F={self.signature_bits}, "
            f"m={self.bits_per_element}, seed={self.seed})"
        )
