"""Packed-word batch kernels for signature search.

The naive search paths unpack every slice page (BSSF) or signature page
(SSF) into per-entry ``bool``/0-1 arrays before combining them, which
spends most of each query's wall-clock expanding bits 8× and walking
Python loops. These kernels keep everything in ``uint64`` words — 64
entries (or signature bits) per machine word — and only materialize
indices at the very end, when the surviving drop positions are needed.

Conventions match :mod:`repro.core.bits`: bit ``i`` lives in word
``i // 64`` at in-word position ``i % 64`` (``numpy``'s
``bitorder="little"``). All kernels are pure functions on numpy arrays;
they never touch storage and therefore cannot perturb the paper's
page-access accounting — the access methods charge I/O separately and
identically on both the packed and the naive paths.
"""

from __future__ import annotations

import numpy as np

WORD_BITS = 64

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def words_for_bits(nbits: int) -> int:
    """Number of uint64 words needed to hold ``nbits`` bits."""
    return (nbits + WORD_BITS - 1) // WORD_BITS


def packed_from_bytes(data: bytes) -> np.ndarray:
    """View a little-endian byte string as packed uint64 words.

    The length must be a multiple of 8 (page images always are). The
    returned array shares the buffer and is read-only.
    """
    return np.frombuffer(data, dtype="<u8")


def ones_mask(nbits: int, nwords: int) -> np.ndarray:
    """A ``nwords``-long word array with exactly the first ``nbits`` set."""
    mask = np.zeros(nwords, dtype=np.uint64)
    full = min(nbits // WORD_BITS, nwords)
    mask[:full] = _ALL_ONES
    rem = nbits % WORD_BITS
    if rem and full < nwords:
        mask[full] = np.uint64((1 << rem) - 1)
    return mask


def and_into(acc: np.ndarray, words: np.ndarray) -> None:
    """``acc &= words`` in place (slice-AND accumulation)."""
    np.bitwise_and(acc, words, out=acc)


def or_into(acc: np.ndarray, words: np.ndarray) -> None:
    """``acc |= words`` in place (slice-OR accumulation)."""
    np.bitwise_or(acc, words, out=acc)


def any_bit(words: np.ndarray) -> bool:
    """True iff any bit is set — the superset-AND early-exit test."""
    return bool(words.any())


def covers_all(acc: np.ndarray, mask: np.ndarray) -> bool:
    """True iff every bit of ``mask`` is set in ``acc`` — the subset-OR
    "everything eliminated" early-exit test (``acc`` need not be masked)."""
    return bool(np.array_equal(acc & mask, mask))


def set_bit_indices(words: np.ndarray, nbits: int) -> np.ndarray:
    """Ascending indices (< ``nbits``) of the set bits of ``words``.

    This is the vectorized drop-index materialization: one ``unpackbits``
    over exactly ``nbits`` positions plus one ``nonzero``, replacing the
    per-entry Python loops of the naive paths.
    """
    if nbits == 0 or words.size == 0:
        return np.zeros(0, dtype=np.int64)
    bits = np.unpackbits(words.view(np.uint8), bitorder="little", count=nbits)
    return np.nonzero(bits)[0]


def cleared_bit_indices(words: np.ndarray, nbits: int) -> np.ndarray:
    """Ascending indices (< ``nbits``) of the *zero* bits of ``words``."""
    if nbits == 0 or words.size == 0:
        return np.zeros(0, dtype=np.int64)
    bits = np.unpackbits(words.view(np.uint8), bitorder="little", count=nbits)
    return np.nonzero(bits == 0)[0]


# ----------------------------------------------------------------------
# Row (signature-matrix) kernels — the SSF full-scan fast path
# ----------------------------------------------------------------------
def pack_rows(bit_rows: np.ndarray) -> np.ndarray:
    """Pack a (n, F) 0/1 matrix into a (n, words_for_bits(F)) uint64 matrix."""
    n, nbits = bit_rows.shape
    nwords = words_for_bits(nbits)
    padded = np.zeros((n, nwords * WORD_BITS), dtype=np.uint8)
    padded[:, :nbits] = bit_rows
    packed = np.packbits(padded, axis=1, bitorder="little")
    return np.ascontiguousarray(packed).view(np.uint64)


def unpack_rows(word_rows: np.ndarray, nbits: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`: (n, W) uint64 → (n, nbits) 0/1 uint8."""
    if word_rows.shape[0] == 0:
        return np.zeros((0, nbits), dtype=np.uint8)
    as_bytes = np.ascontiguousarray(word_rows).view(np.uint8)
    return np.unpackbits(as_bytes, axis=1, bitorder="little")[:, :nbits]


def rows_covering(matrix: np.ndarray, query_words: np.ndarray) -> np.ndarray:
    """Per-row ``T ⊇ Q`` drop test: row covers every query bit."""
    return np.all((matrix & query_words) == query_words, axis=1)


def rows_disjoint_from(matrix: np.ndarray, mask_words: np.ndarray) -> np.ndarray:
    """Per-row test that the row has *no* bit inside ``mask_words``.

    With the mask set to the examined zero positions of a query signature
    this is the ``T ⊆ Q`` drop test (no target bit outside the query).
    """
    return ~np.any(matrix & mask_words, axis=1)


def rows_intersecting(matrix: np.ndarray, query_words: np.ndarray) -> np.ndarray:
    """Per-row ``T ∩ Q ≠ ∅`` drop test: row shares a bit with the query."""
    return np.any(matrix & query_words, axis=1)


# ----------------------------------------------------------------------
# Batched (many-query) drop tests
# ----------------------------------------------------------------------
# One decoded signature matrix serves a whole batch of query signatures:
# broadcasting ``(n, W)`` targets against ``(q, 1, W)`` queries evaluates
# every (query, target) pair in a single vectorized pass, so the per-query
# cost collapses to the match arithmetic — the decode, packing and Python
# dispatch amortize across the batch. Large batches are chunked to bound
# the (q, n, W) intermediate.

_MATCH_CHUNK_ELEMS = 4_000_000


def _query_chunks(queries: np.ndarray, n: int):
    q, w = queries.shape
    per = max(1, _MATCH_CHUNK_ELEMS // max(1, n * w))
    for start in range(0, q, per):
        yield start, queries[start : start + per]


def rows_covering_many(matrix: np.ndarray, query_matrix: np.ndarray) -> np.ndarray:
    """Batched ``T ⊇ Q``: boolean ``(q, n)``; row i == rows_covering(qi)."""
    q = query_matrix.shape[0]
    out = np.empty((q, matrix.shape[0]), dtype=bool)
    for start, chunk in _query_chunks(query_matrix, matrix.shape[0]):
        expanded = chunk[:, None, :]
        out[start : start + chunk.shape[0]] = np.all(
            (matrix[None, :, :] & expanded) == expanded, axis=2
        )
    return out


def rows_disjoint_from_many(matrix: np.ndarray, mask_matrix: np.ndarray) -> np.ndarray:
    """Batched no-bit-in-mask test: boolean ``(q, n)`` (``T ⊆ Q`` drops)."""
    q = mask_matrix.shape[0]
    out = np.empty((q, matrix.shape[0]), dtype=bool)
    for start, chunk in _query_chunks(mask_matrix, matrix.shape[0]):
        out[start : start + chunk.shape[0]] = ~np.any(
            matrix[None, :, :] & chunk[:, None, :], axis=2
        )
    return out


def rows_intersecting_many(matrix: np.ndarray, query_matrix: np.ndarray) -> np.ndarray:
    """Batched ``T ∩ Q ≠ ∅``: boolean ``(q, n)``."""
    q = query_matrix.shape[0]
    out = np.empty((q, matrix.shape[0]), dtype=bool)
    for start, chunk in _query_chunks(query_matrix, matrix.shape[0]):
        out[start : start + chunk.shape[0]] = np.any(
            matrix[None, :, :] & chunk[:, None, :], axis=2
        )
    return out
