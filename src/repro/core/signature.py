"""Superimposed-coding set signatures (paper Section 3.1).

A *set signature* is the bitwise OR of the element signatures of every
element in a set value. Set signatures built from stored attribute values are
*target signatures*; those built from a query's set constant are *query
signatures*.

Drop conditions (Section 3.1):

``T ⊇ Q`` (has-subset)
    A target is a drop when every bit set in the **query** signature is also
    set in the target signature.

``T ⊆ Q`` (in-subset)
    A target is a drop when every bit set in the **target** signature is also
    set in the query signature.

A drop is only a *candidate*; hash collisions plus superimposition produce
false drops, which the query executor resolves by fetching the object
(Section 3.1's "false drop resolution").
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Hashable, Iterable

import numpy as np

from repro.core.bits import BitVector, words_for_bits
from repro.core.hashing import ElementHasher
from repro.errors import ConfigurationError


class SetPredicateKind(enum.Enum):
    """The set comparison the paper's queries exercise, plus §6 extensions."""

    HAS_SUBSET = "has-subset"      # T ⊇ Q  (query Q1)
    IN_SUBSET = "in-subset"        # T ⊆ Q  (query Q2)
    CONTAINS = "contains"          # membership: q ∈ T (⊇ with |Q| = 1)
    EQUALS = "set-equals"          # T = Q
    OVERLAPS = "overlaps"          # T ∩ Q ≠ ∅

    def evaluate(self, target: FrozenSet, query: FrozenSet) -> bool:
        """Exact (non-signature) evaluation of the predicate on real sets."""
        if self is SetPredicateKind.HAS_SUBSET:
            return target >= query
        if self is SetPredicateKind.IN_SUBSET:
            return target <= query
        if self is SetPredicateKind.CONTAINS:
            return query <= target
        if self is SetPredicateKind.EQUALS:
            return target == query
        return bool(target & query)


class SignatureScheme:
    """The (F, m) design point of a signature file.

    Wraps an :class:`ElementHasher` and provides set/query signature
    construction and the two drop tests. All signatures produced by one
    scheme are interoperable; mixing schemes raises.
    """

    def __init__(self, signature_bits: int, bits_per_element: int, seed: int = 0):
        self.hasher = ElementHasher(signature_bits, bits_per_element, seed=seed)
        self.signature_bits = signature_bits
        self.bits_per_element = bits_per_element
        self.seed = seed

    # ------------------------------------------------------------------
    # Signature construction
    # ------------------------------------------------------------------
    def element_signature(self, element: Hashable) -> BitVector:
        return self.hasher.element_signature(element)

    def set_signature(self, elements: Iterable[Hashable]) -> BitVector:
        """Superimpose (OR) the element signatures of ``elements``.

        Runs on memoized packed element words (one ``bitwise_or.reduce``
        over the stacked rows) instead of per-bit loops; the result is
        identical, only cheaper for large sets and repeated elements.
        """
        signature_words = self.hasher.signature_words
        rows = [signature_words(element) for element in elements]
        sig = BitVector(self.signature_bits)
        if rows:
            np.bitwise_or.reduce(rows, axis=0, out=sig.words)
        return sig

    # Query signatures are constructed identically; the alias keeps call
    # sites readable and gives the smart strategies a single place to hook.
    query_signature = set_signature

    def set_signature_words_many(self, element_sets) -> np.ndarray:
        """Packed set signatures for many sets at once: an ``(n, W)`` array.

        Row ``i`` equals ``set_signature(element_sets[i]).words``. Gathers
        every element's memoized packed row into one stacked array and
        superimposes each set's segment with a single
        ``np.bitwise_or.reduceat`` — one vectorized pass instead of one
        Python-level reduce per set, which is what made kernel bulk loads
        lose to the naive path.
        """
        signature_words = self.hasher.signature_words
        words = words_for_bits(self.signature_bits)
        # Hash each *distinct* element once and gather occurrences with one
        # fancy index — bulk loads repeat domain elements thousands of
        # times, and a per-occurrence numpy call is what made the kernel
        # path lose to naive.
        index_of: dict = {}
        unique_rows = []
        occurrences = []
        offsets = []
        position = 0
        for elements in element_sets:
            offsets.append(position)
            for element in elements:
                idx = index_of.get(element)
                if idx is None:
                    idx = len(unique_rows)
                    index_of[element] = idx
                    unique_rows.append(signature_words(element))
                occurrences.append(idx)
                position += 1
        out = np.zeros((len(offsets), words), dtype=np.uint64)
        if not occurrences:
            return out
        stacked = np.vstack(unique_rows)[np.asarray(occurrences)]
        # reduceat cannot represent empty segments (an offset equal to the
        # next one reduces a single row instead of none), so superimpose
        # only the non-empty sets and leave empty ones all-zero.
        starts = np.array(offsets + [position])
        lengths = np.diff(starts)
        nonempty = np.flatnonzero(lengths)
        if nonempty.size:
            reduced = np.bitwise_or.reduceat(stacked, starts[nonempty], axis=0)
            out[nonempty] = reduced
        return out

    def partial_query_signature(
        self, elements: Iterable[Hashable], use_elements: int
    ) -> BitVector:
        """Signature of the first ``use_elements`` elements only.

        This is the primitive behind the §5.1.3 smart strategy for ``T ⊇ Q``:
        forming the query signature from a subset of the query set weakens
        the filter but touches fewer bit slices; the executor's drop
        resolution restores exactness.
        """
        chosen = list(elements)[:use_elements]
        if not chosen:
            raise ConfigurationError("partial query signature needs >= 1 element")
        return self.set_signature(chosen)

    # ------------------------------------------------------------------
    # Drop tests
    # ------------------------------------------------------------------
    def _check_compatible(self, target: BitVector, query: BitVector) -> None:
        if target.nbits != self.signature_bits or query.nbits != self.signature_bits:
            raise ConfigurationError(
                f"signature width mismatch: scheme F={self.signature_bits}, "
                f"target={target.nbits}, query={query.nbits}"
            )

    def is_drop_superset(self, target: BitVector, query: BitVector) -> bool:
        """Drop test for ``T ⊇ Q``: target covers the query signature."""
        self._check_compatible(target, query)
        return target.covers(query)

    def is_drop_subset(self, target: BitVector, query: BitVector) -> bool:
        """Drop test for ``T ⊆ Q``: query covers the target signature."""
        self._check_compatible(target, query)
        return query.covers(target)

    def is_drop(
        self, kind: SetPredicateKind, target: BitVector, query: BitVector
    ) -> bool:
        """Conservative signature-level test for any supported predicate.

        Guarantee: if the real sets satisfy the predicate, this returns True
        (no false dismissals). False positives are possible and expected.
        """
        if kind in (SetPredicateKind.HAS_SUBSET, SetPredicateKind.CONTAINS):
            return self.is_drop_superset(target, query)
        if kind is SetPredicateKind.IN_SUBSET:
            return self.is_drop_subset(target, query)
        if kind is SetPredicateKind.EQUALS:
            return target == query
        # OVERLAPS: sets sharing an element force >= 1 shared signature bit
        # unless either set is empty (empty set has an all-zero signature).
        if target.is_zero() or query.is_zero():
            return False
        return target.intersects(query)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignatureScheme):
            return NotImplemented
        return (
            self.signature_bits == other.signature_bits
            and self.bits_per_element == other.bits_per_element
            and self.seed == other.seed
        )

    def __hash__(self) -> int:
        return hash((self.signature_bits, self.bits_per_element, self.seed))

    def __repr__(self) -> str:
        return (
            f"SignatureScheme(F={self.signature_bits}, m={self.bits_per_element}, "
            f"seed={self.seed})"
        )
