"""Packed bit-vector primitives used by the signature scheme.

Signatures are fixed-width bit strings. The paper manipulates them with
bitwise OR (superimposed coding) and bitwise containment tests. Pure-Python
per-bit loops are far too slow for a 32,000-object database with F up to
2,500 bits, so bit vectors are stored packed into ``numpy`` ``uint64`` words
and all operations are vectorized. The semantics are identical to a naive
bit-array implementation; only the constant factors change, which does not
affect the page-access counts the paper's cost model is expressed in.

Bit order convention: bit ``i`` of the vector lives in word ``i // 64`` at
in-word position ``i % 64`` (little-endian within the word). The trailing
unused bits of the last word are always zero — every public operation
preserves this invariant, and :meth:`BitVector.check_invariants` verifies it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

import numpy as np

from repro.errors import ConfigurationError

_WORD_BITS = 64

# Lookup table: population count of each byte value, used to popcount packed
# words without looping over bits.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def words_for_bits(nbits: int) -> int:
    """Number of 64-bit words needed to hold ``nbits`` bits."""
    if nbits < 0:
        raise ConfigurationError(f"bit count must be non-negative, got {nbits}")
    return (nbits + _WORD_BITS - 1) // _WORD_BITS


def _tail_mask(nbits: int) -> np.uint64:
    """Mask selecting the valid bits of the final word of an nbits vector."""
    used = nbits % _WORD_BITS
    if used == 0:
        return np.uint64(0xFFFFFFFFFFFFFFFF)
    return np.uint64((1 << used) - 1)


def popcount_words(words: np.ndarray) -> int:
    """Total number of set bits across an array of uint64 words."""
    as_bytes = words.view(np.uint8)
    return int(_POPCOUNT8[as_bytes].sum())


class BitVector:
    """A fixed-length bit vector packed into uint64 words.

    Instances are mutable; the bitwise operators (``|``, ``&``, ``~``) return
    new vectors, while the ``set_bit`` / ``or_with`` style methods mutate in
    place. Equality compares length and content.
    """

    __slots__ = ("nbits", "words")

    def __init__(self, nbits: int, words: np.ndarray | None = None):
        if nbits <= 0:
            raise ConfigurationError(f"bit vector length must be positive, got {nbits}")
        self.nbits = nbits
        nwords = words_for_bits(nbits)
        if words is None:
            self.words = np.zeros(nwords, dtype=np.uint64)
        else:
            if words.dtype != np.uint64 or words.shape != (nwords,):
                raise ConfigurationError(
                    f"backing array must be uint64[{nwords}], got {words.dtype}{words.shape}"
                )
            self.words = words

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_positions(cls, nbits: int, positions: Iterable[int]) -> "BitVector":
        """Build a vector with the given bit positions set."""
        vec = cls(nbits)
        for pos in positions:
            vec.set_bit(pos)
        return vec

    @classmethod
    def from_bitstring(cls, text: str) -> "BitVector":
        """Build a vector from a string like ``"01010100"``.

        Position 0 is the leftmost character, matching the paper's figures.
        """
        cleaned = text.replace(" ", "")
        if not cleaned or any(c not in "01" for c in cleaned):
            raise ConfigurationError(f"not a bit string: {text!r}")
        return cls.from_positions(
            len(cleaned), (i for i, c in enumerate(cleaned) if c == "1")
        )

    @classmethod
    def from_bytes(cls, nbits: int, data: bytes) -> "BitVector":
        """Inverse of :meth:`to_bytes`."""
        nwords = words_for_bits(nbits)
        expected = nwords * 8
        if len(data) != expected:
            raise ConfigurationError(
                f"expected {expected} bytes for {nbits} bits, got {len(data)}"
            )
        words = np.frombuffer(data, dtype="<u8").astype(np.uint64).copy()
        vec = cls(nbits, words)
        vec.words[-1] &= _tail_mask(nbits)
        return vec

    def copy(self) -> "BitVector":
        return BitVector(self.nbits, self.words.copy())

    # ------------------------------------------------------------------
    # Bit access
    # ------------------------------------------------------------------
    def _check_pos(self, pos: int) -> None:
        if not 0 <= pos < self.nbits:
            raise IndexError(f"bit position {pos} out of range [0, {self.nbits})")

    def set_bit(self, pos: int) -> None:
        self._check_pos(pos)
        self.words[pos // _WORD_BITS] |= np.uint64(1 << (pos % _WORD_BITS))

    def clear_bit(self, pos: int) -> None:
        self._check_pos(pos)
        self.words[pos // _WORD_BITS] &= np.uint64(
            ~(1 << (pos % _WORD_BITS)) & 0xFFFFFFFFFFFFFFFF
        )

    def get_bit(self, pos: int) -> bool:
        self._check_pos(pos)
        word = int(self.words[pos // _WORD_BITS])
        return bool((word >> (pos % _WORD_BITS)) & 1)

    def __getitem__(self, pos: int) -> bool:
        return self.get_bit(pos)

    def set_positions(self) -> List[int]:
        """Sorted list of positions whose bit is 1."""
        result: List[int] = []
        for widx in np.nonzero(self.words)[0]:
            word = int(self.words[widx])
            base = int(widx) * _WORD_BITS
            while word:
                low = word & -word
                result.append(base + low.bit_length() - 1)
                word ^= low
        return result

    def zero_positions(self) -> List[int]:
        """Sorted list of positions whose bit is 0."""
        ones = set(self.set_positions())
        return [i for i in range(self.nbits) if i not in ones]

    def iter_bits(self) -> Iterator[bool]:
        for i in range(self.nbits):
            yield self.get_bit(i)

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------
    def popcount(self) -> int:
        """Number of set bits (the signature *weight*)."""
        return popcount_words(self.words)

    def _require_same_length(self, other: "BitVector") -> None:
        if self.nbits != other.nbits:
            raise ConfigurationError(
                f"length mismatch: {self.nbits} vs {other.nbits}"
            )

    def or_with(self, other: "BitVector") -> None:
        """In-place bitwise OR (superimposed-coding accumulation)."""
        self._require_same_length(other)
        np.bitwise_or(self.words, other.words, out=self.words)

    def and_with(self, other: "BitVector") -> None:
        self._require_same_length(other)
        np.bitwise_and(self.words, other.words, out=self.words)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._require_same_length(other)
        return BitVector(self.nbits, self.words | other.words)

    def __and__(self, other: "BitVector") -> "BitVector":
        self._require_same_length(other)
        return BitVector(self.nbits, self.words & other.words)

    def __invert__(self) -> "BitVector":
        inverted = ~self.words
        vec = BitVector(self.nbits, inverted.astype(np.uint64))
        vec.words[-1] &= _tail_mask(self.nbits)
        return vec

    def is_zero(self) -> bool:
        return not self.words.any()

    def covers(self, other: "BitVector") -> bool:
        """True iff every bit set in ``other`` is also set in ``self``.

        This is the signature containment test at the heart of both query
        conditions: a target signature *covers* the query signature for
        ``T ⊇ Q`` drops, and the query signature covers the target signature
        for ``T ⊆ Q`` drops.
        """
        self._require_same_length(other)
        return bool(np.array_equal(other.words & self.words, other.words))

    def intersects(self, other: "BitVector") -> bool:
        """True iff the two vectors share at least one set bit."""
        self._require_same_length(other)
        return bool((self.words & other.words).any())

    # ------------------------------------------------------------------
    # Serialization & dunder plumbing
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Little-endian packed representation (whole words)."""
        return self.words.astype("<u8").tobytes()

    def to_bitstring(self) -> str:
        """Render as a 0/1 string, position 0 leftmost (paper's notation)."""
        return "".join("1" if b else "0" for b in self.iter_bits())

    def check_invariants(self) -> None:
        """Raise if the unused tail bits of the last word are not zero."""
        tail = int(self.words[-1]) & ~int(_tail_mask(self.nbits)) & 0xFFFFFFFFFFFFFFFF
        if tail:
            raise ConfigurationError("tail bits beyond nbits are set")

    def __len__(self) -> int:
        return self.nbits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self.nbits == other.nbits and bool(
            np.array_equal(self.words, other.words)
        )

    def __hash__(self) -> int:
        return hash((self.nbits, self.words.tobytes()))

    def __repr__(self) -> str:
        if self.nbits <= 64:
            return f"BitVector({self.to_bitstring()!r})"
        return f"BitVector(nbits={self.nbits}, weight={self.popcount()})"


def stack_vectors(vectors: Sequence[BitVector]) -> np.ndarray:
    """Stack equal-length vectors into a 2-D uint64 matrix (row per vector).

    Used by the in-memory SSF scan path: containment of one query signature
    against many target signatures reduces to a vectorized matrix test.
    """
    if not vectors:
        return np.zeros((0, 0), dtype=np.uint64)
    nbits = vectors[0].nbits
    for vec in vectors:
        if vec.nbits != nbits:
            raise ConfigurationError("cannot stack vectors of differing lengths")
    return np.stack([vec.words for vec in vectors])


def rows_covering(matrix: np.ndarray, query: BitVector) -> np.ndarray:
    """Row indices of ``matrix`` whose bit set is a superset of ``query``.

    Vectorized form of :meth:`BitVector.covers` applied row-wise; this is the
    `T ⊇ Q` drop test over a whole signature file at once.
    """
    if matrix.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    masked = matrix & query.words
    hits = np.all(masked == query.words, axis=1)
    return np.nonzero(hits)[0]


def rows_covered_by(matrix: np.ndarray, query: BitVector) -> np.ndarray:
    """Row indices of ``matrix`` whose bit set is a subset of ``query``.

    Vectorized `T ⊆ Q` drop test: every "1" in the row must appear in the
    query signature.
    """
    if matrix.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    masked = matrix & query.words
    hits = np.all(masked == matrix, axis=1)
    return np.nonzero(hits)[0]
