"""Design-parameter tuning (paper §5.1.2, §5.1.3, §5.2.2, Appendix C).

The paper's central tuning insight: for BSSF as a *set* access facility, the
text-retrieval default ``m = m_opt`` (which minimizes the false-drop
probability) is **not** optimal for total retrieval cost — a much smaller m
(2 or 3) wins, because the number of bit slices read for ``T ⊇ Q`` grows with
the query-signature weight ``m_q``.

This module provides:

* ``optimal_query_elements`` — the §5.1.3 smart-``T ⊇ Q`` parameter: how many
  of the query's elements to actually use when forming the query signature.
* ``dq_opt`` — Appendix C's ``D_q^opt`` for smart ``T ⊆ Q``. The formula as
  printed in our source text is OCR-garbled, so it is re-derived here from
  the stated method (differentiate the approximate RC with the actual-drop
  term dropped); the derivation is in the docstring and checked numerically
  by the test suite against brute-force minimization.
* ``optimal_zero_slices`` — the corresponding number of zero slices to
  examine for queries with ``Dq <= D_q^opt``.
* ``best_m_for_retrieval`` — ablation helper: the integer m minimizing the
  BSSF retrieval cost at a design point (used to confirm "small m wins").
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import ConfigurationError


def dq_opt(
    F: int,
    m: int,
    Dt: int,
    slice_pages: int,
    resolution_pages: float,
) -> float:
    """Appendix C: the query cardinality minimizing BSSF ``T ⊆ Q`` cost.

    With the actual drops neglected, the approximate retrieval cost is::

        RC(Dq) ≈ S · (F - m_q) + Fd · C
               = S · F · x + (1 - x)^(m Dt) · C,   x = e^(-m Dq / F)

    where ``S = slice_pages`` is the pages per bit-slice file and
    ``C = resolution_pages = SC_OID + Pu · N`` is the page cost paid when the
    filter passes everything. Setting ``dRC/dx = 0``::

        S·F = m·Dt·(1 - x)^(m·Dt - 1) · C
        x*  = 1 - (S·F / (m·Dt·C))^(1 / (m·Dt - 1))
        D_q^opt = -(F / m) · ln(x*)

    For parameter ranges of interest ``S·F << m·Dt·C`` so ``x*`` is in (0, 1)
    and the stationary point is the global minimum of the convex-in-x cost.
    """
    if F <= 0 or m <= 0 or Dt <= 0:
        raise ConfigurationError("need F, m, Dt > 0")
    if slice_pages <= 0 or resolution_pages <= 0:
        raise ConfigurationError("need slice_pages > 0 and resolution_pages > 0")
    exponent_den = m * Dt - 1
    if exponent_den <= 0:
        raise ConfigurationError("need m * Dt > 1 for a stationary point")
    ratio = (slice_pages * F) / (m * Dt * resolution_pages)
    if ratio >= 1.0:
        # Scanning slices always costs more than resolving everything; the
        # optimum degenerates to examining nothing (Dq -> infinity).
        return math.inf
    x_star = 1.0 - ratio ** (1.0 / exponent_den)
    if x_star <= 0.0:
        return math.inf
    return -(F / m) * math.log(x_star)


def optimal_zero_slices(
    F: int,
    m: int,
    Dt: int,
    slice_pages: int,
    resolution_pages: float,
) -> int:
    """Number of zero slices to examine under the smart ``T ⊆ Q`` strategy.

    At ``Dq = D_q^opt`` the naive strategy examines ``F - m_q = F·x*``
    slices; the smart strategy freezes that count for all smaller ``Dq``
    (examining more slices cannot pay off once the drop count is ~0).
    """
    d_opt = dq_opt(F, m, Dt, slice_pages, resolution_pages)
    if math.isinf(d_opt):
        return 0
    x_star = math.exp(-m * d_opt / F)
    k = round(F * x_star)
    return max(0, min(F, k))


def optimal_query_elements(
    cost_at: Callable[[int], float],
    available_elements: int,
) -> int:
    """§5.1.3 generalized: the element count minimizing a per-count cost.

    ``cost_at(k)`` must give the total retrieval cost when the query
    signature is formed from ``k`` of the query's elements. The paper's
    m = 2 rule ("use two arbitrary elements when Dq >= 3") falls out of this
    search for its parameter values; the search form also covers m = 1, 3...

    Ties are broken toward fewer elements (cheaper signature formation).
    """
    if available_elements < 1:
        raise ConfigurationError("query must have at least one element")
    best_k = 1
    best_cost = cost_at(1)
    for k in range(2, available_elements + 1):
        cost = cost_at(k)
        if cost < best_cost:
            best_cost = cost
            best_k = k
    return best_k


def best_m_for_retrieval(
    cost_at_m: Callable[[int], float],
    max_m: int,
) -> int:
    """The integer ``m`` in [1, max_m] minimizing a retrieval-cost callable.

    Used by the ablation bench to demonstrate the paper's conclusion that a
    far smaller m than ``m_opt`` should be used for BSSF set access.
    """
    if max_m < 1:
        raise ConfigurationError("max_m must be >= 1")
    best_m = 1
    best_cost = cost_at_m(1)
    for m in range(2, max_m + 1):
        cost = cost_at_m(m)
        if cost < best_cost:
            best_cost = cost
            best_m = m
    return best_m
