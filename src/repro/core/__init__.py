"""Core signature-file machinery: bit vectors, hashing, superimposed coding,
false-drop theory, and design-parameter tuning.

This subpackage is the paper's primary contribution in executable form; the
storage-backed file organizations (SSF / BSSF) live in :mod:`repro.access`.
"""

from repro.core.bits import BitVector
from repro.core.false_drop import (
    expected_weight,
    false_drop_partial_query,
    false_drop_partial_zero_slices,
    false_drop_subset,
    false_drop_superset,
    false_drop_superset_optimal,
    optimal_m_subset,
    optimal_m_superset,
    rounded_optimal_m,
)
from repro.core.hashing import ElementHasher, stable_element_key
from repro.core.signature import SetPredicateKind, SignatureScheme
from repro.core.tuning import (
    best_m_for_retrieval,
    dq_opt,
    optimal_query_elements,
    optimal_zero_slices,
)

__all__ = [
    "BitVector",
    "ElementHasher",
    "SetPredicateKind",
    "SignatureScheme",
    "best_m_for_retrieval",
    "dq_opt",
    "expected_weight",
    "false_drop_partial_query",
    "false_drop_partial_zero_slices",
    "false_drop_subset",
    "false_drop_superset",
    "false_drop_superset_optimal",
    "optimal_m_subset",
    "optimal_m_superset",
    "optimal_query_elements",
    "optimal_zero_slices",
    "rounded_optimal_m",
    "stable_element_key",
]
