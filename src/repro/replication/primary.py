"""Primary-side replication: WAL shipping source and merkle sync answers.

:class:`ReplicationSource` wraps the primary :class:`~repro.objects.database
.Database` (whose WAL must be attached) and gives the network layer
everything log shipping needs, with no socket knowledge of its own:

* :meth:`subscribe` / :meth:`unsubscribe` — per-replica cursors with lag
  accounting in ``replication.*`` metrics;
* :meth:`records_since` — raw record payloads past a watermark, base64'd
  for the JSON wire (the replica re-frames them byte-identically);
* :meth:`sync_response` — the merkle anti-entropy answer: compare the
  subscriber's chunk digests against ours under a quiesced database and
  ship only the differing page ranges plus the catalog, split across
  budgeted ``SYNC_PAGES`` frames so no diff can outgrow the frame cap;
* :meth:`status` — the operator surface behind ``PONG`` and ``\\replicas``.
"""

from __future__ import annotations

import base64
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import wire
from repro.errors import ReplicationError, StaleSubscriberError
from repro.obs.metrics import REGISTRY
from repro.replication.merkle import (
    DEFAULT_CHUNK_PAGES,
    chunk_ranges,
    decode_tree,
    diff_chunks,
    store_trees,
)

__all__ = ["ReplicaCursor", "ReplicationSource"]

#: page data budgeted per SYNC_PAGES frame when the caller names no cap —
#: half the default frame ceiling leaves room for base64/JSON overhead
_DEFAULT_SYNC_FRAME_BYTES = wire.DEFAULT_MAX_FRAME_BYTES // 2


@dataclass
class ReplicaCursor:
    """One subscriber's progress through the primary's log."""

    name: str
    shipped_lsn: int  #: LSN just past the last record sent
    acked_lsn: int  #: LSN the replica confirmed durably applied
    subscribed_at: float = field(default_factory=time.monotonic)

    def lag_bytes(self, end_lsn: int) -> int:
        return max(0, end_lsn - self.acked_lsn)


class ReplicationSource:
    """Log-shipping source over one WAL-mode primary database."""

    def __init__(self, database):
        if database.wal is None:
            raise ReplicationError(
                "a replication source needs a WAL-mode primary "
                "(durability='wal'); this database has no log attached"
            )
        self.database = database
        self._lock = threading.Lock()
        self._cursors: Dict[int, ReplicaCursor] = {}
        self._next_id = 1
        self._m_shipped = REGISTRY.counter("replication.records_shipped")
        self._m_bytes = REGISTRY.counter("replication.bytes_shipped")
        self._m_acks = REGISTRY.counter("replication.acks")
        self._m_heartbeats = REGISTRY.counter("replication.heartbeats")
        self._m_syncs = REGISTRY.counter("replication.syncs")
        self._m_sync_chunks = REGISTRY.counter("replication.sync_chunks_shipped")
        self._m_stale = REGISTRY.counter("replication.stale_subscribers")

    @property
    def wal(self):
        return self.database.wal

    @property
    def end_lsn(self) -> int:
        return self.wal.end_lsn

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def subscribe(self, from_lsn: int, name: Optional[str] = None) -> Tuple[int, ReplicaCursor]:
        """Validate a watermark and register a cursor for it.

        ``from_lsn`` must be a record boundary the log still holds: below
        the base means a checkpoint truncated past the subscriber
        (:class:`~repro.errors.StaleSubscriberError` — only a merkle sync
        can catch it up); past the end means the replica diverged from
        this primary's history entirely.
        """
        wal = self.wal
        if from_lsn < wal.base_lsn:
            self._m_stale.inc()
            raise StaleSubscriberError(
                f"subscriber watermark {from_lsn} precedes the log's base "
                f"lsn {wal.base_lsn} (truncated by a checkpoint); run an "
                "anti-entropy sync",
                base_lsn=wal.base_lsn,
            )
        if from_lsn > wal.end_lsn:
            raise ReplicationError(
                f"subscriber watermark {from_lsn} is past this primary's "
                f"end lsn {wal.end_lsn}; the replica followed a different "
                "history and must re-sync from scratch"
            )
        if from_lsn != wal.end_lsn and all(
            record.lsn != from_lsn for record in wal.records()
        ):
            raise ReplicationError(
                f"subscriber watermark {from_lsn} is not a record boundary "
                "of this primary's log"
            )
        with self._lock:
            cursor_id = self._next_id
            self._next_id += 1
            cursor = ReplicaCursor(
                name=name or f"replica-{cursor_id}",
                shipped_lsn=from_lsn,
                acked_lsn=from_lsn,
            )
            self._cursors[cursor_id] = cursor
        self._sync_gauges()
        return cursor_id, cursor

    def unsubscribe(self, cursor_id: int) -> None:
        with self._lock:
            self._cursors.pop(cursor_id, None)
        self._sync_gauges()

    # ------------------------------------------------------------------
    # Shipping
    # ------------------------------------------------------------------
    def records_since(
        self, lsn: int, max_bytes: int
    ) -> Tuple[List[List[Any]], int]:
        """``([[lsn, b64-payload], ...], end)`` — the next shippable batch."""
        if lsn < self.wal.base_lsn:
            self._m_stale.inc()
            raise StaleSubscriberError(
                f"watermark {lsn} fell behind the log's base "
                f"{self.wal.base_lsn} mid-stream (checkpoint truncation)",
                base_lsn=self.wal.base_lsn,
            )
        payloads, end = self.wal.payloads_from(lsn, max_bytes=max_bytes)
        batch = [
            [at, base64.b64encode(payload).decode("ascii")]
            for at, payload in payloads
        ]
        return batch, end

    def note_shipped(self, cursor: ReplicaCursor, records: int, payload_bytes: int) -> None:
        self._m_shipped.inc(records)
        self._m_bytes.inc(payload_bytes)
        self._sync_gauges()

    def note_ack(self, cursor: ReplicaCursor, lsn: int) -> None:
        cursor.acked_lsn = max(cursor.acked_lsn, lsn)
        self._m_acks.inc()
        self._sync_gauges()

    def note_heartbeat(self) -> None:
        self._m_heartbeats.inc()

    def wait_for_append(self, lsn: int, timeout: float) -> bool:
        return self.wal.wait_for_append(lsn, timeout)

    # ------------------------------------------------------------------
    # Merkle anti-entropy
    # ------------------------------------------------------------------
    def sync_response(
        self, request: Dict[str, Any], *, max_bytes: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Answer one ``SYNC`` request with budgeted ``SYNC_PAGES`` frames.

        Quiesces the database (exclusive latch) so the shipped catalog,
        pages, and LSN are one consistent cut; the subscriber resumes
        tailing from exactly that LSN. Only the differing page ranges
        travel, split across as many frames as ``max_bytes`` demands (a
        range may be cut mid-run) so a large diff can never outgrow the
        wire's frame cap. Every frame repeats the cut's LSN, the first
        also carries the catalog, and ``more`` is ``True`` on all but the
        last — the subscriber reads until it sees ``more: false``.
        """
        db = self.database
        budget = max(4096, max_bytes or _DEFAULT_SYNC_FRAME_BYTES)
        chunk_pages = int(request.get("chunk_pages") or DEFAULT_CHUNK_PAGES)
        their_trees = {
            name: decode_tree(tree)
            for name, tree in (request.get("files") or {}).items()
        }
        self._m_syncs.inc()
        with db.exclusive_scope():
            db.storage.flush()
            from repro.persistence.snapshot import build_catalog

            catalog = build_catalog(db)
            lsn = self.wal.end_lsn
            store = db.storage.store
            mine = store_trees(store, chunk_pages=chunk_pages)
            # One consistent cut: every differing page image is captured
            # (base64'd) under the latch; framing happens after release.
            shipments = []
            chunks_shipped = 0
            for name, tree in sorted(mine.items()):
                theirs = their_trees.get(name)
                if theirs is None:
                    differing = list(range(tree.chunk_count))
                else:
                    differing = diff_chunks(tree, theirs)
                pages = [
                    (
                        page_no,
                        base64.b64encode(store.page_image(name, page_no))
                        .decode("ascii"),
                    )
                    for start, count in chunk_ranges(
                        differing, chunk_pages, tree.pages
                    )
                    for page_no in range(start, start + count)
                ]
                chunks_shipped += len(differing)
                shipments.append((name, tree, len(differing), pages))
        self._m_sync_chunks.inc(chunks_shipped)
        return self._frame_sync(
            shipments, catalog=catalog, lsn=lsn,
            chunk_pages=chunk_pages, budget=budget,
        )

    @staticmethod
    def _frame_sync(
        shipments, *, catalog, lsn: int, chunk_pages: int, budget: int
    ) -> List[Dict[str, Any]]:
        """Split shipments into frames whose estimated size fits ``budget``.

        Every file appears in at least one frame (an unchanged file still
        ships its metadata entry, so the subscriber keeps its local pages);
        a frame always admits at least one page, so a budget below one
        page's base64 cost degrades to one-page frames, never to zero
        progress.
        """

        def entry_for(name: str, tree, differing: int) -> Dict[str, Any]:
            return {
                "name": name,
                "pages": tree.pages,
                "total_chunks": tree.chunk_count,
                "chunks_shipped": differing,
                "ranges": [],
            }

        frames: List[Dict[str, Any]] = []
        files: List[Dict[str, Any]] = []
        # The first frame carries the catalog; count it against the budget
        # so pages spill to later frames instead of stacking on top of it.
        used = len(json.dumps(catalog, separators=(",", ":"))) + 64
        pages_in_frame = 0
        for name, tree, differing, pages in shipments:
            entry = entry_for(name, tree, differing)
            files.append(entry)
            used += 96
            run: Optional[List[Any]] = None
            next_page = None
            for page_no, encoded in pages:
                cost = len(encoded) + 32
                if pages_in_frame and used + cost > budget:
                    frames.append(
                        {
                            "lsn": lsn,
                            "chunk_pages": chunk_pages,
                            "files": files,
                            "more": True,
                        }
                    )
                    entry = entry_for(name, tree, differing)
                    files = [entry]
                    used = 96
                    pages_in_frame = 0
                    run = None
                if run is None or page_no != next_page:
                    run = [page_no, []]
                    entry["ranges"].append(run)
                run[1].append(encoded)
                next_page = page_no + 1
                used += cost
                pages_in_frame += 1
        frames.append(
            {
                "lsn": lsn,
                "chunk_pages": chunk_pages,
                "files": files,
                "more": False,
            }
        )
        frames[0]["catalog"] = catalog
        return frames

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def status(self) -> List[Dict[str, Any]]:
        """Per-replica lag, for ``PONG`` payloads and the shell."""
        end = self.end_lsn
        with self._lock:
            return [
                {
                    "name": cursor.name,
                    "shipped_lsn": cursor.shipped_lsn,
                    "acked_lsn": cursor.acked_lsn,
                    "lag_bytes": cursor.lag_bytes(end),
                }
                for cursor in self._cursors.values()
            ]

    def _sync_gauges(self) -> None:
        end = self.end_lsn
        with self._lock:
            cursors = list(self._cursors.values())
        REGISTRY.gauge("replication.replicas").set(len(cursors))
        REGISTRY.gauge("replication.max_lag_bytes").set(
            max((c.lag_bytes(end) for c in cursors), default=0)
        )
