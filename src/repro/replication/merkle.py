"""Merkle digests over page files for replication anti-entropy.

A replica whose watermark fell behind a checkpoint truncation cannot catch
up by tailing the log — the records it needs are gone. Re-shipping every
page would work but wastes the fact that most of the replica's state is
already correct. Instead both sides summarize each file as a merkle tree
over fixed-size *chunks* of pages and walk the trees top-down: equal roots
prove equal files in one comparison, and where digests differ the walk
narrows to exactly the chunks whose pages must travel.

The leaf digests come for free: :class:`~repro.storage.disk.DiskStore`
already maintains a CRC32 sidecar per page (verified on every physical
read), so a chunk digest is a SHA-256 over its pages' recorded CRCs — no
page data is touched to build a tree. CRC32 is what the storage layer
already trusts for corruption detection; anti-entropy inherits exactly
that trust boundary (this is sync repair, not an adversarial proof).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

#: pages summarized per leaf chunk — the granularity re-sync ships at
DEFAULT_CHUNK_PAGES = 8

#: children per interior node of the tree
DEFAULT_FANOUT = 16


def chunk_digests(checksums: Sequence[int], chunk_pages: int) -> List[str]:
    """One hex digest per ``chunk_pages``-sized group of page CRCs."""
    if chunk_pages < 1:
        raise ValueError(f"chunk_pages must be >= 1, got {chunk_pages}")
    digests = []
    for start in range(0, len(checksums), chunk_pages):
        group = checksums[start:start + chunk_pages]
        digests.append(
            hashlib.sha256(struct.pack(f"<{len(group)}I", *group)).hexdigest()
        )
    return digests


def _parent_level(level: Sequence[str], fanout: int) -> List[str]:
    return [
        hashlib.sha256("".join(level[i:i + fanout]).encode("ascii")).hexdigest()
        for i in range(0, len(level), fanout)
    ]


@dataclass
class MerkleTree:
    """Digest tree over one file's pages, chunked for shippable diffs.

    ``levels[0]`` is the leaf level (one digest per chunk); each higher
    level hashes ``fanout`` children; ``levels[-1]`` is a single root. An
    empty file still gets a root (the hash of nothing) so two empty files
    compare equal.
    """

    pages: int
    chunk_pages: int = DEFAULT_CHUNK_PAGES
    fanout: int = DEFAULT_FANOUT
    levels: List[List[str]] = field(default_factory=list)

    @classmethod
    def from_checksums(
        cls,
        checksums: Sequence[int],
        chunk_pages: int = DEFAULT_CHUNK_PAGES,
        fanout: int = DEFAULT_FANOUT,
    ) -> "MerkleTree":
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        leaves = chunk_digests(checksums, chunk_pages)
        levels = [leaves]
        while len(levels[-1]) > 1:
            levels.append(_parent_level(levels[-1], fanout))
        if not levels[-1]:  # empty file: a canonical empty root
            levels = [[], [hashlib.sha256(b"").hexdigest()]]
        return cls(
            pages=len(checksums),
            chunk_pages=chunk_pages,
            fanout=fanout,
            levels=levels,
        )

    @property
    def leaves(self) -> List[str]:
        return self.levels[0]

    @property
    def root(self) -> str:
        return self.levels[-1][0]

    @property
    def chunk_count(self) -> int:
        return len(self.levels[0])


def diff_chunks(mine: MerkleTree, theirs: MerkleTree) -> List[int]:
    """Leaf chunk indices of ``mine`` that differ from ``theirs``.

    Walked top-down so identical subtrees are dismissed at their highest
    shared node. A chunk ``theirs`` lacks entirely (the file grew) counts
    as differing; chunks only ``theirs`` has (the file shrank) do not —
    the receiver truncates to ``mine.pages`` anyway.
    """
    if mine.root == theirs.root and mine.pages == theirs.pages:
        return []
    if mine.chunk_pages != theirs.chunk_pages or mine.fanout != theirs.fanout:
        return list(range(mine.chunk_count))  # shapes disagree: full ship
    # Walk levels top-down, keeping only the suspect node indices per level.
    suspects = list(range(len(mine.levels[-1])))
    for depth in range(len(mine.levels) - 1, 0, -1):
        level_mine = mine.levels[depth]
        level_theirs = (
            theirs.levels[depth] if depth < len(theirs.levels) else []
        )
        next_suspects: List[int] = []
        for index in suspects:
            ours = level_mine[index]
            other = level_theirs[index] if index < len(level_theirs) else None
            if ours == other:
                continue
            child_lo = index * mine.fanout
            child_hi = min(child_lo + mine.fanout, len(mine.levels[depth - 1]))
            next_suspects.extend(range(child_lo, child_hi))
        suspects = next_suspects
    their_leaves = theirs.leaves
    return [
        index
        for index in suspects
        if index >= len(their_leaves) or mine.leaves[index] != their_leaves[index]
    ]


def chunk_ranges(indices: Sequence[int], chunk_pages: int, pages: int) -> List[Tuple[int, int]]:
    """Merge chunk indices into ``(first_page, page_count)`` ship ranges."""
    ranges: List[Tuple[int, int]] = []
    for index in sorted(set(indices)):
        start = index * chunk_pages
        count = min(chunk_pages, pages - start)
        if count <= 0:
            continue
        if ranges and ranges[-1][0] + ranges[-1][1] == start:
            ranges[-1] = (ranges[-1][0], ranges[-1][1] + count)
        else:
            ranges.append((start, count))
    return ranges


def store_trees(
    store,
    chunk_pages: int = DEFAULT_CHUNK_PAGES,
    fanout: int = DEFAULT_FANOUT,
) -> Dict[str, MerkleTree]:
    """A tree per file of a :class:`~repro.storage.disk.DiskStore`."""
    return {
        name: MerkleTree.from_checksums(
            store.page_checksums(name), chunk_pages=chunk_pages, fanout=fanout
        )
        for name in store.file_names()
    }


def encode_tree(tree: MerkleTree) -> Dict[str, object]:
    """Wire form of a tree: the receiver rebuilds upper levels itself."""
    return {
        "pages": tree.pages,
        "chunk_pages": tree.chunk_pages,
        "fanout": tree.fanout,
        "leaves": tree.leaves,
    }


def decode_tree(payload: Dict[str, object]) -> MerkleTree:
    leaves = list(payload.get("leaves") or [])
    levels = [leaves]
    fanout = int(payload.get("fanout", DEFAULT_FANOUT))
    while len(levels[-1]) > 1:
        levels.append(_parent_level(levels[-1], fanout))
    if not levels[-1]:
        levels = [[], [hashlib.sha256(b"").hexdigest()]]
    return MerkleTree(
        pages=int(payload.get("pages", 0)),
        chunk_pages=int(payload.get("chunk_pages", DEFAULT_CHUNK_PAGES)),
        fanout=fanout,
        levels=levels,
    )
