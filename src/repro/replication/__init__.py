"""Replicated serving: WAL log shipping, merkle anti-entropy, failover.

The primary side (:class:`ReplicationSource`) streams raw WAL record
payloads to subscribers from their watermark LSN; the replica side
(:class:`ReplicaDatabase`) appends them to its own byte-identical local
log and redoes them through the recovery handlers, yielding a read-only
mirror that is byte-equivalent to the primary's durable prefix. When a
checkpoint truncation outruns a replica, :mod:`repro.replication.merkle`
narrows re-sync to only the differing page ranges.
"""

from repro.replication.merkle import (
    DEFAULT_CHUNK_PAGES,
    DEFAULT_FANOUT,
    MerkleTree,
    chunk_digests,
    chunk_ranges,
    diff_chunks,
    store_trees,
)
from repro.replication.primary import ReplicaCursor, ReplicationSource
from repro.replication.replica import ReplicaDatabase

__all__ = [
    "DEFAULT_CHUNK_PAGES",
    "DEFAULT_FANOUT",
    "MerkleTree",
    "ReplicaCursor",
    "ReplicaDatabase",
    "ReplicationSource",
    "chunk_digests",
    "chunk_ranges",
    "diff_chunks",
    "store_trees",
]
