"""Replica side of log shipping: a continuously-replaying read-only mirror.

:class:`ReplicaDatabase` owns a normal :class:`~repro.objects.database
.Database` (served read-only — the facade's ``read_only`` guard rejects
direct writes) plus its *own* local WAL, and runs a tail thread against the
primary's ``WAL_SUBSCRIBE`` stream:

1. connect + handshake, then subscribe from the local watermark;
2. for each shipped record: append the raw payload to the local log first
   (byte-identical framing, so replica and primary logs share LSNs), then
   redo it through :func:`~repro.wal.replay.replay_records` — the same
   deterministic handlers recovery uses, which is what makes the replica's
   state byte-equivalent to the primary's durable prefix;
3. acknowledge the new watermark (the primary tracks per-replica lag).

If the primary answers ``stale-subscriber`` (a checkpoint truncated
records this replica never saw), the tail runs merkle anti-entropy: ship
chunk digests, receive only the differing page ranges plus the catalog,
rebuild state at the primary's LSN, reset the local log there, and resume
tailing. Disconnections reconnect with
:class:`~repro.storage.faults.RetryPolicy` backoff, forever, until
:meth:`stop` — a replica's job is to keep trying.

:meth:`promote` ends replication and turns the database into a writable
WAL-mode primary (the local log simply *is* a primary log at that point).
"""

from __future__ import annotations

import base64
import contextlib
import os
import socket
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro import wire
from repro.errors import (
    ConnectionLostError,
    ProtocolError,
    ReplicationError,
    ReproError,
    SimulatedCrashError,
    StaleSubscriberError,
)
from repro.objects.serde import decode_value as serde_decode
from repro.obs.metrics import REGISTRY
from repro.storage.faults import RetryPolicy
from repro.wal.log import WalRecord
from repro.wal.replay import recover_database, replay_records

__all__ = ["ReplicaDatabase", "DEFAULT_RECONNECT_POLICY"]

#: reconnect backoff *schedule* only: 0.05s doubling per consecutive
#: failure, clamped to _RECONNECT_BACKOFF_CAP_SECONDS in ``_backoff``.
#: ``max_attempts`` is deliberately not honored — the tail retries until
#: :meth:`ReplicaDatabase.stop`.
DEFAULT_RECONNECT_POLICY = RetryPolicy(
    max_attempts=3, backoff_seconds=0.05, multiplier=2.0
)

#: longest single pause between reconnect attempts, whatever the policy
_RECONNECT_BACKOFF_CAP_SECONDS = 1.0

_TRANSPORT_ERRORS = (
    ConnectionLostError,
    ConnectionError,
    socket.timeout,
    OSError,
)


class ReplicaDatabase:
    """A read-only, continuously-catching-up mirror of one primary.

    ``primary_url`` / ``token``
        The primary's ``sigfile://host:port`` address and, when it runs
        with auth, a token its handshake accepts.
    ``wal_dir``
        This replica's own durable directory (local log + checkpoints).
        Reopening an existing directory recovers local state first and
        re-subscribes from the recovered watermark — a restarted replica
        only fetches what it missed.
    ``name``
        How this replica introduces itself (primary-side lag accounting).
    ``chunk_pages``
        Merkle leaf granularity for anti-entropy (pages per chunk).
    ``reconnect_policy``
        Backoff *schedule* between reconnect attempts. ``max_attempts``
        is not a cap here — the tail retries until stopped.
    ``auto_start``
        Start the tail thread immediately (default). With ``False`` call
        :meth:`start` yourself (tests drive the loop manually).
    """

    def __init__(
        self,
        primary_url: str,
        wal_dir: str,
        *,
        name: Optional[str] = None,
        token: Optional[str] = None,
        page_size: int = 4096,
        pool_capacity: int = 0,
        wal_fsync: bool = True,
        chunk_pages: int = 8,
        reconnect_policy: Optional[RetryPolicy] = None,
        connect_timeout_seconds: float = 5.0,
        stall_timeout_seconds: float = 10.0,
        max_frame_bytes: int = wire.DEFAULT_MAX_FRAME_BYTES,
        auto_start: bool = True,
    ):
        from repro.client import parse_server_url

        self.primary_host, self.primary_port = parse_server_url(primary_url)
        self.wal_dir = wal_dir
        self.name = name or f"replica@{os.path.basename(os.path.abspath(wal_dir))}"
        self.token = token
        self.page_size = page_size
        self.pool_capacity = pool_capacity
        self.chunk_pages = chunk_pages
        self.reconnect_policy = reconnect_policy or DEFAULT_RECONNECT_POLICY
        self.connect_timeout_seconds = connect_timeout_seconds
        self.stall_timeout_seconds = stall_timeout_seconds
        self.max_frame_bytes = max_frame_bytes

        # Recover whatever this directory already holds (fresh dirs come
        # back empty), then detach the log: replica state advances through
        # replay of *shipped* records, never through its own logging.
        db = recover_database(
            wal_dir,
            page_size=page_size,
            pool_capacity=pool_capacity,
            wal_fsync=wal_fsync,
        )
        self.wal = db.wal
        db.wal = None
        db.read_only = True
        self.database = db

        #: the primary's end LSN as of the last heartbeat / batch
        self.primary_lsn = self.wal.end_lsn
        self.connected = False
        self.last_error: Optional[BaseException] = None
        self.promoted = False
        self._needs_sync = False
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._sock: Optional[socket.socket] = None
        self._sock_lock = threading.Lock()
        self._progress = threading.Condition()
        self._m_applied = REGISTRY.counter("replication.applied_records")
        self._m_reconnects = REGISTRY.counter("replication.reconnects")
        self._m_resyncs = REGISTRY.counter("replication.resyncs")
        if auto_start:
            self.start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> int:
        """LSN this replica has durably applied through."""
        return self.database.wal_applied_lsn

    @property
    def lag_bytes(self) -> int:
        return max(0, self.primary_lsn - self.watermark)

    @property
    def primary_url(self) -> str:
        return f"sigfile://{self.primary_host}:{self.primary_port}"

    def wait_for_lsn(self, lsn: int, timeout: float = 10.0) -> bool:
        """Block until the watermark reaches ``lsn`` (read-your-writes)."""
        import time

        deadline = time.monotonic() + timeout
        with self._progress:
            while self.watermark < lsn:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or (self._stop.is_set() and not self._thread):
                    return self.watermark >= lsn
                self._progress.wait(min(remaining, 0.25))
        return True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ReplicaDatabase":
        if self._thread is not None and self._thread.is_alive():
            return self
        if self.promoted:
            raise ReplicationError("a promoted replica cannot re-subscribe")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._tail_loop, name=f"wal-tail:{self.name}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop tailing; local state and the local log stay intact."""
        self._stop.set()
        self._close_socket()
        thread, self._thread = self._thread, None
        if thread is not None and thread.is_alive():
            thread.join(timeout=timeout)
        with self._progress:
            self._progress.notify_all()

    def close(self) -> None:
        """Stop tailing and release the local log's file handle."""
        self.stop()
        if not self.promoted:
            self.wal.close()

    def promote(self):
        """Stop replicating and become a writable WAL-mode primary.

        Any shipped-but-unapplied log tail (a crash between append and
        apply) is replayed first, then the local log attaches to the
        database — from here on it logs, checkpoints, and can itself feed
        replicas. Returns the now-writable database.
        """
        self.stop()
        db = self.database
        with db.exclusive_scope():
            pending = self.wal.records_from(db.wal_applied_lsn)
            if pending:
                with self._applying():
                    replay_records(db, pending)
            db.read_only = False
            db.attach_wal(self.wal, self.wal_dir)
        self.promoted = True
        REGISTRY.counter("replication.promotions").inc()
        return db

    def checkpoint(self) -> str:
        """Snapshot local state and truncate the local log.

        Unlike a primary checkpoint this appends *no* marker records —
        the replica's log must stay byte-identical to the primary's, so
        the snapshot is taken with logging suspended and the log is then
        truncated to the watermark by hand.
        """
        from repro.objects.database import CHECKPOINT_FILE_NAME
        from repro.persistence.snapshot import save_database

        db = self.database
        path = os.path.join(self.wal_dir, CHECKPOINT_FILE_NAME)
        with db.exclusive_scope():
            db.wal = self.wal
            try:
                with self.wal.suspended():
                    save_database(db, path)
            finally:
                db.wal = None
            self.wal.truncate_until(db.wal_applied_lsn)
        REGISTRY.counter("wal.checkpoints").inc()
        return path

    def __enter__(self) -> "ReplicaDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        state = (
            "promoted"
            if self.promoted
            else ("tailing" if self.connected else "disconnected")
        )
        return (
            f"ReplicaDatabase({self.name!r} <- {self.primary_url}, "
            f"watermark={self.watermark}, {state})"
        )

    # ------------------------------------------------------------------
    # Tail loop
    # ------------------------------------------------------------------
    def _tail_loop(self) -> None:
        failures = 0
        while not self._stop.is_set():
            try:
                sock = self._connect()
            except Exception as exc:
                # Transport faults, but also handshake refusals (auth,
                # version skew): back off and retry — never kill the tail.
                self.last_error = exc
                failures += 1
                self._backoff(failures)
                continue
            try:
                self.connected = True
                failures = 0
                self._catch_up_local()
                if self._needs_sync:
                    self._run_sync(sock)
                self._stream_from(sock)
            except StaleSubscriberError:
                # Checkpoint truncation passed us: run anti-entropy on this
                # same connection (the primary drops the stream's cursor
                # before sending the stale error, so the in-band
                # re-subscribe inside _stream_from is accepted) and keep
                # tailing. _needs_sync stays set until a sync completes, so
                # any failure in here simply retries from a fresh
                # connection. Nothing may escape this handler — sibling
                # except clauses do not catch it, and an escape would kill
                # the tail thread.
                self._needs_sync = True
                try:
                    self._run_sync(sock)
                    self._stream_from(sock)
                except StaleSubscriberError:
                    pass  # truncated again already; resync on reconnect
                except _TRANSPORT_ERRORS as exc:
                    self.last_error = exc
                    self._m_reconnects.inc()
                except Exception as exc:
                    self.last_error = exc
            except _TRANSPORT_ERRORS as exc:
                self.last_error = exc
                self._m_reconnects.inc()
            except (ReplicationError, ProtocolError, ReproError) as exc:
                # Divergence, a gap, or an apply failure: state can no
                # longer be trusted to extend by tailing — full resync.
                self.last_error = exc
                self._needs_sync = True
            except Exception as exc:
                # Defensive: a replica's tail thread must never die; treat
                # anything unforeseen like divergence and resync.
                self.last_error = exc
                self._needs_sync = True
            finally:
                self.connected = False
                self._close_socket()

    def _backoff(self, failures: int) -> None:
        delay = min(
            self.reconnect_policy.sleep_for(min(failures, 8)),
            _RECONNECT_BACKOFF_CAP_SECONDS,
        )
        if delay > 0:
            self._stop.wait(delay)

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.primary_host, self.primary_port),
            timeout=self.connect_timeout_seconds,
        )
        sock.settimeout(self.stall_timeout_seconds)
        try:
            wire.write_frame(
                sock,
                wire.HELLO,
                {"protocol": wire.PROTOCOL_VERSION, "token": self.token},
                self.max_frame_bytes,
            )
            frame = wire.read_frame(sock, self.max_frame_bytes)
            if frame is None:
                raise ConnectionLostError("primary closed during handshake")
            kind, payload = frame
            if kind == wire.ERROR:
                raise wire.decode_error(payload)
            if kind != wire.OK:
                raise ProtocolError(f"expected OK after HELLO, got kind {kind}")
        except BaseException:
            sock.close()
            raise
        with self._sock_lock:
            self._sock = sock
        return sock

    def _close_socket(self) -> None:
        with self._sock_lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                sock.close()

    def _catch_up_local(self) -> None:
        """Apply any shipped-but-unapplied tail left by a crash."""
        db = self.database
        with db.exclusive_scope():
            pending = [
                r for r in self.wal.records_from(db.wal_applied_lsn)
                if r.lsn >= db.wal_applied_lsn
            ]
            if pending:
                with self._applying():
                    with self.wal.suspended():
                        replay_records(db, pending)
            self._note_progress()

    def _stream_from(self, sock: socket.socket) -> None:
        """Subscribe at the watermark and apply frames until disconnect."""
        wire.write_frame(
            sock,
            wire.WAL_SUBSCRIBE,
            {"from_lsn": self.wal.end_lsn, "name": self.name},
            self.max_frame_bytes,
        )
        while not self._stop.is_set():
            frame = wire.read_frame(sock, self.max_frame_bytes)
            if frame is None:
                raise ConnectionLostError("primary closed the stream")
            kind, payload = frame
            if kind == wire.ERROR:
                raise wire.decode_error(payload)
            if kind == wire.BYE:
                raise ConnectionLostError("primary said BYE (drain/restart)")
            if kind == wire.HEARTBEAT:
                self.primary_lsn = int(payload.get("lsn", self.primary_lsn))
                self._ack(sock)
                continue
            if kind == wire.WAL_RECORDS:
                self._apply_batch(payload)
                self.primary_lsn = int(payload.get("end_lsn", self.primary_lsn))
                self._ack(sock)
                continue
            raise ProtocolError(
                f"unexpected frame kind {kind} on a subscription stream"
            )

    def _ack(self, sock: socket.socket) -> None:
        wire.write_frame(
            sock,
            wire.WAL_ACK,
            {"lsn": self.watermark},
            self.max_frame_bytes,
        )

    def _apply_batch(self, payload: Dict[str, Any]) -> None:
        """Append + redo one WAL_RECORDS frame, atomically vs. readers."""
        records: List[Tuple[int, bytes]] = []
        for entry in payload.get("records", []):
            lsn, encoded = entry
            records.append((int(lsn), base64.b64decode(encoded)))
        if not records:
            return
        db = self.database
        with db.exclusive_scope():
            for lsn, raw in records:
                if lsn < self.wal.end_lsn:
                    continue  # duplicate after a reconnect overlap
                if lsn > self.wal.end_lsn:
                    raise ReplicationError(
                        f"gap in shipped records: expected lsn "
                        f"{self.wal.end_lsn}, got {lsn}"
                    )
                fields = serde_decode(raw)
                if not isinstance(fields, list) or not fields:
                    raise ReplicationError(
                        f"shipped record at lsn {lsn} has no record type"
                    )
                # Log first (byte-identical to the primary's frame), then
                # redo — the same WAL discipline the primary follows.
                self.wal.append_payload(raw)
                record = WalRecord(lsn, self.wal.end_lsn, tuple(fields))
                try:
                    with self._applying():
                        with self.wal.suspended():
                            replay_records(db, [record])
                except SimulatedCrashError:
                    raise
                self._m_applied.inc()
            self._note_progress()

    @contextlib.contextmanager
    def _applying(self):
        """Lift the read-only guard while redo handlers run.

        Replay drives the same facade mutators users would call; only this
        scope may get them past :class:`~repro.errors.ReadOnlyReplicaError`.
        """
        db = self.database
        db.read_only = False
        try:
            yield
        finally:
            db.read_only = True

    def _note_progress(self) -> None:
        with self._progress:
            self._progress.notify_all()
        REGISTRY.gauge("replication.replica_watermark").set(self.watermark)

    # ------------------------------------------------------------------
    # Merkle anti-entropy
    # ------------------------------------------------------------------
    def _run_sync(self, sock: socket.socket) -> None:
        """Rebuild state from the primary, shipping only differing ranges."""
        from repro.objects.database import Database
        from repro.persistence.snapshot import populate_database
        from repro.replication.merkle import encode_tree, store_trees

        db = self.database
        db.storage.flush()
        old_store = db.storage.store
        trees = store_trees(old_store, chunk_pages=self.chunk_pages)
        wire.write_frame(
            sock,
            wire.SYNC,
            {
                "name": self.name,
                "chunk_pages": self.chunk_pages,
                "files": {
                    name: encode_tree(tree) for name, tree in trees.items()
                },
            },
            self.max_frame_bytes,
        )
        # The answer is a sequence of budgeted SYNC_PAGES frames (a large
        # diff cannot fit one frame); accumulate until "more" goes false.
        # The first frame carries the catalog; every frame repeats the
        # cut's LSN, and a file may reappear with further ranges.
        catalog: Optional[Dict[str, Any]] = None
        sync_lsn: Optional[int] = None
        shipped: Dict[str, Dict[int, bytes]] = {}
        file_pages: Dict[str, int] = {}
        more = True
        while more:
            frame = wire.read_frame(sock, self.max_frame_bytes)
            if frame is None:
                raise ConnectionLostError("primary closed during sync")
            kind, payload = frame
            if kind == wire.ERROR:
                raise wire.decode_error(payload)
            if kind != wire.SYNC_PAGES:
                raise ProtocolError(f"expected SYNC_PAGES, got kind {kind}")
            if "catalog" in payload:
                catalog = payload["catalog"]
            sync_lsn = int(payload["lsn"])
            for entry in payload.get("files", []):
                name = entry["name"]
                file_pages[name] = int(entry["pages"])
                pages_for = shipped.setdefault(name, {})
                for start, images in entry.get("ranges", []):
                    for offset, encoded in enumerate(images):
                        pages_for[int(start) + offset] = base64.b64decode(
                            encoded
                        )
            more = bool(payload.get("more", False))
        if catalog is None or sync_lsn is None:
            raise ProtocolError("sync stream ended without a catalog frame")

        page_images: Dict[str, List[bytes]] = {}
        for name, pages in file_pages.items():
            pages_for = shipped.get(name, {})
            have = (
                old_store.num_pages(name) if old_store.exists(name) else 0
            )
            images_out: List[bytes] = []
            for page_no in range(pages):
                if page_no in pages_for:
                    images_out.append(pages_for[page_no])
                elif page_no < have:
                    images_out.append(old_store.page_image(name, page_no))
                else:
                    raise ReplicationError(
                        f"sync response left page {page_no} of {name!r} "
                        "neither shipped nor locally present"
                    )
            page_images[name] = images_out

        fresh = Database(
            page_size=catalog["page_size"], pool_capacity=self.pool_capacity
        )
        populate_database(
            fresh, catalog, page_images, source=f"merkle sync of {self.name}"
        )
        with db.exclusive_scope():
            # Adopt the rebuilt internals wholesale; the facade object (and
            # its latch, which concurrent readers hold) stays the same.
            db.storage = fresh.storage
            db.objects = fresh.objects
            db._indexes = fresh._indexes
            db._degraded = fresh._degraded
            db.statistics = fresh.statistics
            db.wal_applied_lsn = sync_lsn
            self.wal.reset(sync_lsn)
            self._note_progress()
        self._needs_sync = False
        self.primary_lsn = max(self.primary_lsn, sync_lsn)
        self._m_resyncs.inc()
