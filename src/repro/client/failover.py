"""Failover-aware client: one ``QueryBackend`` over a replicated fleet.

:class:`FailoverClient` holds a :class:`~repro.client.RemoteClient` per
endpoint and routes on the role each server reports in its ``PONG``
payload (see ``TcpQueryServer._role_payload``): writes and
read-your-writes reads go to the primary, plain reads round-robin across
healthy replicas (falling back to the primary when none are). Every
transport failure trips a per-endpoint circuit breaker and marks the
topology stale, so the next request re-probes the fleet — which is how a
promotion is discovered: the old primary stops answering, the promoted
replica starts reporting ``role: "primary"``, and writes follow it there
without the caller seeing a single transport error (as long as *some*
endpoint can take the request within the retry budget).

Consistency: replicas apply the primary's log asynchronously, so a plain
read may trail a just-acknowledged write. Callers that need
read-your-writes take an LSN token from :meth:`lsn_token` (the primary's
durable end LSN) and pass it as ``min_lsn``; the client then only uses a
replica whose reported watermark has reached the token, waiting briefly
before falling back to the primary.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Union

from repro import wire
from repro.errors import (
    ConfigurationError,
    ConnectionLostError,
    ReplicationError,
)
from repro.obs.metrics import REGISTRY
from repro.query.executor import QueryResult
from repro.query.options import ExecutionOptions
from repro.storage.faults import RetryPolicy
from repro.client import RemoteClient, _TRANSPORT_ERRORS

__all__ = ["FailoverClient", "DEFAULT_FAILOVER_RETRY"]

#: per-request budget across the whole fleet (each try may hit a
#: different endpoint, so attempts ≈ endpoints it is willing to visit)
DEFAULT_FAILOVER_RETRY = RetryPolicy(
    max_attempts=6, backoff_seconds=0.05, multiplier=2.0
)


class _Endpoint:
    """One server: its client, last-known role, and a circuit breaker."""

    __slots__ = (
        "client",
        "role",
        "lsn",
        "consecutive_failures",
        "open_until",
    )

    def __init__(self, client: RemoteClient):
        self.client = client
        self.role: Optional[str] = None  # unknown until probed
        self.lsn = 0
        self.consecutive_failures = 0
        self.open_until = 0.0

    @property
    def url(self) -> str:
        return self.client.url

    def available(self, now: float) -> bool:
        """Circuit closed, or cooled down enough for a half-open trial."""
        return now >= self.open_until

    def note_success(self) -> None:
        self.consecutive_failures = 0
        self.open_until = 0.0

    def note_failure(self, threshold: int, policy: RetryPolicy, now: float) -> None:
        self.consecutive_failures += 1
        if self.consecutive_failures >= threshold:
            past = self.consecutive_failures - threshold + 1
            cooldown = min(policy.sleep_for(min(past, 8)), 5.0)
            # Jitter the re-probe instant (±15%): a fleet of clients whose
            # breakers opened together must not all half-open against the
            # recovered server on the same tick — that thundering herd can
            # knock it straight back over.
            self.open_until = now + cooldown * random.uniform(0.85, 1.15)


class FailoverClient:
    """Route queries across a primary and its replicas; survive failover.

    ``urls``
        The fleet: a sequence of ``sigfile://host:port`` endpoints (or one
        comma-separated string). Order is only a probe preference; roles
        are discovered, not configured — hand every client the same list
        and let each find the primary itself.
    ``prefer_replicas``
        Route plain reads to replicas when any are healthy (default).
        ``False`` sends everything to the primary (replicas are failover
        spares only).
    ``failure_threshold``
        Consecutive transport failures before an endpoint's circuit opens
        (it is skipped until a backoff-scaled cool-down elapses).
    ``retry_policy``
        Per-request budget across the fleet; each attempt may land on a
        different endpoint.
    ``read_your_writes_timeout_seconds``
        How long a ``min_lsn`` read will wait for a replica to catch up
        before falling back to the primary.
    """

    def __init__(
        self,
        urls: Union[str, Sequence[str]],
        *,
        token: Optional[str] = None,
        pool_size: int = 2,
        retry_policy: Optional[RetryPolicy] = None,
        failure_threshold: int = 3,
        prefer_replicas: bool = True,
        read_your_writes_timeout_seconds: float = 5.0,
        connect_timeout_seconds: float = 5.0,
        request_timeout_seconds: float = 60.0,
        max_frame_bytes: int = wire.DEFAULT_MAX_FRAME_BYTES,
    ):
        if isinstance(urls, str):
            urls = [part.strip() for part in urls.split(",") if part.strip()]
        if not urls:
            raise ConfigurationError("FailoverClient needs at least one URL")
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.retry_policy = retry_policy or DEFAULT_FAILOVER_RETRY
        self.failure_threshold = failure_threshold
        self.prefer_replicas = prefer_replicas
        self.read_your_writes_timeout_seconds = read_your_writes_timeout_seconds
        self._lock = threading.Lock()
        self._rr = 0
        self._closed = False
        self._submit_pool: Optional[ThreadPoolExecutor] = None
        self._endpoints = [
            _Endpoint(
                RemoteClient.from_url(
                    url,
                    token=token,
                    pool_size=pool_size,
                    # Member clients do not retry on their own: a failed
                    # endpoint should surface here immediately so the
                    # *fleet* can rotate, not burn time re-dialing a corpse.
                    retry_policy=RetryPolicy(max_attempts=1),
                    connect_timeout_seconds=connect_timeout_seconds,
                    request_timeout_seconds=request_timeout_seconds,
                    max_frame_bytes=max_frame_bytes,
                )
            )
            for url in urls
        ]
        self._m_failovers = REGISTRY.counter("client.failovers")
        self._m_replica_reads = REGISTRY.counter("client.replica_reads")
        self._m_primary_reads = REGISTRY.counter("client.primary_reads")
        self._m_ryw_waits = REGISTRY.counter("client.read_your_writes_waits")

    @property
    def url(self) -> str:
        """The fleet as one comma-joined URL (round-trips via `connect`)."""
        return ",".join(e.url for e in self._endpoints)

    @property
    def server_info(self) -> Dict[str, Any]:
        """Handshake info from the first endpoint that completed one."""
        for endpoint in self._endpoints:
            if endpoint.client.server_info:
                return endpoint.client.server_info
        return {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def _probe(self, endpoint: _Endpoint) -> bool:
        """Refresh one endpoint's role/LSN; returns liveness."""
        try:
            payload = endpoint.client.status()
        except _TRANSPORT_ERRORS:
            endpoint.note_failure(
                self.failure_threshold, self.retry_policy, time.monotonic()
            )
            return False
        endpoint.role = payload.get("role", "standalone")
        endpoint.lsn = int(payload.get("lsn", 0))
        endpoint.note_success()
        return True

    def refresh(self) -> Dict[str, str]:
        """Re-probe every endpoint; returns ``{url: role-or-'down'}``."""
        roles = {}
        for endpoint in self._endpoints:
            roles[endpoint.url] = (
                endpoint.role or "?" if self._probe(endpoint) else "down"
            )
        return roles

    def _primary(self, refresh_on_miss: bool = True) -> _Endpoint:
        now = time.monotonic()
        for endpoint in self._endpoints:
            if endpoint.role == "primary" and endpoint.available(now):
                return endpoint
        if refresh_on_miss:
            self._m_failovers.inc()
            self.refresh()
            return self._primary(refresh_on_miss=False)
        # Last resort: any live endpoint claiming writability ("standalone"
        # serves both roles), else fail loudly.
        for endpoint in self._endpoints:
            if endpoint.role == "standalone" and endpoint.available(now):
                return endpoint
        raise ConnectionLostError(
            "no reachable primary among "
            + ", ".join(e.url for e in self._endpoints)
        )

    #: fallback probe order for reads: the primary trivially satisfies any
    #: LSN token, standalones are writable too, unknowns might be either
    _ROLE_PREFERENCE = {"primary": 0, "standalone": 1, None: 2}

    def _replica_barred(self, endpoint: _Endpoint, min_lsn: Optional[int]) -> bool:
        """True when routing a read here would break a guarantee: with
        ``prefer_replicas`` off replicas are failover spares, never read
        targets; under a read-your-writes token a replica known to be
        below it must not serve the read."""
        if endpoint.role != "replica":
            return False
        if not self.prefer_replicas:
            return True
        return min_lsn is not None and endpoint.lsn < min_lsn

    def _read_candidates(self, min_lsn: Optional[int]) -> List[_Endpoint]:
        """Endpoints to try for a read, in preference order."""
        now = time.monotonic()
        if any(e.role is None for e in self._endpoints):
            self.refresh()
        replicas = [
            e
            for e in self._endpoints
            if e.role == "replica" and e.available(now)
        ]
        if min_lsn is not None:
            replicas = self._await_watermark(replicas, min_lsn)
        ordered: List[_Endpoint] = []
        if self.prefer_replicas and replicas:
            with self._lock:
                self._rr += 1
                start = self._rr
            ordered.extend(
                replicas[(start + i) % len(replicas)]
                for i in range(len(replicas))
            )
        # Fall back primary-first; a barred replica never joins, so a
        # token read that outran every replica lands on the primary.
        for endpoint in sorted(
            self._endpoints,
            key=lambda e: self._ROLE_PREFERENCE.get(e.role, 3),
        ):
            if (
                endpoint not in ordered
                and endpoint.available(now)
                and not self._replica_barred(endpoint, min_lsn)
            ):
                ordered.append(endpoint)
        if not ordered:
            # All circuits open (or everything filtered): try anyway —
            # except replicas that stay barred even as a last resort.
            ordered = [
                e
                for e in self._endpoints
                if not self._replica_barred(e, min_lsn)
            ]
        return ordered

    def _await_watermark(
        self, replicas: List[_Endpoint], min_lsn: int
    ) -> List[_Endpoint]:
        """Keep only replicas whose watermark reached ``min_lsn``.

        Polls briefly (replication lag is normally tiny) and gives up at
        the read-your-writes timeout — the caller then falls back to the
        primary, which trivially satisfies any token it ever issued.
        """
        ready = [e for e in replicas if e.lsn >= min_lsn]
        if ready or not replicas:
            return ready
        self._m_ryw_waits.inc()
        deadline = time.monotonic() + self.read_your_writes_timeout_seconds
        while time.monotonic() < deadline:
            for endpoint in replicas:
                if self._probe(endpoint) and endpoint.lsn >= min_lsn:
                    ready.append(endpoint)
            if ready:
                return ready
            time.sleep(0.02)
        return ready

    def lsn_token(self) -> int:
        """The primary's durable end LSN — a read-your-writes token.

        A replica read passed this token via ``min_lsn`` observes every
        write the primary had logged when the token was taken.
        """
        endpoint = self._primary()
        if not self._probe(endpoint):
            raise ConnectionLostError(f"primary {endpoint.url} stopped answering")
        if endpoint.role not in ("primary", "standalone"):
            raise ReplicationError(
                f"{endpoint.url} is no longer the primary (role "
                f"{endpoint.role!r}); re-take the token"
            )
        return endpoint.lsn

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def execute(
        self,
        text: str,
        options: Optional[ExecutionOptions] = None,
        *,
        write: bool = False,
        min_lsn: Optional[int] = None,
    ) -> QueryResult:
        """Run one query somewhere appropriate in the fleet.

        ``write=True`` pins the request to the primary (and follows a
        promotion if the primary moved). ``min_lsn`` makes a read honor a
        read-your-writes token from :meth:`lsn_token`.
        """
        return self._with_failover(
            lambda endpoint: endpoint.client.execute(text, options),
            write=write,
            min_lsn=min_lsn,
        )

    def execute_many(
        self,
        queries: List[str],
        options: Optional[ExecutionOptions] = None,
        *,
        write: bool = False,
        min_lsn: Optional[int] = None,
    ) -> List[QueryResult]:
        """Run an ordered batch on one endpoint (single round trip)."""
        if not queries:
            return []
        return self._with_failover(
            lambda endpoint: endpoint.client.execute_many(queries, options),
            write=write,
            min_lsn=min_lsn,
        )

    def submit(
        self, text: str, options: Optional[ExecutionOptions] = None
    ) -> "Future[QueryResult]":
        """Enqueue one read; resolves off-thread with the same routing."""
        with self._lock:
            if self._closed:
                raise ConnectionLostError("client is closed")
            if self._submit_pool is None:
                self._submit_pool = ThreadPoolExecutor(
                    max_workers=max(2, len(self._endpoints)),
                    thread_name_prefix="failover-client",
                )
            pool = self._submit_pool
        return pool.submit(self.execute, text, options)

    def ping(self) -> float:
        """Latency to the first endpoint that answers."""
        last_error: Optional[BaseException] = None
        for endpoint in self._endpoints:
            try:
                return endpoint.client.ping()
            except _TRANSPORT_ERRORS as exc:
                last_error = exc
        raise ConnectionLostError(
            f"no endpoint answered a ping: {last_error}"
        ) from last_error

    def status(self) -> List[Dict[str, Any]]:
        """Probe the fleet: one entry per endpoint with role/LSN/health."""
        entries = []
        for endpoint in self._endpoints:
            alive = self._probe(endpoint)
            entries.append(
                {
                    "url": endpoint.url,
                    "alive": alive,
                    "role": endpoint.role if alive else None,
                    "lsn": endpoint.lsn if alive else None,
                    "consecutive_failures": endpoint.consecutive_failures,
                }
            )
        return entries

    def _with_failover(self, call, *, write: bool, min_lsn: Optional[int]):
        policy = self.retry_policy
        last_error: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                if write:
                    candidates = [self._primary()]
                else:
                    candidates = self._read_candidates(min_lsn)
            except ConnectionLostError as exc:
                last_error = exc
                candidates = []
            for endpoint in candidates:
                try:
                    result = call(endpoint)
                except _TRANSPORT_ERRORS as exc:
                    last_error = exc
                    endpoint.note_failure(
                        self.failure_threshold,
                        self.retry_policy,
                        time.monotonic(),
                    )
                    # Whatever we knew about this endpoint is now suspect.
                    endpoint.role = None
                    continue
                endpoint.note_success()
                if not write:
                    if endpoint.role == "replica":
                        self._m_replica_reads.inc()
                    else:
                        self._m_primary_reads.inc()
                return result
            if attempt < policy.max_attempts:
                delay = policy.sleep_for(attempt)
                if delay > 0:
                    time.sleep(delay)
        raise ConnectionLostError(
            f"request failed on every endpoint after {policy.max_attempts} "
            f"round(s): {last_error}"
        ) from last_error

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._submit_pool = self._submit_pool, None
        for endpoint in self._endpoints:
            endpoint.client.close()
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "FailoverClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"FailoverClient({len(self._endpoints)} endpoint(s), "
            f"{state}: {', '.join(e.url for e in self._endpoints)})"
        )
