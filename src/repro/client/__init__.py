"""Remote client for the TCP serving edge.

:class:`RemoteClient` speaks the :mod:`repro.wire` protocol against a
:class:`~repro.server.net.TcpQueryServer` and presents the same
``QueryBackend`` surface as the in-process services — ``execute`` /
``execute_many`` / ``submit`` / ``close`` and a context manager — so code
written against :func:`repro.serving.make_service` does not care whether
the database is in-process or across the network::

    from repro import connect

    with connect("sigfile://127.0.0.1:7731") as db:
        result = db.execute('select Student where hobbies has-subset ("Chess")')

Connections are pooled (``pool_size`` sockets, dialed lazily, reused
across requests). Transport failures — a dropped socket, a dead server, a
connection refused — are retried with fresh connections per the client's
:class:`~repro.storage.faults.RetryPolicy` (queries are read-only, so a
resend is always safe); when every attempt fails the caller sees
:class:`~repro.errors.ConnectionLostError`. Errors the *server* raised are
not retried: they arrive as structured frames and re-raise here as the
same exception class the server raised (stable codes in
:mod:`repro.errors`), message intact.

``RemoteDatabase`` is the historical spelling of the same class.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlparse

from repro import wire
from repro.errors import (
    ConfigurationError,
    ConnectionLostError,
    ProtocolError,
)
from repro.obs.metrics import REGISTRY
from repro.query.executor import QueryResult
from repro.query.options import ExecutionOptions
from repro.storage.faults import RetryPolicy

__all__ = ["RemoteClient", "RemoteDatabase", "parse_server_url"]

#: three quick attempts — ~enough to ride out one server restart
DEFAULT_CLIENT_RETRY = RetryPolicy(
    max_attempts=3, backoff_seconds=0.05, multiplier=2.0
)

_TRANSPORT_ERRORS = (ConnectionLostError, ConnectionError, socket.timeout, OSError)


def parse_server_url(url: str) -> Tuple[str, int]:
    """``(host, port)`` from ``sigfile://host:port`` (or bare ``host:port``).

    The scheme is optional and ``sigfile`` or ``tcp``; the port defaults to
    :data:`repro.wire.DEFAULT_PORT`.
    """
    if "//" not in url:
        url = f"sigfile://{url}"
    parsed = urlparse(url)
    if parsed.scheme not in ("sigfile", "tcp"):
        raise ConfigurationError(
            f"unsupported server URL scheme {parsed.scheme!r} "
            "(use sigfile://host:port)"
        )
    if not parsed.hostname:
        raise ConfigurationError(f"server URL {url!r} has no host")
    return parsed.hostname, parsed.port or wire.DEFAULT_PORT


class _Connection:
    """One authenticated socket to the server."""

    __slots__ = ("sock",)

    def __init__(self, sock: socket.socket):
        self.sock = sock

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class RemoteClient:
    """Networked ``QueryBackend`` over a pooled wire-protocol transport.

    ``host`` / ``port`` / ``token``
        Server address and, when the server runs with auth, the tenant
        token presented in the handshake.
    ``pool_size``
        Maximum concurrent connections. Requests beyond it wait for a
        socket to come back to the pool.
    ``retry_policy``
        Reconnect-and-resend schedule for transport failures.
    ``connect_timeout_seconds`` / ``request_timeout_seconds``
        Dial timeout, and the per-response read timeout.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = wire.DEFAULT_PORT,
        *,
        token: Optional[str] = None,
        pool_size: int = 2,
        retry_policy: Optional[RetryPolicy] = None,
        connect_timeout_seconds: float = 5.0,
        request_timeout_seconds: float = 60.0,
        max_frame_bytes: int = wire.DEFAULT_MAX_FRAME_BYTES,
    ):
        if pool_size < 1:
            raise ConfigurationError(f"pool_size must be >= 1, got {pool_size}")
        self.host = host
        self.port = port
        self.token = token
        self.pool_size = pool_size
        self.retry_policy = retry_policy or DEFAULT_CLIENT_RETRY
        self.connect_timeout_seconds = connect_timeout_seconds
        self.request_timeout_seconds = request_timeout_seconds
        self.max_frame_bytes = max_frame_bytes
        self.server_info: Dict[str, Any] = {}
        self._cond = threading.Condition()
        self._idle: List[_Connection] = []
        self._open_count = 0
        self._closed = False
        self._ids = itertools.count(1)
        self._submit_pool: Optional[ThreadPoolExecutor] = None
        self._m_requests = REGISTRY.counter("client.requests")
        self._m_retries = REGISTRY.counter("client.transport_retries")
        self._m_errors = REGISTRY.counter("client.remote_errors")
        self._m_stale = REGISTRY.counter("client.stale_connections")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_url(cls, url: str, **kwargs: Any) -> "RemoteClient":
        """Build a client from a ``sigfile://host:port`` URL."""
        host, port = parse_server_url(url)
        return cls(host, port, **kwargs)

    @property
    def url(self) -> str:
        return f"sigfile://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Pool
    # ------------------------------------------------------------------
    def _dial(self) -> _Connection:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout_seconds
        )
        sock.settimeout(self.request_timeout_seconds)
        try:
            wire.write_frame(
                sock,
                wire.HELLO,
                {"protocol": wire.PROTOCOL_VERSION, "token": self.token},
                self.max_frame_bytes,
            )
            frame = wire.read_frame(sock, self.max_frame_bytes)
            if frame is None:
                raise ConnectionLostError("server closed during handshake")
            kind, payload = frame
            if kind == wire.ERROR:
                raise wire.decode_error(payload)
            if kind != wire.OK:
                raise ProtocolError(
                    f"expected OK to complete the handshake, got kind {kind}"
                )
            self.server_info = payload
        except BaseException:
            sock.close()
            raise
        return _Connection(sock)

    def _acquire(self) -> Tuple[_Connection, bool]:
        """``(connection, pooled)`` — pooled sockets may be stale.

        A socket that sat idle across a server restart looks healthy until
        its first use; the ``pooled`` flag lets :meth:`_roundtrip` treat a
        failure on it as "discard and re-dial" rather than a real attempt.
        """
        with self._cond:
            while True:
                if self._closed:
                    raise ConnectionLostError("client is closed")
                if self._idle:
                    return self._idle.pop(), True
                if self._open_count < self.pool_size:
                    self._open_count += 1
                    break
                self._cond.wait()
        try:
            return self._dial(), False
        except BaseException:
            with self._cond:
                self._open_count -= 1
                self._cond.notify()
            raise

    def _release(self, connection: _Connection, broken: bool) -> None:
        with self._cond:
            if broken or self._closed:
                self._open_count -= 1
                connection.close()
            else:
                self._idle.append(connection)
            self._cond.notify()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def _roundtrip(
        self, kind: int, payload: Dict[str, Any], expect: int
    ) -> Dict[str, Any]:
        """Send one request, retrying transport failures on new sockets.

        A failure on a *pooled* socket does not consume a retry attempt:
        an idle socket that died while pooled (server restart, idle
        timeout) says nothing about the server's health now, so it is
        discarded and the request immediately re-tried on a fresh dial.
        The pool is finite, so this drains stale sockets in bounded work.
        """
        policy = self.retry_policy
        last_error: Optional[BaseException] = None
        attempt = 1
        while attempt <= policy.max_attempts:
            pooled = False
            try:
                connection, pooled = self._acquire()
            except _TRANSPORT_ERRORS as exc:
                last_error = exc
            else:
                broken = True
                try:
                    wire.write_frame(
                        connection.sock, kind, payload, self.max_frame_bytes
                    )
                    frame = wire.read_frame(connection.sock, self.max_frame_bytes)
                    if frame is None or frame[0] == wire.BYE:
                        # Server went away (drain or restart): retryable.
                        raise ConnectionLostError("server closed the connection")
                    response_kind, response = frame
                    if response_kind == wire.ERROR:
                        broken = False
                        self._m_errors.inc()
                        raise wire.decode_error(response)
                    if response_kind != expect:
                        raise ProtocolError(
                            f"expected frame kind {expect}, got {response_kind}"
                        )
                    broken = False
                    self._m_requests.inc()
                    return response
                except _TRANSPORT_ERRORS as exc:
                    last_error = exc
                    if pooled:
                        self._m_stale.inc()
                finally:
                    self._release(connection, broken)
                if pooled:
                    continue  # stale idle socket: retry now, at no cost
            if attempt < policy.max_attempts:
                self._m_retries.inc()
                delay = policy.sleep_for(attempt)
                if delay > 0:
                    time.sleep(delay)
            attempt += 1
        raise ConnectionLostError(
            f"no response from {self.host}:{self.port} after "
            f"{policy.max_attempts} attempt(s): {last_error}"
        ) from last_error

    @staticmethod
    def _wire_options(
        options: Optional[ExecutionOptions],
    ) -> Optional[Dict[str, Any]]:
        return options.to_dict() if options is not None else None

    def execute(
        self, text: str, options: Optional[ExecutionOptions] = None
    ) -> QueryResult:
        """Run one query on the server and return its decoded result.

        The result carries the server-measured statistics — plan summary,
        candidate/false-drop counts, and the per-query page-access delta —
        bit-identical to an in-process run against the same database.
        """
        response = self._roundtrip(
            wire.QUERY,
            {
                "id": next(self._ids),
                "text": text,
                "options": self._wire_options(options),
            },
            wire.RESULT,
        )
        return wire.decode_result(response)

    def execute_many(
        self,
        queries: List[str],
        options: Optional[ExecutionOptions] = None,
    ) -> List[QueryResult]:
        """Run an ordered batch in one round trip."""
        if not queries:
            return []
        response = self._roundtrip(
            wire.BATCH,
            {
                "id": next(self._ids),
                "texts": list(queries),
                "options": self._wire_options(options),
            },
            wire.RESULTS,
        )
        return [wire.decode_result(item) for item in response.get("results", [])]

    def submit(
        self, text: str, options: Optional[ExecutionOptions] = None
    ) -> "Future[QueryResult]":
        """Enqueue one query; resolves off-thread over the pool."""
        with self._cond:
            if self._closed:
                raise ConnectionLostError("client is closed")
            if self._submit_pool is None:
                self._submit_pool = ThreadPoolExecutor(
                    max_workers=self.pool_size,
                    thread_name_prefix="remote-client",
                )
            pool = self._submit_pool
        return pool.submit(self.execute, text, options)

    def ping(self) -> float:
        """Round-trip a PING; returns the latency in seconds."""
        started = time.perf_counter()
        self._roundtrip(wire.PING, {"id": next(self._ids)}, wire.PONG)
        return time.perf_counter() - started

    def status(self) -> Dict[str, Any]:
        """The server's ``PONG`` payload: role, LSN, and replica lag.

        ``role`` is ``"primary"`` (WAL-mode, carries ``replicas`` lag
        entries), ``"replica"`` (read-only; ``lsn`` is its watermark), or
        ``"standalone"``. Failover clients route on exactly this.
        """
        return self._roundtrip(wire.PING, {"id": next(self._ids)}, wire.PONG)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Say goodbye on idle sockets and release the pool; idempotent."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = self._idle, []
            self._open_count -= len(idle)
            pool, self._submit_pool = self._submit_pool, None
            self._cond.notify_all()
        for connection in idle:
            try:
                wire.write_frame(
                    connection.sock, wire.GOODBYE, {}, self.max_frame_bytes
                )
            except (OSError, ProtocolError):
                pass
            connection.close()
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"RemoteClient({self.host}:{self.port}, pool={self.pool_size}, "
            f"{state})"
        )


#: Historical alias — early drafts called the client a "remote database".
RemoteDatabase = RemoteClient
