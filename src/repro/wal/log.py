"""Logical write-ahead log: durable redo records for incremental updates.

The paper's update model (§4) prices inserts and deletes against the access
facilities, but a full :func:`~repro.persistence.snapshot.save_database`
snapshot was the only durability point — every update between snapshots died
with the process. The WAL closes that gap with classic redo logging: each
mutating operation is appended to an append-only OS file, flushed and
fsynced *before* the in-memory database state changes, so after a crash the
last checkpoint snapshot plus the log tail reproduces the lost work.

On-disk layout (little-endian throughout)::

    header : magic "SIGWAL01" | u64 base_lsn
    record : u32 payload_len | u32 crc32(payload) | payload

The payload is one value in the :mod:`repro.objects.serde` tagged format —
always a list whose first element is the record type (``"insert"``,
``"delete"``, ``"create_index"``, ``"checkpoint_begin"``, ...). An LSN is a
logical byte position in the log stream: the header's ``base_lsn`` names
the position of the first record in the file, and checkpoints advance it by
rewriting the file (see :meth:`WriteAheadLog.truncate_until`), so LSNs keep
growing monotonically across the life of the database.

Tail handling mirrors real redo logs:

* a *torn tail* — the final record's frame runs past end-of-file, or the
  final record's CRC mismatches — is what a crash mid-append leaves behind;
  opening the log silently truncates it (the record never committed);
* a CRC mismatch on an *interior* record means the log itself is damaged
  and replaying past it would apply garbage:
  :class:`~repro.errors.WalCorruptError` is raised naming the LSN.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import SimulatedCrashError, TransientIOError, WalCorruptError, WalError
from repro.objects.serde import decode_value, encode_value
from repro.obs import tracer as trace
from repro.obs.metrics import REGISTRY

WAL_MAGIC = b"SIGWAL01"
WAL_FILE_NAME = "wal.log"

_HEADER = struct.Struct("<8sQ")  # magic, base_lsn
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record.

    ``lsn`` is the record's own position; ``next_lsn`` the position just
    past its frame (the LSN the database is at once the record applies).
    """

    lsn: int
    next_lsn: int
    fields: Tuple[Any, ...]

    @property
    def type(self) -> str:
        return self.fields[0]


@dataclass(frozen=True)
class WalScan:
    """Result of reading a log file front to back."""

    base_lsn: int
    end_lsn: int  #: LSN just past the last intact record
    records: List[WalRecord]
    torn_bytes: int  #: trailing bytes belonging to a half-written record


def encode_record(fields: Sequence[Any]) -> bytes:
    """Frame one record: length prefix, CRC32, serde-encoded payload."""
    payload = encode_value(list(fields))
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def scan_wal(path: str) -> WalScan:
    """Read and validate a log file without modifying it.

    Raises :class:`~repro.errors.WalError` for a bad header and
    :class:`~repro.errors.WalCorruptError` for interior corruption; a torn
    final record is reported via ``torn_bytes`` rather than raised.
    """
    with open(path, "rb") as stream:
        data = stream.read()
    if len(data) < _HEADER.size:
        raise WalError(f"wal file {path!r} is shorter than its header")
    magic, base_lsn = _HEADER.unpack_from(data, 0)
    if magic != WAL_MAGIC:
        raise WalError(f"wal file {path!r} has bad magic {magic!r}")
    records: List[WalRecord] = []
    offset = _HEADER.size
    while offset < len(data):
        lsn = base_lsn + (offset - _HEADER.size)
        frame_end = offset + _FRAME.size
        if frame_end > len(data):
            return WalScan(base_lsn, lsn, records, len(data) - offset)
        length, crc = _FRAME.unpack_from(data, offset)
        payload_end = frame_end + length
        if payload_end > len(data):
            return WalScan(base_lsn, lsn, records, len(data) - offset)
        payload = data[frame_end:payload_end]
        if zlib.crc32(payload) != crc:
            if payload_end == len(data):
                # Complete-length but corrupt final record: a torn append
                # under a crash. It never committed; drop it.
                return WalScan(base_lsn, lsn, records, len(data) - offset)
            raise WalCorruptError(
                f"wal record at lsn {lsn} fails its CRC32 check "
                f"(interior corruption in {path!r})",
                lsn=lsn,
            )
        try:
            fields = decode_value(payload)
        except Exception as exc:
            raise WalCorruptError(
                f"wal record at lsn {lsn} is undecodable: {exc}", lsn=lsn
            ) from exc
        if not isinstance(fields, list) or not fields:
            raise WalCorruptError(
                f"wal record at lsn {lsn} has no record type", lsn=lsn
            )
        next_lsn = base_lsn + (payload_end - _HEADER.size)
        records.append(WalRecord(lsn, next_lsn, tuple(fields)))
        offset = payload_end
    end_lsn = base_lsn + (len(data) - _HEADER.size)
    return WalScan(base_lsn, end_lsn, records, 0)


class WriteAheadLog:
    """Append-only redo log in ``directory`` (one ``wal.log`` file).

    Opening an existing log validates it and truncates a torn tail in
    place. ``fsync=False`` trades durability for speed (the update bench
    uses it to separate framing cost from device cost); the default
    fsyncs every append, which is the property recovery correctness
    rests on.
    """

    def __init__(
        self,
        directory: str,
        fsync: bool = True,
        fsync_interval: Optional[int] = None,
    ):
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.path = os.path.join(directory, WAL_FILE_NAME)
        self._fsync = fsync
        # Group commit: fsync only every Nth append (plus explicit sync()
        # calls). The LSM write path uses this — the log only needs to
        # cover the memtable, so a crash loses at most the records since
        # the last interval boundary, never applied-but-unlogged state.
        if fsync_interval is not None and fsync_interval < 1:
            raise WalError(
                f"fsync_interval must be >= 1, got {fsync_interval}"
            )
        self.fsync_interval = fsync_interval
        self._appends_since_sync = 0
        # Group-commit buffer: with an fsync_interval, frames accumulate
        # here and reach the device in one write+flush+fsync per interval
        # (or whenever a reader needs the file image). ``_io_lock`` orders
        # appender buffering against readers flushing from other threads.
        self._buffer = bytearray()
        self._io_lock = threading.Lock()
        #: False while replay (or any caller) suspends logging entirely.
        self.enabled = True
        #: True while a Database-level logical operation is in flight, so
        #: facility-level maintenance records are suppressed (the logical
        #: record already covers them).
        self.in_logical_op = False
        #: optional :class:`~repro.storage.faults.FaultInjector` consulted
        #: before every append (crash / torn / transient wal faults).
        self.fault_injector = None
        # Log-shipping subscribers block on this until the tail grows.
        self._append_cond = threading.Condition()
        if not os.path.exists(self.path):
            with open(self.path, "wb") as stream:
                stream.write(_HEADER.pack(WAL_MAGIC, 0))
                stream.flush()
                os.fsync(stream.fileno())
            self.base_lsn = 0
            self.end_lsn = 0
        else:
            scan = scan_wal(self.path)  # raises on interior corruption
            if scan.torn_bytes:
                size = os.path.getsize(self.path) - scan.torn_bytes
                with open(self.path, "r+b") as stream:
                    stream.truncate(size)
                REGISTRY.counter("wal.torn_tails_truncated").inc()
            self.base_lsn = scan.base_lsn
            self.end_lsn = scan.end_lsn
        self._stream = open(self.path, "r+b")
        self._stream.seek(0, os.SEEK_END)

    # ------------------------------------------------------------------
    # Logging state
    # ------------------------------------------------------------------
    @property
    def accepts_logical_records(self) -> bool:
        return self.enabled and not self.in_logical_op

    @property
    def accepts_facility_records(self) -> bool:
        """Facility-level records log only outside logical-op scopes."""
        return self.enabled and not self.in_logical_op

    @contextmanager
    def suspended(self):
        """No records at all are appended inside this scope (replay)."""
        previous = self.enabled
        self.enabled = False
        try:
            yield
        finally:
            self.enabled = previous

    @contextmanager
    def logical_op(self):
        """Suppress facility-level records while a logical record covers them."""
        previous = self.in_logical_op
        self.in_logical_op = True
        try:
            yield
        finally:
            self.in_logical_op = previous

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, fields: Sequence[Any]) -> int:
        """Durably append one record; returns its LSN.

        The frame is written, flushed and (by default) fsynced before this
        method returns — only then may the caller mutate in-memory state.
        """
        frame = encode_record(fields)
        lsn = self.end_lsn
        with trace.span("wal-append", type=str(fields[0]), lsn=lsn):
            self._maybe_fault(lsn, frame)
            REGISTRY.counter("wal.appends").inc()
            if self.fsync_interval is not None:
                # Group commit: buffer the frame; one write+flush+fsync
                # per interval amortizes the device cost across the group.
                with self._io_lock:
                    self._buffer += frame
                    self._appends_since_sync += 1
                    if self._appends_since_sync >= self.fsync_interval:
                        self._flush_buffer_locked()
            else:
                self._stream.write(frame)
                self._stream.flush()
                if self._fsync:
                    os.fsync(self._stream.fileno())
                    REGISTRY.counter("wal.fsyncs").inc()
        self._advance(lsn + len(frame))
        return lsn

    def _flush_buffer_locked(self) -> None:
        """Drain the group-commit buffer to the device (io lock held)."""
        if self._buffer:
            self._stream.write(self._buffer)
            self._buffer.clear()
        self._stream.flush()
        if self._fsync and self._appends_since_sync:
            os.fsync(self._stream.fileno())
            REGISTRY.counter("wal.fsyncs").inc()
        self._appends_since_sync = 0

    def _drain_buffer(self) -> None:
        """Make the on-disk file current before any whole-file read."""
        with self._io_lock:
            if self._buffer or self._appends_since_sync:
                self._flush_buffer_locked()

    def sync(self) -> None:
        """Force any group-committed appends to the device now."""
        self._drain_buffer()

    def append_payload(self, payload: bytes) -> int:
        """Durably append one already-encoded record payload; returns its LSN.

        The log-shipping path: a replica appends the primary's raw serde
        payload bytes so its local log is byte-identical (frame, CRC, LSN)
        to the primary's. Unlike :meth:`append` this ignores the
        ``enabled`` flag — shipping is a physical transfer, not a logical
        record the replica originated.
        """
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        lsn = self.end_lsn
        self._maybe_fault(lsn, frame)
        self._drain_buffer()
        self._stream.write(frame)
        self._stream.flush()
        REGISTRY.counter("wal.appends").inc()
        if self._fsync:
            os.fsync(self._stream.fileno())
            REGISTRY.counter("wal.fsyncs").inc()
        self._advance(lsn + len(frame))
        return lsn

    def _advance(self, end_lsn: int) -> None:
        with self._append_cond:
            self.end_lsn = end_lsn
            self._append_cond.notify_all()

    def wait_for_append(self, lsn: int, timeout: float) -> bool:
        """Block until the log grows past ``lsn`` (or ``timeout`` elapses).

        Returns True when ``end_lsn > lsn`` on wake-up. This is the
        subscriber's idle wait: the streaming loop parks here instead of
        polling, and every append wakes it.
        """
        with self._append_cond:
            if self.end_lsn > lsn:
                return True
            self._append_cond.wait(timeout)
            return self.end_lsn > lsn

    def _maybe_fault(self, lsn: int, frame: bytes) -> None:
        injector = self.fault_injector
        if injector is None:
            return
        kind = injector.wal_append_fault(lsn)
        if kind is None:
            return
        if kind == "transient":
            raise TransientIOError(f"injected transient wal fault at lsn {lsn}")
        if kind == "torn":
            # The process dies mid-append: half the frame reaches the
            # device, then the crash. Recovery must truncate this tail.
            self._drain_buffer()
            self._stream.write(frame[: max(1, len(frame) // 2)])
            self._stream.flush()
            os.fsync(self._stream.fileno())
            raise SimulatedCrashError(
                f"injected torn wal append at lsn {lsn}"
            )
        raise SimulatedCrashError(f"injected crash at wal append, lsn {lsn}")

    # ------------------------------------------------------------------
    # Reading & truncation
    # ------------------------------------------------------------------
    def records(self) -> List[WalRecord]:
        """Every intact record currently in the log (fresh scan)."""
        self._drain_buffer()
        return scan_wal(self.path).records

    def records_from(self, lsn: int) -> List[WalRecord]:
        """Intact records at or past ``lsn`` (fresh scan)."""
        self._drain_buffer()
        return [r for r in scan_wal(self.path).records if r.lsn >= lsn]

    def payloads_from(
        self, lsn: int, max_bytes: Optional[int] = None
    ) -> Tuple[List[Tuple[int, bytes]], int]:
        """Raw record payloads at or past ``lsn``: ``([(lsn, bytes)...], end)``.

        The shipping read: payload bytes are returned exactly as framed so
        a replica can re-frame them byte-identically. One consistent file
        read (safe against a concurrent :meth:`truncate_until` swapping the
        file underneath — base and offsets come from the same image); a
        torn tail mid-append is simply "no more records yet". ``max_bytes``
        bounds the summed payload size of one batch; ``end`` is the LSN
        just past the last *returned* record (or ``lsn`` when none).
        Raises :class:`~repro.errors.WalError` when ``lsn`` precedes the
        log's base (the caller's cue that only an anti-entropy sync can
        catch the subscriber up) or is not a record boundary.
        """
        self._drain_buffer()
        with open(self.path, "rb") as stream:
            data = stream.read()
        if len(data) < _HEADER.size:
            raise WalError(f"wal file {self.path!r} is shorter than its header")
        magic, base_lsn = _HEADER.unpack_from(data, 0)
        if magic != WAL_MAGIC:
            raise WalError(f"wal file {self.path!r} has bad magic {magic!r}")
        if lsn < base_lsn:
            raise WalError(
                f"lsn {lsn} precedes the log's base lsn {base_lsn} "
                "(truncated by a checkpoint)"
            )
        batch: List[Tuple[int, bytes]] = []
        offset = _HEADER.size
        taken = 0
        seen_boundary = False
        while offset < len(data):
            at = base_lsn + (offset - _HEADER.size)
            if at == lsn:
                seen_boundary = True
            frame_end = offset + _FRAME.size
            if frame_end > len(data):
                break  # torn tail: not committed yet
            length, crc = _FRAME.unpack_from(data, offset)
            payload_end = frame_end + length
            if payload_end > len(data):
                break
            payload = data[frame_end:payload_end]
            if zlib.crc32(payload) != crc:
                if payload_end == len(data):
                    break  # torn final record
                raise WalCorruptError(
                    f"wal record at lsn {at} fails its CRC32 check", lsn=at
                )
            if at >= lsn:
                # The budget always admits the first record (progress must
                # be possible even when one record exceeds max_bytes).
                if (
                    max_bytes is not None
                    and batch
                    and taken + len(payload) > max_bytes
                ):
                    break
                batch.append((at, payload))
                taken += len(payload)
                if max_bytes is not None and taken >= max_bytes:
                    offset = payload_end
                    break
            offset = payload_end
        end = base_lsn + (offset - _HEADER.size)
        if not seen_boundary and lsn != end and lsn > base_lsn:
            raise WalError(f"lsn {lsn} is not a record boundary")
        return batch, (batch[-1][0] + _FRAME.size + len(batch[-1][1])
                       if batch else lsn)

    def truncate_until(self, lsn: int) -> None:
        """Checkpoint truncation: drop records *before* ``lsn``.

        The file is atomically rewritten with ``base_lsn = lsn`` and only
        the surviving frames, so LSNs of retained records are unchanged and
        future appends continue the same LSN sequence.
        """
        if not self.base_lsn <= lsn <= self.end_lsn:
            raise WalError(
                f"truncate_until lsn {lsn} outside log range "
                f"[{self.base_lsn}, {self.end_lsn}]"
            )
        records = self.records()  # drains the group-commit buffer
        if lsn != self.end_lsn and all(r.lsn != lsn for r in records):
            raise WalError(f"lsn {lsn} is not a record boundary")
        survivors = [r for r in records if r.lsn >= lsn]
        tmp_path = f"{self.path}.tmp"
        with open(tmp_path, "wb") as stream:
            stream.write(_HEADER.pack(WAL_MAGIC, lsn))
            for record in survivors:
                stream.write(encode_record(list(record.fields)))
            stream.flush()
            os.fsync(stream.fileno())
        self._stream.close()
        os.replace(tmp_path, self.path)
        self.base_lsn = lsn
        self._appends_since_sync = 0
        self._stream = open(self.path, "r+b")
        self._stream.seek(0, os.SEEK_END)

    def reset(self, base_lsn: int) -> None:
        """Replace the log with an empty one whose base is ``base_lsn``.

        The anti-entropy landing: after a merkle sync rebuilt a replica's
        state at the primary's LSN, its old log (whose records predate the
        sync) is wholesale obsolete; tailing resumes from the sync point.
        """
        tmp_path = f"{self.path}.tmp"
        with open(tmp_path, "wb") as stream:
            stream.write(_HEADER.pack(WAL_MAGIC, base_lsn))
            stream.flush()
            os.fsync(stream.fileno())
        self._stream.close()
        os.replace(tmp_path, self.path)
        self.base_lsn = base_lsn
        self._advance(base_lsn)
        self._buffer.clear()  # buffered records predate the sync point too
        self._appends_since_sync = 0
        self._stream = open(self.path, "r+b")
        self._stream.seek(0, os.SEEK_END)

    def truncate_from(self, lsn: int) -> int:
        """Discard the tail: drop every record at or after ``lsn``.

        Work past ``lsn`` is lost, but the prefix stays replayable.
        Returns the number of records dropped.
        """
        self._drain_buffer()
        dropped, boundary = truncate_wal(self.path, lsn)
        self._stream.close()
        self._stream = open(self.path, "r+b")
        self._stream.seek(0, os.SEEK_END)
        self.end_lsn = boundary
        return dropped

    def close(self) -> None:
        if not self._stream.closed:
            self.sync()
        self._stream.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.path!r}, lsn [{self.base_lsn}, "
            f"{self.end_lsn}])"
        )


def truncate_wal(path: str, lsn: int) -> Tuple[int, int]:
    """Truncate a log file at record boundary ``lsn`` (offline-safe).

    Works on corrupt logs too — this is the repair path for an interior
    CRC mismatch: cut at (or before) the damaged LSN and the surviving
    prefix replays cleanly. Returns ``(records_dropped, new_end_lsn)``;
    the count includes the unreadable remainder as one record when the
    damage prevents framing it. Raises :class:`~repro.errors.WalError`
    when ``lsn`` is not a reachable record boundary.
    """
    with open(path, "rb") as stream:
        data = stream.read()
    if len(data) < _HEADER.size:
        raise WalError(f"wal file {path!r} is shorter than its header")
    magic, base_lsn = _HEADER.unpack_from(data, 0)
    if magic != WAL_MAGIC:
        raise WalError(f"wal file {path!r} has bad magic {magic!r}")
    if lsn < base_lsn:
        raise WalError(f"truncate lsn {lsn} precedes base lsn {base_lsn}")
    offset = _HEADER.size
    dropped = 0
    boundary: Optional[int] = None
    while offset < len(data):
        at = base_lsn + (offset - _HEADER.size)
        if at >= lsn:
            if boundary is None:
                if at != lsn:
                    raise WalError(f"lsn {lsn} is not a record boundary")
                boundary = at
            dropped += 1
        frame_end = offset + _FRAME.size
        if frame_end > len(data):
            break  # torn/corrupt remainder: counted above if past the cut
        length, _ = _FRAME.unpack_from(data, offset)
        if frame_end + length > len(data):
            break
        offset = frame_end + length
    if boundary is None:
        end = base_lsn + (offset - _HEADER.size)
        if lsn != end:
            raise WalError(f"lsn {lsn} is not a record boundary")
        boundary = end
    with open(path, "r+b") as stream:
        stream.truncate(_HEADER.size + (boundary - base_lsn))
        stream.flush()
        os.fsync(stream.fileno())
    return dropped, boundary
