"""Write-ahead logging: durable redo records, checkpoints, crash recovery.

See :mod:`repro.wal.log` for the on-disk format and
:mod:`repro.wal.replay` for recovery semantics. The usual entry points::

    db = Database(wal_dir="state/")        # fresh WAL-mode database
    db = Database.open("state/")           # recover after a crash
    db.checkpoint()                        # snapshot + truncate the log
"""

from repro.wal.log import (
    WAL_FILE_NAME,
    WalRecord,
    WalScan,
    WriteAheadLog,
    encode_record,
    scan_wal,
    truncate_wal,
)
from repro.wal.replay import recover_database, replay_records

__all__ = [
    "WAL_FILE_NAME",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "encode_record",
    "scan_wal",
    "truncate_wal",
    "recover_database",
    "replay_records",
]
