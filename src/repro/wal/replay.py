"""WAL replay: redo the log tail against a checkpoint (or fresh) database.

Recovery is classic redo-only ARIES-lite: load the last checkpoint
snapshot, then re-apply every log record whose LSN is at or past the
database's ``wal_applied_lsn`` watermark. Replay is *idempotent* — records
below the watermark are skipped without touching storage, so replaying the
same tail twice (or recovering a database that already saw part of the
tail) changes nothing, including the logical page-access counters.

Because every logged operation is deterministic (OID allocation is a
per-class serial; facility maintenance is a pure function of the operation
and prior state), redoing the tail reproduces byte-for-byte the state a
never-crashed run would have reached.

When re-applying a record trips over a damaged facility, replay falls back
to :func:`repro.recovery.rebuild.rebuild_facility` — the facility is
derived data, so reconstructing it from the (already replayed) objects is
always a correct repair.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, List, Optional

from repro.errors import (
    ObjectStoreError,
    ReproError,
    SimulatedCrashError,
    WalError,
)
from repro.objects.oid import OID
from repro.objects.schema import Attribute, AttributeKind, ClassSchema
from repro.objects.serde import decode_object
from repro.obs import tracer as trace
from repro.obs.metrics import REGISTRY
from repro.wal.log import WalRecord, WriteAheadLog

if TYPE_CHECKING:
    from repro.objects.database import Database


def recover_database(
    wal_dir: str,
    page_size: int = 4096,
    pool_capacity: int = 0,
    auto_rebuild: bool = False,
    wal_fsync: bool = True,
    wal_fsync_interval: Optional[int] = None,
) -> "Database":
    """Open a WAL directory: checkpoint + tail replay → live database.

    * no checkpoint and an empty log → a fresh empty database;
    * a torn final record (crash mid-append) is truncated silently;
    * interior log corruption raises
      :class:`~repro.errors.WalCorruptError` naming the first bad LSN —
      repair with :func:`repro.wal.log.truncate_wal` (or the CLI's
      ``wal truncate``) and recover again.

    The returned database has the log attached and keeps logging.
    """
    from repro.objects.database import (
        CHECKPOINT_FILE_NAME,
        DEFAULT_LSM_FSYNC_INTERVAL,
        Database,
    )
    from repro.persistence.snapshot import load_database

    # raises on interior damage
    wal = WriteAheadLog(
        wal_dir, fsync=wal_fsync, fsync_interval=wal_fsync_interval
    )
    try:
        checkpoint = os.path.join(wal_dir, CHECKPOINT_FILE_NAME)
        if os.path.exists(checkpoint):
            db = load_database(checkpoint, pool_capacity=pool_capacity)
        else:
            db = Database(page_size=page_size, pool_capacity=pool_capacity)
        db.auto_rebuild = auto_rebuild
        replay_records(db, wal.records())
    except BaseException:
        wal.close()
        raise
    # A database holding LSM facilities comes back in "lsm" durability:
    # group-committed fsyncs are the mode's write-path contract.
    lsm_mode = any(
        getattr(facility, "is_lsm", False)
        for per_path in db._indexes.values()
        for facility in per_path.values()
    )
    if lsm_mode and wal.fsync_interval is None and wal_fsync_interval is None:
        wal.fsync_interval = DEFAULT_LSM_FSYNC_INTERVAL
    db.attach_wal(wal, wal_dir, durability="lsm" if lsm_mode else "wal")
    return db


def replay_records(db: "Database", records: List[WalRecord]) -> int:
    """Redo ``records`` against ``db``; returns how many were applied.

    Records below ``db.wal_applied_lsn`` are skipped (idempotence); each
    applied record advances the watermark to its ``next_lsn``. ``db`` must
    not have a WAL attached yet (recovery attaches it afterwards), so
    nothing applied here is re-logged.
    """
    if db.wal is not None:
        raise WalError("replay requires the WAL to be detached (or suspended)")
    applied = 0
    with trace.span("wal-replay", records=len(records)):
        for record in records:
            if record.lsn < db.wal_applied_lsn:
                continue
            _apply(db, record)
            db.wal_applied_lsn = record.next_lsn
            applied += 1
            REGISTRY.counter("recovery.wal_replayed_records").inc()
    return applied


# ----------------------------------------------------------------------
# Per-record redo
# ----------------------------------------------------------------------
def _apply(db: "Database", record: WalRecord) -> None:
    handler = _HANDLERS.get(record.type)
    if handler is None:
        raise WalError(
            f"wal record at lsn {record.lsn} has unknown type "
            f"{record.type!r}"
        )
    try:
        handler(db, record.fields)
    except (SimulatedCrashError, WalError):
        raise
    except ReproError as exc:
        raise WalError(
            f"replaying wal record at lsn {record.lsn} "
            f"({record.type}) failed: {exc}"
        ) from exc


def _apply_define_class(db: "Database", fields) -> None:
    _, name, attrs = fields
    schema = ClassSchema(
        name=name,
        attributes=[
            Attribute(name=a[0], kind=AttributeKind(a[1]), ref_class=a[2])
            for a in attrs
        ],
    )
    db.define_class(schema)


def _apply_create_index(db: "Database", fields) -> None:
    # The params list splats positionally onto the create method, so older
    # (shorter) records — pre-LSM ones carry no lsm/flush/fanout tail —
    # replay with the method's defaults and newer ones carry their options.
    _, kind, class_name, attribute, params = fields
    if kind == "ssf":
        db.create_ssf_index(class_name, attribute, *params)
    elif kind == "bssf":
        db.create_bssf_index(class_name, attribute, *params)
    elif kind == "nix":
        db.create_nested_index(class_name, attribute, overflow_chains=params[0])
    else:
        raise WalError(f"unknown facility kind in create_index record: {kind!r}")


def _apply_insert(db: "Database", fields) -> None:
    _, class_name, oid_int, blob = fields
    values = decode_object(blob)
    # Object first: if a facility needs rebuilding, the rebuild scans the
    # object file and must see this object. The record names its OID, and
    # the explicit-OID path honors it — serial gaps are legitimate on a
    # shard, whose log holds only its hash slice of each class. A
    # checkpoint/log disagreement surfaces as "already live" here.
    oid = OID.from_int(oid_int)
    try:
        db.objects.insert_with_oid(class_name, oid, values)
    except ObjectStoreError as exc:
        raise WalError(
            f"replayed insert of {oid} failed ({exc}); "
            f"the checkpoint and log disagree"
        ) from exc
    _maintain_facilities(db, class_name, oid, old_values=None, new_values=values)


def _apply_update(db: "Database", fields) -> None:
    _, oid_int, blob = fields
    oid = OID.from_int(oid_int)
    values = decode_object(blob)
    class_name = db.objects.class_name_of(oid)
    old_values = db.objects.fetch(oid)
    db.objects.update(oid, values)
    _maintain_facilities(
        db, class_name, oid, old_values=old_values, new_values=values
    )


def _apply_delete(db: "Database", fields) -> None:
    _, oid_int = fields
    oid = OID.from_int(oid_int)
    class_name = db.objects.class_name_of(oid)
    values = db.objects.fetch(oid)
    failed = []
    for (cls, attr), per_path in db._indexes.items():
        if cls != class_name:
            continue
        for name, facility in per_path.items():
            try:
                facility.delete(frozenset(values[attr]), oid)
            except ReproError:
                failed.append((cls, attr, name))
    db.objects.delete(oid)
    # Rebuild only after the object is gone, so the reconstruction —
    # which scans live objects — cannot resurrect it.
    for cls, attr, name in failed:
        _rebuild(db, cls, attr, name)


def _apply_facility_op(db: "Database", fields) -> None:
    op, class_name, attribute, name, oid_int, elements = fields
    facility = db.index(class_name, attribute, name)
    oid = OID.from_int(oid_int)
    try:
        if op == "facility_insert":
            facility.insert(frozenset(elements), oid)
        else:
            facility.delete(frozenset(elements), oid)
    except ReproError:
        _rebuild(db, class_name, attribute, name)


def _apply_rebuild(db: "Database", fields) -> None:
    _, class_name, attribute, name = fields
    _rebuild(db, class_name, attribute, name)


def _apply_flush_index(db: "Database", fields) -> None:
    """Redo an explicit LSM memtable flush at the same history point."""
    _, class_name, attribute, name = fields
    db.index(class_name, attribute, name).flush()


def _apply_compact_index(db: "Database", fields) -> None:
    _, class_name, attribute, name = fields
    db.index(class_name, attribute, name).compact()


def _apply_checkpoint(db: "Database", fields) -> None:
    """Checkpoint markers carry no state to redo."""


def _maintain_facilities(
    db: "Database",
    class_name: str,
    oid: OID,
    old_values: Optional[dict],
    new_values: dict,
) -> None:
    """Per-facility redo of one object mutation, rebuilding on failure."""
    for (cls, attr), per_path in db._indexes.items():
        if cls != class_name:
            continue
        old_set = (
            frozenset(old_values[attr]) if old_values is not None else None
        )
        new_set = frozenset(new_values[attr])
        if old_set == new_set:
            continue
        for name, facility in per_path.items():
            try:
                if old_set is not None:
                    facility.delete(old_set, oid)
                facility.insert(new_set, oid)
            except ReproError:
                _rebuild(db, cls, attr, name)


def _rebuild(db: "Database", class_name: str, attribute: str, name: str) -> None:
    """Replay's repair path: reconstruct the facility from live objects."""
    from repro.recovery.rebuild import rebuild_facility

    REGISTRY.counter("recovery.wal_replay_rebuilds").inc()
    rebuild_facility(db, class_name, attribute, name)


_HANDLERS = {
    "define_class": _apply_define_class,
    "create_index": _apply_create_index,
    "insert": _apply_insert,
    "update": _apply_update,
    "delete": _apply_delete,
    "facility_insert": _apply_facility_op,
    "facility_delete": _apply_facility_op,
    "rebuild": _apply_rebuild,
    "flush_index": _apply_flush_index,
    "compact_index": _apply_compact_index,
    "checkpoint_begin": _apply_checkpoint,
    "checkpoint_end": _apply_checkpoint,
}
