"""The network wire protocol: length-prefixed, JSON-framed, versioned.

One frame is an 8-byte binary header followed by a JSON payload::

    offset  size  field
    0       2     magic  b"SF"
    2       1     protocol version (currently 1)
    3       1     frame kind (request or response, see the constants)
    4       4     payload length, big-endian unsigned
    8       n     payload, UTF-8 JSON

Requests carry query text and a serialized
:class:`~repro.query.options.ExecutionOptions`; responses carry rows, the
plan summary, the per-query :class:`~repro.storage.stats.IOSnapshot` delta
and timing — everything :class:`~repro.query.executor.QueryResult` holds
except the span tree (a live object graph that never crosses the wire).
Errors travel as structured ``{code, message, details}`` payloads built
from the stable codes in :mod:`repro.errors`, so the client re-raises the
same exception class the server raised.

Compatibility rules: payloads are JSON objects and every decoder ignores
unknown keys, so a newer peer may add fields freely; the version byte only
has to move for incompatible *frame* changes. A frame longer than the
receiver's ``max_frame_bytes`` is rejected before its payload is read.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple

from repro.errors import (
    ConnectionLostError,
    FrameTooLargeError,
    ProtocolError,
    RemoteError,
    ReproError,
    ShardUnavailableError,
    StaleSubscriberError,
    WalCorruptError,
    error_class_for_code,
    error_code,
)
from repro.objects.oid import OID
from repro.query.executor import QueryResult, QueryStatistics
from repro.storage.stats import FileIOCounts, IOSnapshot

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "DEFAULT_PORT",
    "HELLO",
    "QUERY",
    "BATCH",
    "PING",
    "GOODBYE",
    "WAL_SUBSCRIBE",
    "WAL_ACK",
    "SYNC",
    "OK",
    "RESULT",
    "RESULTS",
    "ERROR",
    "PONG",
    "BYE",
    "WAL_RECORDS",
    "HEARTBEAT",
    "SYNC_PAGES",
    "read_frame",
    "write_frame",
    "encode_value",
    "decode_value",
    "encode_result",
    "decode_result",
    "encode_error",
    "decode_error",
]

PROTOCOL_VERSION = 1

#: 16 MiB — generous for result sets, small enough to bound a hostile peer.
DEFAULT_MAX_FRAME_BYTES = 16 * 1024 * 1024

#: default TCP port for ``sigfile-repro serve`` ("SF" -> 0x53 0x46 -> 7731
#: is just a memorable free port, nothing magic)
DEFAULT_PORT = 7731

_MAGIC = b"SF"
_HEADER = struct.Struct(">2sBBI")

# Request frame kinds (client -> server).
HELLO = 1  # handshake: protocol version + optional auth token
QUERY = 2  # one query text + options
BATCH = 3  # many query texts + shared options
PING = 4  # liveness / latency probe
GOODBYE = 5  # orderly close
WAL_SUBSCRIBE = 6  # replica: stream WAL records from my watermark LSN
WAL_ACK = 7  # replica: records through this LSN are durably applied
SYNC = 8  # replica: merkle digests of my pages; ship what differs

# Response frame kinds (server -> client).
OK = 16  # handshake accepted
RESULT = 17  # one QueryResult
RESULTS = 18  # ordered list of QueryResults
ERROR = 19  # structured error payload
PONG = 20
BYE = 21  # server is closing this connection (drain or GOODBYE ack)
WAL_RECORDS = 22  # a batch of [lsn, base64 payload] log records
HEARTBEAT = 23  # idle stream liveness; carries the primary's end LSN
SYNC_PAGES = 24  # merkle anti-entropy: differing page ranges, budgeted
#                  into a frame sequence ("more" marks continuations)

_KNOWN_KINDS = frozenset(
    (
        HELLO, QUERY, BATCH, PING, GOODBYE, WAL_SUBSCRIBE, WAL_ACK, SYNC,
        OK, RESULT, RESULTS, ERROR, PONG, BYE,
        WAL_RECORDS, HEARTBEAT, SYNC_PAGES,
    )
)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def _recv_exact(sock: socket.socket, size: int) -> Optional[bytes]:
    """Read exactly ``size`` bytes; ``None`` on clean EOF at a boundary."""
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            if remaining == size:
                return None  # clean close between frames
            raise ConnectionLostError(
                f"peer closed mid-frame ({size - remaining}/{size} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def write_frame(
    sock: socket.socket,
    kind: int,
    payload: Dict[str, Any],
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Serialize and send one frame."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    if len(body) > max_frame_bytes:
        raise FrameTooLargeError(
            f"outgoing frame of {len(body)} bytes exceeds the "
            f"{max_frame_bytes}-byte frame limit"
        )
    sock.sendall(_HEADER.pack(_MAGIC, PROTOCOL_VERSION, kind, len(body)) + body)


def read_frame(
    sock: socket.socket,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> Optional[Tuple[int, Dict[str, Any]]]:
    """Read one frame; ``None`` when the peer closed between frames.

    Raises :class:`~repro.errors.ProtocolError` on bad magic, version skew,
    an unknown frame kind, an oversized declared length, or a payload that
    is not a JSON object, and :class:`~repro.errors.ConnectionLostError`
    when the peer vanishes mid-frame.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    magic, version, kind, length = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {_MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} "
            f"(this peer speaks {PROTOCOL_VERSION})"
        )
    if kind not in _KNOWN_KINDS:
        raise ProtocolError(f"unknown frame kind {kind}")
    if length > max_frame_bytes:
        raise FrameTooLargeError(
            f"incoming frame declares {length} bytes, over the "
            f"{max_frame_bytes}-byte frame limit"
        )
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise ConnectionLostError("peer closed after frame header")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return kind, payload


# ----------------------------------------------------------------------
# Value codec
# ----------------------------------------------------------------------
# Object attribute values are JSON plus sets and OIDs. Non-JSON types ride
# in single-key tag objects; a real dict that could be mistaken for a tag
# (any key starting with "$") is escaped as a "$dict" pair list.
def encode_value(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, OID):
        return {"$oid": value.to_int()}
    if isinstance(value, (set, frozenset)):
        return {"$set": [encode_value(v) for v in sorted(value, key=repr)]}
    if isinstance(value, tuple):
        return {"$tuple": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        if any(not isinstance(k, str) or k.startswith("$") for k in value):
            return {
                "$dict": [
                    [encode_value(k), encode_value(v)] for k, v in value.items()
                ]
            }
        return {k: encode_value(v) for k, v in value.items()}
    raise ProtocolError(
        f"cannot serialize {type(value).__name__!r} value over the wire"
    )


def decode_value(value: Any) -> Any:
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        if len(value) == 1:
            ((tag, inner),) = value.items()
            if tag == "$oid":
                return OID.from_int(inner)
            if tag == "$set":
                return {decode_value(v) for v in inner}
            if tag == "$tuple":
                return tuple(decode_value(v) for v in inner)
            if tag == "$dict":
                return {decode_value(k): decode_value(v) for k, v in inner}
        return {k: decode_value(v) for k, v in value.items()}
    return value


# ----------------------------------------------------------------------
# Result codec
# ----------------------------------------------------------------------
def _encode_io(snapshot: Optional[IOSnapshot]) -> Optional[Dict[str, Any]]:
    if snapshot is None:
        return None
    return {
        name: [
            counts.logical_reads,
            counts.logical_writes,
            counts.physical_reads,
            counts.physical_writes,
        ]
        for name, counts in snapshot.files()
    }


def _decode_io(payload: Optional[Dict[str, Any]]) -> Optional[IOSnapshot]:
    if payload is None:
        return None
    return IOSnapshot(
        {
            name: FileIOCounts(*counts[:4])
            for name, counts in payload.items()
        }
    )


def encode_result(result: QueryResult) -> Dict[str, Any]:
    """Serialize one :class:`QueryResult` (the span tree stays behind)."""
    stats = result.statistics
    payload: Dict[str, Any] = {}
    if result.partial:
        # Only degraded scatter-gather answers carry these; omitting them
        # otherwise keeps complete results byte-stable across versions.
        payload["partial"] = True
        payload["missing_shards"] = list(result.missing_shards)
    return {
        **payload,
        "rows": [
            [oid.to_int(), encode_value(values)] for oid, values in result.rows
        ],
        "statistics": {
            "plan": stats.plan,
            "candidates": stats.candidates,
            "false_drops": stats.false_drops,
            "results": stats.results,
            "elapsed_seconds": stats.elapsed_seconds,
            "detail": encode_value(stats.detail),
            "io": _encode_io(stats.io),
        },
    }


def decode_result(payload: Dict[str, Any]) -> QueryResult:
    stats_payload = payload.get("statistics") or {}
    statistics = QueryStatistics(
        plan=stats_payload.get("plan", ""),
        candidates=stats_payload.get("candidates", 0),
        false_drops=stats_payload.get("false_drops", 0),
        results=stats_payload.get("results", 0),
        io=_decode_io(stats_payload.get("io")),
        elapsed_seconds=stats_payload.get("elapsed_seconds", 0.0),
        detail=decode_value(stats_payload.get("detail") or {}),
    )
    rows = [
        (OID.from_int(oid_int), decode_value(values))
        for oid_int, values in payload.get("rows", [])
    ]
    return QueryResult(
        rows=rows,
        statistics=statistics,
        trace=None,
        partial=bool(payload.get("partial", False)),
        missing_shards=[str(s) for s in payload.get("missing_shards", [])],
    )


# ----------------------------------------------------------------------
# Error codec
# ----------------------------------------------------------------------
def encode_error(exc: BaseException) -> Dict[str, Any]:
    """Structured error payload: stable code, message, typed details."""
    details: Dict[str, Any] = {"class": type(exc).__name__}
    if isinstance(exc, WalCorruptError):
        details["lsn"] = exc.lsn
    if isinstance(exc, StaleSubscriberError):
        details["base_lsn"] = exc.base_lsn
    if isinstance(exc, ShardUnavailableError):
        details["missing_shards"] = list(exc.missing_shards)
    if isinstance(exc, RemoteError):
        # Re-relaying (e.g. through a proxy): keep the original code.
        return {
            "code": exc.remote_code,
            "message": str(exc),
            "details": details,
        }
    return {"code": error_code(exc), "message": str(exc), "details": details}


def decode_error(payload: Dict[str, Any]) -> ReproError:
    """Rebuild the server's exception; unknown codes become RemoteError."""
    code = payload.get("code", "internal")
    message = payload.get("message", "remote error")
    details = payload.get("details") or {}
    cls = error_class_for_code(code)
    if cls is None:
        return RemoteError(message, remote_code=code)
    if cls is WalCorruptError:
        return WalCorruptError(message, lsn=details.get("lsn", -1))
    if cls is StaleSubscriberError:
        return StaleSubscriberError(message, base_lsn=details.get("base_lsn", -1))
    if cls is ShardUnavailableError:
        return ShardUnavailableError(
            message, missing_shards=details.get("missing_shards")
        )
    try:
        return cls(message)
    except TypeError:
        # A class whose constructor grew extra required arguments on the
        # server side: degrade to RemoteError rather than failing to raise.
        return RemoteError(message, remote_code=code)
