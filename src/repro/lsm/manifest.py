"""Dual-slot, versioned run manifest with atomic installs.

The manifest records which runs are live for one LSM facility. It is the
classic two-slot scheme: installs alternate between slot files ``a`` and
``b``, writing the blob pages first and the self-validating header page
last. A reader considers a slot valid only if its header magic, blob
length and CRC32 all check out (and every page passes the store's CRC
sidecar), then loads the valid slot with the highest version. A crash or
torn write during an install therefore damages only the slot being
written — the loader falls back to the other slot, i.e. the previous run
set, which is exactly the "torn manifest rolls back" invariant the crash
matrix asserts.

Slot payloads are one deterministic serde value (``[version,
[run states...]]``), so identical logical installs produce identical
pages — a property the WAL crash matrix's byte-equivalence proof relies
on.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Optional, Tuple

from repro.errors import CorruptPageError, StorageError
from repro.objects.serde import decode_value, encode_value
from repro.storage.page import Page
from repro.storage.paged_file import StorageManager

_HEADER = struct.Struct("<8sQII")  # magic, version, blob length, crc32(blob)
_MAGIC = b"SIGMAN01"

SLOT_SUFFIXES = ("a", "b")


def manifest_slot_name(file_prefix: str, suffix: str) -> str:
    return f"{file_prefix}:manifest:{suffix}"


class RunManifest:
    """Atomic versioned record of a facility's live run set."""

    def __init__(self, storage: StorageManager, file_prefix: str):
        self._storage = storage
        self.file_prefix = file_prefix
        self.version = 0

    # ------------------------------------------------------------------
    # Install
    # ------------------------------------------------------------------
    def install(self, run_states: List[list]) -> int:
        """Durably install a new run set; returns the new version.

        Writes the slot *not* holding the current version (alternation is
        deterministic in the version count), blob pages before the header
        page, so a torn install never invalidates the live slot.
        """
        self.version += 1
        suffix = SLOT_SUFFIXES[self.version % 2]
        blob = encode_value([self.version, run_states])
        slot = self._open_or_create(manifest_slot_name(self.file_prefix, suffix))
        page_size = slot.page_size
        blob_pages = (len(blob) + page_size - 1) // page_size
        while slot.num_pages < 1 + blob_pages:
            slot.append_page()
        for index in range(blob_pages):
            chunk = blob[index * page_size:(index + 1) * page_size]
            page = Page(page_size, chunk.ljust(page_size, b"\x00"))
            slot.write_page(1 + index, page)
        header = Page(page_size)
        header.data[: _HEADER.size] = _HEADER.pack(
            _MAGIC, self.version, len(blob), zlib.crc32(blob)
        )
        slot.write_page(0, header)
        return self.version

    def _open_or_create(self, name: str):
        try:
            return self._storage.open_file(name)
        except StorageError:
            return self._storage.create_file(name)

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def load(self) -> Tuple[List[list], bool]:
        """Read the newest valid slot; returns ``(run_states, rolled_back)``.

        ``rolled_back`` is True when one slot exists but fails validation —
        the torn-install case — and the other (older) slot was used. A
        facility with no manifest files yet loads as an empty run set.
        """
        candidates = []
        damaged = 0
        for suffix in SLOT_SUFFIXES:
            name = manifest_slot_name(self.file_prefix, suffix)
            try:
                slot = self._storage.open_file(name)
            except StorageError:
                continue
            loaded = self._read_slot(slot)
            if loaded is None:
                damaged += 1
            else:
                candidates.append(loaded)
        if not candidates:
            if damaged:
                raise StorageError(
                    f"both manifest slots of {self.file_prefix!r} are damaged"
                )
            self.version = 0
            return [], False
        version, run_states = max(candidates, key=lambda item: item[0])
        self.version = version
        return run_states, damaged > 0

    def _read_slot(self, slot) -> Optional[Tuple[int, List[list]]]:
        try:
            header = bytes(slot.read_page(0).data[: _HEADER.size])
            magic, version, length, crc = _HEADER.unpack(header)
            if magic != _MAGIC:
                return None
            page_size = slot.page_size
            blob_pages = (length + page_size - 1) // page_size
            if slot.num_pages < 1 + blob_pages:
                return None
            blob = b"".join(
                bytes(slot.read_page(1 + index).data) for index in range(blob_pages)
            )[:length]
            if zlib.crc32(blob) != crc:
                return None
            payload_version, run_states = decode_value(blob)
            if payload_version != version:
                return None
            return version, run_states
        except (CorruptPageError, StorageError, struct.error):
            return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def slot_names(self) -> List[str]:
        return [
            manifest_slot_name(self.file_prefix, suffix) for suffix in SLOT_SUFFIXES
        ]

    def storage_pages(self) -> int:
        pages = 0
        for name in self.slot_names():
            try:
                pages += self._storage.open_file(name).num_pages
            except StorageError:
                continue
        return pages

    def __repr__(self) -> str:
        return f"RunManifest(prefix={self.file_prefix!r}, version={self.version})"
