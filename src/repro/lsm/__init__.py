"""LSM-structured write path for signature facilities.

In-place facility maintenance (ROADMAP item 2) mutates signature files
under the database write latch and pays one WAL fsync per update. The LSM
path restructures writes as append-only:

* :class:`~repro.lsm.memtable.MemTable` — absorbs inserts/deletes in
  memory; the WAL alone makes them durable, so fsyncs can be amortized
  with a group-commit interval.
* :class:`~repro.lsm.run.SignatureRun` — an immutable, sequentially
  written signature segment (SSF- or BSSF-format, reusing the packed
  kernels and per-page CRC sidecars) sealed from a flushed memtable.
* :class:`~repro.lsm.manifest.RunManifest` — dual-slot, versioned,
  checksummed installs of the live run set; a torn install rolls back
  to the previous version.
* :class:`~repro.lsm.compactor.Compactor` — tiered merges of runs,
  inline (deterministic) or on a background thread.
* :class:`~repro.lsm.facility.LSMSignatureFacility` — the
  :class:`~repro.access.base.SetAccessFacility` facade tying them
  together; query answers are bit-identical to the in-place path.
"""

from repro.lsm.compactor import Compactor
from repro.lsm.facility import LSMSignatureFacility
from repro.lsm.manifest import RunManifest
from repro.lsm.memtable import MemTable
from repro.lsm.run import SignatureRun

__all__ = [
    "Compactor",
    "LSMSignatureFacility",
    "MemTable",
    "RunManifest",
    "SignatureRun",
]
