"""Immutable signature run segments.

A run is a sealed memtable (or the merge of older runs): an ordinary
SSF- or BSSF-format signature file pair, bulk-loaded once in sequence
order and never mutated again. Reusing the in-place facility classes
means runs get the packed-uint64 kernels, the per-page CRC sidecars and
the page-accounting semantics of the paper's facilities for free — a
run's search is exactly an in-place facility's search over its slice of
the entries.

Alongside the storage files each run keeps an in-memory table of its
entries (``OID -> (elements, seq)``) and its tombstone set. Signatures
are not invertible, so the element sets must ride along for compaction
merges and for the checkpoint manifest — this is uncharged bookkeeping,
the same category as the object directory.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Optional, Set, Tuple

from repro.access.bssf import BitSlicedSignatureFile
from repro.access.ssf import SequentialSignatureFile
from repro.core.signature import SignatureScheme
from repro.errors import ConfigurationError
from repro.objects.oid import OID
from repro.storage.paged_file import StorageManager

SetValue = FrozenSet[Hashable]

RUN_KINDS = ("ssf", "bssf")


def run_prefix(file_prefix: str, run_id: int) -> str:
    """Storage-file prefix for one run's inner facility files.

    The prefix stays under the facility's ``{kind}:{Class}.{attr}:``
    namespace so :func:`repro.recovery.rebuild.facility_of_file` attributes
    run files to the right facility and a rebuild's prefix-drop removes
    them.
    """
    return f"{file_prefix}:r{run_id:06d}"


class SignatureRun:
    """One immutable run: inner signature facility + entry/tombstone tables."""

    def __init__(
        self,
        run_id: int,
        level: int,
        kind: str,
        inner,
        entries: Dict[OID, Tuple[SetValue, int]],
        tombstones: Set[OID],
    ):
        self.run_id = run_id
        self.level = level
        self.kind = kind
        self.inner = inner
        self.entries = entries
        self.tombstones = tombstones
        # OID-file order of the inner facility == seq order (built that way).
        self._ordered = sorted(entries.items(), key=lambda item: item[1][1])

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        storage: StorageManager,
        scheme: SignatureScheme,
        file_prefix: str,
        run_id: int,
        level: int,
        kind: str,
        entries: Dict[OID, Tuple[SetValue, int]],
        tombstones: Set[OID],
        *,
        use_kernels: bool = True,
    ) -> "SignatureRun":
        """Seal ``entries`` into fresh storage files, bulk-loaded in seq order."""
        if kind not in RUN_KINDS:
            raise ConfigurationError(f"unknown run kind: {kind!r}")
        inner = cls._create_inner(
            storage, scheme, run_prefix(file_prefix, run_id), kind, use_kernels
        )
        ordered = sorted(entries.items(), key=lambda item: item[1][1])
        inner.bulk_load([(elements, oid) for oid, (elements, _) in ordered])
        return cls(run_id, level, kind, inner, dict(entries), set(tombstones))

    @classmethod
    def attach(
        cls,
        storage: StorageManager,
        scheme: SignatureScheme,
        file_prefix: str,
        run_id: int,
        level: int,
        kind: str,
        entries: Dict[OID, Tuple[SetValue, int]],
        tombstones: Set[OID],
        *,
        use_kernels: bool = True,
    ) -> "SignatureRun":
        """Re-open a run whose storage files already exist (checkpoint load)."""
        if kind == "ssf":
            inner = SequentialSignatureFile.attach(
                storage,
                scheme,
                file_prefix=run_prefix(file_prefix, run_id),
                entry_count=len(entries),
                use_kernels=use_kernels,
            )
        else:
            inner = BitSlicedSignatureFile.attach(
                storage,
                scheme,
                file_prefix=run_prefix(file_prefix, run_id),
                entry_count=len(entries),
                use_kernels=use_kernels,
            )
        return cls(run_id, level, kind, inner, dict(entries), set(tombstones))

    @staticmethod
    def _create_inner(storage, scheme, prefix, kind, use_kernels):
        if kind == "ssf":
            return SequentialSignatureFile(
                storage, scheme, file_prefix=prefix, use_kernels=use_kernels
            )
        return BitSlicedSignatureFile(
            storage, scheme, file_prefix=prefix, use_kernels=use_kernels
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, oid: OID) -> bool:
        return oid in self.entries or oid in self.tombstones

    def seq_of(self, oid: OID) -> int:
        return self.entries[oid][1]

    @property
    def entry_count(self) -> int:
        return len(self.entries)

    def storage_pages(self) -> int:
        return sum(self.inner.storage_pages().values())

    def file_names(self):
        """Names of this run's storage files (for GC after compaction)."""
        if self.kind == "ssf":
            return [self.inner.signature_file.name, self.inner.oid_file.file.name]
        names = [sf.name for sf in self.inner._slice_files]
        names.append(self.inner.oid_file.file.name)
        return names

    def drop_files(self, storage: StorageManager) -> None:
        for name in self.file_names():
            storage.drop_file(name)

    def verify(self) -> None:
        self.inner.verify()
        if self.inner.entry_count != len(self.entries):
            raise ConfigurationError(
                f"run {self.run_id}: inner facility holds "
                f"{self.inner.entry_count} entries, manifest says "
                f"{len(self.entries)}"
            )

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        mode: str,
        query: SetValue,
        *,
        use_elements: Optional[int] = None,
        slices_to_examine: Optional[int] = None,
    ):
        """Run the inner facility's charged drop test for one mode."""
        if mode == "superset":
            if use_elements is not None:
                return self.inner.search_superset(query, use_elements=use_elements)
            return self.inner.search_superset(query)
        if mode == "subset":
            if slices_to_examine is not None:
                return self.inner.search_subset(
                    query, slices_to_examine=slices_to_examine
                )
            return self.inner.search_subset(query)
        if mode == "overlap":
            return self.inner.search_overlap(query)
        raise ConfigurationError(f"unknown search mode: {mode!r}")

    # ------------------------------------------------------------------
    # Manifest descriptor
    # ------------------------------------------------------------------
    def to_state(self) -> list:
        return [
            self.run_id,
            self.level,
            [[oid.to_int(), seq, elements] for oid, (elements, seq) in self._ordered],
            sorted(oid.to_int() for oid in self.tombstones),
        ]

    @staticmethod
    def state_tables(state: list):
        """Decode a :meth:`to_state` row into (run_id, level, entries, tombstones)."""
        run_id, level, entry_rows, tombstone_ints = state
        entries = {
            OID.from_int(oid_int): (frozenset(elements), seq)
            for oid_int, seq, elements in entry_rows
        }
        tombstones = {OID.from_int(value) for value in tombstone_ints}
        return run_id, level, entries, tombstones

    def __repr__(self) -> str:
        return (
            f"SignatureRun(id={self.run_id}, level={self.level}, "
            f"kind={self.kind!r}, entries={len(self.entries)}, "
            f"tombstones={len(self.tombstones)})"
        )
