"""Background run compaction.

Inline compaction (the default, ``auto_compact=True`` on the facility)
cascades tiered merges synchronously at flush time — deterministic, which
is what WAL replay and the crash matrix need. :class:`Compactor` is the
operational alternative: a daemon thread that watches one facility and
merges over-full tiers without stalling readers. The expensive half of a
merge — reading the immutable victim runs and bulk-loading the output
segment — runs with *no* latch held (new files are invisible until
installed); only the pointer swap and manifest install take the database
write latch, and :meth:`LSMSignatureFacility.install_compaction`
revalidates the victims under it.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.lsm.facility import LSMSignatureFacility
from repro.objects.database import Database


class Compactor:
    """Daemon thread merging one facility's runs under the tiered policy."""

    def __init__(
        self,
        database: Database,
        class_name: str,
        attribute: str,
        facility: LSMSignatureFacility,
        *,
        interval: float = 0.05,
    ):
        self._database = database
        self._class_name = class_name
        self._facility = facility
        self._interval = interval
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.merges = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Compactor":
        if self._thread is not None:
            return self
        self._facility.auto_compact = False
        self._thread = threading.Thread(
            target=self._loop, name="lsm-compactor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, *, drain: bool = True) -> None:
        """Stop the thread; with ``drain`` finish outstanding merges first.

        The thread is joined *before* draining: a drain loop racing the
        merge loop could lose an install to it (stale plan) and read that
        as "nothing left" while a tier is still over-full.
        """
        if self._thread is None:
            return
        self._stop.set()
        self._wake.set()
        self._thread.join(timeout=10.0)
        self._thread = None
        if drain:
            while self._run_once():
                self.merges += 1
        self._facility.auto_compact = True

    def poke(self) -> None:
        """Wake the thread early (e.g. right after a flush)."""
        self._wake.set()

    def __enter__(self) -> "Compactor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Merge loop
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            if self._run_once():
                self.merges += 1
                continue  # cascade immediately while tiers stay over-full
            self._wake.wait(self._interval)
            self._wake.clear()

    def _run_once(self) -> bool:
        """One merge: prepare latch-free, install under the write latch."""
        plan = self._facility.prepare_compaction()
        if plan is None:
            return False
        with self._database.write_scope(self._class_name):
            return self._facility.install_compaction(plan)

    def __repr__(self) -> str:
        running = self._thread is not None
        return (
            f"Compactor(facility={self._facility.file_prefix!r}, "
            f"running={running}, merges={self.merges})"
        )
