"""In-memory write buffer for the LSM signature path.

The memtable is the newest layer of the facility: it holds every entry
inserted since the last flush plus tombstones for every OID deleted since
then. Durability comes from the WAL (the facility logs the maintenance
record *before* touching the memtable), so nothing here touches storage —
that is exactly what lets the write path amortize fsyncs.

Each entry keeps three things: the element set (needed to rebuild the
signature when the memtable is sealed into a run and to merge runs later),
the facility-wide sequence number of the insert (query results are ordered
by it — see :mod:`repro.lsm.facility`), and the precomputed set signature
(so memtable drop tests cost the same signature math as a stored entry).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Set, Tuple

from repro.core.bits import BitVector
from repro.core.signature import SignatureScheme
from repro.objects.oid import OID

SetValue = FrozenSet[Hashable]


class MemTable:
    """Mutable newest layer: ``OID -> (elements, seq, signature)`` + tombstones."""

    def __init__(self) -> None:
        self.entries: Dict[OID, Tuple[SetValue, int, BitVector]] = {}
        self.tombstones: Set[OID] = set()
        # Operations absorbed since creation; drives the flush threshold.
        self.ops = 0

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def is_empty(self) -> bool:
        return not self.entries and not self.tombstones

    def insert(
        self, elements: SetValue, oid: OID, seq: int, scheme: SignatureScheme
    ) -> None:
        """Record a new live version of ``oid`` with sequence number ``seq``."""
        self.entries[oid] = (elements, seq, scheme.set_signature(elements))
        self.tombstones.discard(oid)
        self.ops += 1

    def delete(self, oid: OID) -> None:
        """Record the deletion of ``oid`` (shadows any older layer)."""
        self.entries.pop(oid, None)
        self.tombstones.add(oid)
        self.ops += 1

    # ------------------------------------------------------------------
    # Checkpoint descriptor
    # ------------------------------------------------------------------
    def to_state(self) -> list:
        """Serde-encodable state: entries in seq order + sorted tombstones."""
        entries = sorted(self.entries.items(), key=lambda item: item[1][1])
        return [
            [[oid.to_int(), seq, elements] for oid, (elements, seq, _) in entries],
            sorted(oid.to_int() for oid in self.tombstones),
            self.ops,
        ]

    @classmethod
    def from_state(cls, state: list, scheme: SignatureScheme) -> "MemTable":
        table = cls()
        entry_rows, tombstone_ints, ops = state
        for oid_int, seq, elements in entry_rows:
            table.entries[OID.from_int(oid_int)] = (
                frozenset(elements),
                seq,
                scheme.set_signature(elements),
            )
        table.tombstones = {OID.from_int(value) for value in tombstone_ints}
        table.ops = ops
        return table
