"""LSM-structured set access facility.

:class:`LSMSignatureFacility` presents the same
:class:`~repro.access.base.SetAccessFacility` contract as the in-place
SSF/BSSF facilities — same ``name`` (so plans print identically), same
maintenance WAL records, same search modes — but restructures the write
path as memtable → immutable runs → tiered compaction.

Equivalence with the in-place path is by construction:

* **Row order.** An in-place facility returns candidates in OID-file
  entry order, which is the chronological order of each live entry's most
  recent insert (an update tombstones the old entry and appends a new
  one). The LSM facility assigns every insert a monotonic sequence
  number and sorts merged candidates by it — the same order.
* **Candidate sets.** Every drop test (superset, subset with
  ``slices_to_examine``, overlap, partial query signatures) depends only
  on the entry's signature bits at positions fixed by the query. The
  memtable mirrors the tests bit for bit and runs delegate to real
  SSF/BSSF searches, so the union of live drops equals the in-place drop
  set exactly — including false drops.
* **Shadowing.** The facility keeps an authoritative ``OID -> seq`` map
  of live versions (uncharged bookkeeping, like the object directory). A
  run candidate counts only if its entry's seq is the live seq; memtable
  entries are always live. This reproduces newest-layer-wins without
  rescanning older runs.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

import numpy as np

from repro.access.base import SearchResult, SetAccessFacility
from repro.core import kernels
from repro.core.bits import BitVector
from repro.core.signature import SignatureScheme
from repro.errors import AccessFacilityError, IndexCorruptionError
from repro.lsm.manifest import RunManifest
from repro.lsm.memtable import MemTable
from repro.lsm.run import RUN_KINDS, SignatureRun
from repro.objects.oid import OID
from repro.obs.tracer import traced_search
from repro.storage.paged_file import StorageManager

SetValue = FrozenSet[Hashable]

DEFAULT_FLUSH_THRESHOLD = 256
DEFAULT_FANOUT = 4


class LSMSignatureFacility(SetAccessFacility):
    """Memtable + immutable signature runs behind the facility contract."""

    is_lsm = True

    def __init__(
        self,
        storage: StorageManager,
        scheme: SignatureScheme,
        kind: str,
        file_prefix: str,
        *,
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
        fanout: int = DEFAULT_FANOUT,
        worst_case_insert: bool = False,
        use_kernels: bool = True,
    ):
        if kind not in RUN_KINDS:
            raise AccessFacilityError(f"unknown LSM run kind: {kind!r}")
        if flush_threshold < 1:
            raise AccessFacilityError(
                f"flush_threshold must be >= 1, got {flush_threshold}"
            )
        if fanout < 2:
            raise AccessFacilityError(f"fanout must be >= 2, got {fanout}")
        self.name = kind
        self.kind = kind
        self._storage = storage
        self.scheme = scheme
        self.signature_bits = scheme.signature_bits
        self.file_prefix = file_prefix
        self.flush_threshold = flush_threshold
        self.fanout = fanout
        self.worst_case_insert = worst_case_insert
        self.use_kernels = use_kernels
        self.memtable = MemTable()
        # Oldest -> newest by data recency. Tiered merges keep levels
        # non-increasing along this list, so a level's runs are contiguous.
        self.runs: List[SignatureRun] = []
        self.manifest = RunManifest(storage, file_prefix)
        # Authoritative live view: OID -> seq of its current version.
        self._live: Dict[OID, int] = {}
        self._next_seq = 0
        self._next_run_id = 0
        # Run ids name storage files; a background compactor allocates
        # them off-thread while foreground flushes allocate inline, so the
        # counter bump must be atomic.
        self._run_id_lock = threading.Lock()
        # Background compactors flip this off and install merges themselves.
        self.auto_compact = True
        self.counters = {"flushes": 0, "compactions": 0}

    # ------------------------------------------------------------------
    # Attach (checkpoint load)
    # ------------------------------------------------------------------
    @classmethod
    def attach(
        cls,
        storage: StorageManager,
        scheme: SignatureScheme,
        file_prefix: str,
        state_blob: bytes,
        *,
        worst_case_insert: bool = False,
        use_kernels: bool = True,
    ) -> "LSMSignatureFacility":
        """Re-open a facility over existing run/manifest files.

        ``state_blob`` is a :meth:`state_blob` payload — the serde-encoded
        memtable and counters a snapshot catalog carries alongside the
        storage files.
        """
        from repro.objects.serde import decode_value

        kind, flush_threshold, fanout, memtable_state, next_seq, next_run_id = (
            decode_value(state_blob)
        )
        facility = cls(
            storage,
            scheme,
            kind,
            file_prefix,
            flush_threshold=flush_threshold,
            fanout=fanout,
            worst_case_insert=worst_case_insert,
            use_kernels=use_kernels,
        )
        run_states, _ = facility.manifest.load()
        for run_state in run_states:
            run_id, level, entries, tombstones = SignatureRun.state_tables(run_state)
            facility.runs.append(
                SignatureRun.attach(
                    storage,
                    scheme,
                    file_prefix,
                    run_id,
                    level,
                    kind,
                    entries,
                    tombstones,
                    use_kernels=use_kernels,
                )
            )
        facility.memtable = MemTable.from_state(memtable_state, scheme)
        facility._next_seq = next_seq
        facility._next_run_id = next_run_id
        facility._rebuild_live()
        facility.verify()
        return facility

    def state_blob(self) -> bytes:
        """Serde-encoded snapshot state beyond what the storage files hold."""
        from repro.objects.serde import encode_value

        return encode_value(
            [
                self.kind,
                self.flush_threshold,
                self.fanout,
                self.memtable.to_state(),
                self._next_seq,
                self._next_run_id,
            ]
        )

    def _rebuild_live(self) -> None:
        self._live.clear()
        for run in self.runs:  # oldest -> newest
            for oid in run.tombstones:
                self._live.pop(oid, None)
            for oid, (_, seq) in run.entries.items():
                self._live[oid] = seq
        for oid in self.memtable.tombstones:
            self._live.pop(oid, None)
        for oid, (_, seq, _) in self.memtable.entries.items():
            self._live[oid] = seq

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    @property
    def entry_count(self) -> int:
        """Number of live entries (memtable + runs, after shadowing)."""
        return len(self._live)

    @property
    def run_count(self) -> int:
        return len(self.runs)

    def bulk_load(self, pairs) -> int:
        """Backfill an empty facility: seal ``pairs`` directly into one run."""
        if self._live or self.runs or not self.memtable.is_empty:
            raise AccessFacilityError("bulk_load requires an empty facility")
        count = 0
        for elements, oid in pairs:
            self.memtable.insert(frozenset(elements), oid, self._next_seq, self.scheme)
            self._live[oid] = self._next_seq
            self._next_seq += 1
            count += 1
        if count:
            self.flush()
        self.memtable.ops = 0
        return count

    def insert(self, elements: SetValue, oid: OID) -> None:
        self.log_wal_maintenance("facility_insert", elements, oid)
        self.memtable.insert(elements, oid, self._next_seq, self.scheme)
        self._live[oid] = self._next_seq
        self._next_seq += 1
        self._maybe_flush()

    def delete(self, elements: SetValue, oid: OID) -> None:
        self.log_wal_maintenance("facility_delete", elements, oid)
        self.memtable.delete(oid)
        self._live.pop(oid, None)
        self._maybe_flush()

    def _allocate_run_id(self) -> int:
        with self._run_id_lock:
            run_id = self._next_run_id
            self._next_run_id += 1
            return run_id

    def _maybe_flush(self) -> None:
        if self.memtable.ops >= self.flush_threshold:
            self.flush()

    def flush(self) -> Optional[SignatureRun]:
        """Seal the memtable into a fresh level-0 run and install it.

        Tombstones are carried into the run only when some older run still
        holds a version of the OID; otherwise nothing needs shadowing.
        Deterministic: the run id, entry order (by seq) and manifest bytes
        are functions of the operation history alone, which is what lets
        WAL replay reproduce flushed state byte for byte.
        """
        if self.memtable.is_empty:
            self.memtable.ops = 0
            return None
        entries = {
            oid: (elements, seq)
            for oid, (elements, seq, _) in self.memtable.entries.items()
        }
        tombstones = {
            oid
            for oid in self.memtable.tombstones
            if any(oid in run for run in self.runs)
        }
        if not entries and not tombstones:
            # e.g. an insert+delete pair that cancelled within one
            # memtable generation: nothing to persist, nothing to shadow.
            self.memtable = MemTable()
            return None
        run = SignatureRun.build(
            self._storage,
            self.scheme,
            self.file_prefix,
            self._allocate_run_id(),
            0,
            self.kind,
            entries,
            tombstones,
            use_kernels=self.use_kernels,
        )
        self.runs.append(run)
        self.memtable = MemTable()
        self.counters["flushes"] += 1
        self._install()
        if self.auto_compact:
            self.compact()
        return run

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compaction_candidates(self) -> Optional[List[SignatureRun]]:
        """The oldest full tier, if any level has >= fanout runs."""
        by_level: Dict[int, List[SignatureRun]] = {}
        for run in self.runs:
            by_level.setdefault(run.level, []).append(run)
        for level in sorted(by_level, reverse=True):
            if len(by_level[level]) >= self.fanout:
                return by_level[level]
        return None

    def compact(self) -> int:
        """Cascade tiered merges until no level is over-full; returns merges."""
        merges = 0
        while True:
            victims = self.compaction_candidates()
            if victims is None:
                return merges
            plan = self.prepare_compaction(victims)
            self.install_compaction(plan)
            merges += 1

    def prepare_compaction(
        self, victims: Optional[List[SignatureRun]] = None
    ) -> Optional[Tuple[List[SignatureRun], SignatureRun]]:
        """Build (but do not install) the merge of one over-full tier.

        Safe to call without holding the database write latch: it only
        reads immutable runs and writes fresh, not-yet-referenced storage
        files. Returns ``None`` when no tier needs merging.
        """
        if victims is None:
            victims = self.compaction_candidates()
            if victims is None:
                return None
        merged_entries: Dict[OID, Tuple[SetValue, int]] = {}
        merged_tombstones: Set[OID] = set()
        for run in victims:  # oldest -> newest within the tier
            for oid in run.tombstones:
                merged_entries.pop(oid, None)
                merged_tombstones.add(oid)
            for oid, (elements, seq) in run.entries.items():
                merged_tombstones.discard(oid)
                merged_entries[oid] = (elements, seq)
        first = self.runs.index(victims[0])
        older = self.runs[:first]
        merged_tombstones = {
            oid
            for oid in merged_tombstones
            if any(oid in run for run in older)
        }
        output = SignatureRun.build(
            self._storage,
            self.scheme,
            self.file_prefix,
            self._allocate_run_id(),
            victims[0].level + 1,
            self.kind,
            merged_entries,
            merged_tombstones,
            use_kernels=self.use_kernels,
        )
        return victims, output

    def install_compaction(
        self, plan: Tuple[List[SignatureRun], SignatureRun]
    ) -> bool:
        """Swap a prepared merge into the run list and GC the victims.

        Must run under the database write latch when readers are live. If
        the victims are no longer all present (a concurrent rebuild), the
        prepared output is discarded and False is returned.
        """
        victims, output = plan
        if any(victim not in self.runs for victim in victims):
            output.drop_files(self._storage)
            return False
        first = self.runs.index(victims[0])
        self.runs[first:first + len(victims)] = [output]
        self.counters["compactions"] += 1
        self._install()
        for victim in victims:
            victim.drop_files(self._storage)
        return True

    def _install(self) -> None:
        self.manifest.install([run.to_state() for run in self.runs])

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    @traced_search("lsm.search.superset")
    def search_superset(
        self, query: SetValue, use_elements: Optional[int] = None
    ) -> SearchResult:
        if not query:
            return self._all_live("superset", exact=True)
        signature = self._query_signature(query, use_elements)
        return self._layered_search(
            "superset",
            query,
            memtable_hit=lambda entry_sig: entry_sig.covers(signature),
            use_elements=use_elements,
        )

    @traced_search("lsm.search.subset")
    def search_subset(
        self, query: SetValue, slices_to_examine: Optional[int] = None
    ) -> SearchResult:
        if slices_to_examine is not None and slices_to_examine < 0:
            raise AccessFacilityError("slices_to_examine must be >= 0")
        if not query:
            return self._all_live("subset", exact=False)
        mask = self._subset_mask(query, slices_to_examine)
        return self._layered_search(
            "subset",
            query,
            memtable_hit=lambda entry_sig: not entry_sig.intersects(mask),
            slices_to_examine=slices_to_examine,
        )

    @traced_search("lsm.search.overlap")
    def search_overlap(self, query: SetValue) -> SearchResult:
        if not query:
            return SearchResult(
                [], exact=True, facility=self.name,
                detail={"mode": "overlap", "drops": 0, "live_drops": 0,
                        "runs": len(self.runs)},
            )
        signature = self.scheme.set_signature(query)
        return self._layered_search(
            "overlap",
            query,
            memtable_hit=lambda entry_sig: entry_sig.intersects(signature),
        )

    def _query_signature(
        self, query: SetValue, use_elements: Optional[int]
    ) -> BitVector:
        # Mirrors the in-place facilities: partial query signatures pick
        # elements in the same deterministic (repr-sorted) order.
        if use_elements is None:
            return self.scheme.set_signature(query)
        if use_elements < 1:
            raise AccessFacilityError(
                f"use_elements must be >= 1, got {use_elements}"
            )
        ordered = sorted(query, key=repr)
        return self.scheme.partial_query_signature(ordered, use_elements)

    def _subset_mask(
        self, query: SetValue, slices_to_examine: Optional[int]
    ) -> BitVector:
        """Bit mask of the examined zero positions of the query signature.

        An entry is a subset drop iff it has no 1 at any examined zero
        position — i.e. its signature does not intersect this mask. The
        truncation order (ascending position) matches SSF/BSSF exactly.
        """
        signature = self.scheme.set_signature(query)
        bits = kernels.unpack_rows(
            signature.words[np.newaxis, :], self.scheme.signature_bits
        )[0]
        zero_positions = np.nonzero(1 - bits)[0]
        if slices_to_examine is not None:
            zero_positions = zero_positions[:slices_to_examine]
        mask_bits = np.zeros(self.scheme.signature_bits, dtype=np.uint8)
        mask_bits[zero_positions] = 1
        words = kernels.pack_rows(mask_bits[np.newaxis, :])[0]
        return BitVector(self.scheme.signature_bits, words)

    def _layered_search(
        self,
        mode: str,
        query: SetValue,
        *,
        memtable_hit,
        use_elements: Optional[int] = None,
        slices_to_examine: Optional[int] = None,
    ) -> SearchResult:
        """Evaluate memtable + every run; merge live drops in seq order."""
        matches: List[Tuple[int, OID]] = []
        drops = 0
        per_run = []
        for oid, (_, seq, entry_sig) in self.memtable.entries.items():
            if memtable_hit(entry_sig):
                drops += 1
                matches.append((seq, oid))
        for run in self.runs:
            result = run.search(
                mode,
                query,
                use_elements=use_elements,
                slices_to_examine=slices_to_examine,
            )
            run_live = 0
            for oid in result.candidates:
                seq = run.seq_of(oid)
                if self._live.get(oid) == seq:
                    matches.append((seq, oid))
                    run_live += 1
            drops += result.detail.get("drops", len(result.candidates))
            per_run.append(
                {"run": run.run_id, "level": run.level,
                 "drops": result.detail.get("drops", 0), "live_drops": run_live}
            )
        matches.sort()
        candidates = [oid for _, oid in matches]
        return SearchResult(
            candidates,
            exact=False,
            facility=self.name,
            detail={
                "mode": mode,
                "drops": drops,
                "live_drops": len(candidates),
                "runs": len(self.runs),
                "memtable_entries": len(self.memtable.entries),
                "per_run": per_run,
            },
        )

    def _all_live(self, mode: str, *, exact: bool) -> SearchResult:
        ordered = sorted(self._live.items(), key=lambda item: item[1])
        candidates = [oid for oid, _ in ordered]
        return SearchResult(
            candidates,
            exact=exact,
            facility=self.name,
            detail={
                "mode": mode,
                "drops": len(candidates),
                "live_drops": len(candidates),
                "runs": len(self.runs),
            },
        )

    # ------------------------------------------------------------------
    # Cost accounting (run count as a cost-model parameter)
    # ------------------------------------------------------------------
    def predicted_run_pages(self) -> List[dict]:
        """Per-run predicted signature-page reads for a full-scan search.

        Extends the paper's cost model with the run count: an SSF-format
        run scans exactly its signature pages, a BSSF-format run reads at
        most every slice page. Actual reads can only be lower (BSSF early
        exits), never higher — the differential suite pins the SSF case to
        equality and the BSSF case as an upper bound.
        """
        predictions = []
        for run in self.runs:
            if self.kind == "ssf":
                pages = run.inner.signature_file.num_pages
            else:
                pages = run.inner.slice_pages * self.scheme.signature_bits
            predictions.append(
                {"run": run.run_id, "level": run.level,
                 "entries": run.entry_count, "pages": pages}
            )
        return predictions

    # ------------------------------------------------------------------
    # Facility contract plumbing
    # ------------------------------------------------------------------
    def storage_pages(self) -> dict:
        return {
            "runs": sum(run.storage_pages() for run in self.runs),
            "manifest": self.manifest.storage_pages(),
        }

    def verify(self) -> None:
        """Structural invariants: runs intact, shadowing map consistent."""
        levels = [run.level for run in self.runs]
        if levels != sorted(levels, reverse=True):
            raise IndexCorruptionError(
                f"{self.file_prefix}: run levels not non-increasing: {levels}"
            )
        for run in self.runs:
            run.verify()
        expected: Dict[OID, int] = {}
        for run in self.runs:
            for oid in run.tombstones:
                expected.pop(oid, None)
            for oid, (_, seq) in run.entries.items():
                expected[oid] = seq
        for oid in self.memtable.tombstones:
            expected.pop(oid, None)
        for oid, (_, seq, _) in self.memtable.entries.items():
            expected[oid] = seq
        if expected != self._live:
            raise IndexCorruptionError(
                f"{self.file_prefix}: live map out of sync with layers "
                f"({len(expected)} expected, {len(self._live)} held)"
            )

    def __repr__(self) -> str:
        return (
            f"LSMSignatureFacility(kind={self.kind!r}, "
            f"prefix={self.file_prefix!r}, entries={self.entry_count}, "
            f"memtable={len(self.memtable)}, runs={len(self.runs)})"
        )
