"""Deterministic fault injection for the simulated disk.

A :class:`FaultInjector` wraps a :class:`~repro.storage.disk.DiskStore`
behind the exact same interface (attach it with
:meth:`~repro.storage.paged_file.StorageManager.attach_fault_injector`) and
injects faults at precisely keyed device operations:

* ``transient`` — the read/write raises
  :class:`~repro.errors.TransientIOError`; the operation never reaches the
  store. The buffer pool retries these per its :class:`RetryPolicy`.
* ``torn`` — a write persists only the first half of the new image (the
  rest keeps the old content) while the checksum sidecar records the CRC of
  the *intended* image, exactly like a torn sector write under a
  checksummed page: the caller believes the write succeeded, and the next
  physical read raises :class:`~repro.errors.CorruptPageError`.
* ``bitflip`` — one bit of the stored image is flipped without updating the
  checksum (silent media corruption; detected on next read).
* ``crash`` — raises :class:`~repro.errors.SimulatedCrashError` *before*
  the operation reaches the device, modelling a process death at that
  point. Crash-matrix tests enumerate these points during updates.

Faults are keyed by ``(file, page, op, call-count)`` through
:class:`FaultRule` — the rule's Nth *matching* call triggers — or drawn
from a seeded RNG (``seed=`` plus per-op rates) for randomized smoke runs.
Every injected fault increments the ``storage.faults.injected`` metric and
is appended to :attr:`FaultInjector.injected` for assertions.

All device operations flow through the injector once attached, including
the accounting-free ``peek`` reads decode caches use — the injector sits at
the device, below the accounting layer.
"""

from __future__ import annotations

import fnmatch
import random
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.errors import (
    SimulatedCrashError,
    StorageError,
    TransientIOError,
)
from repro.obs.metrics import REGISTRY
from repro.storage.disk import DiskStore
from repro.storage.page import Page

_KINDS = ("transient", "torn", "bitflip", "crash")
#: ``wal-append`` targets write-ahead-log appends (the "page" of a matching
#: rule is interpreted as the record's LSN).
_OPS = ("read", "write", "wal-append")

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Retry-with-backoff for transient device faults.

    ``backoff_seconds`` defaults to 0 — the simulator has no real device to
    wait for, but the exponential schedule is honored when a caller opts
    into real sleeps. ``jitter_seconds`` adds up to that much uniform
    random extra delay per sleep (decorrelates retry storms);
    ``max_elapsed_seconds`` caps the total time spent inside
    :func:`with_retries` — once exceeded, the next transient fault
    propagates even if attempts remain.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.0
    multiplier: float = 2.0
    jitter_seconds: float = 0.0
    max_elapsed_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise StorageError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_seconds < 0:
            raise StorageError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.jitter_seconds < 0:
            raise StorageError(
                f"jitter_seconds must be >= 0, got {self.jitter_seconds}"
            )
        if self.max_elapsed_seconds is not None and self.max_elapsed_seconds <= 0:
            raise StorageError(
                f"max_elapsed_seconds must be > 0, got {self.max_elapsed_seconds}"
            )

    def sleep_for(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Delay before retry number ``attempt`` (1-based failed attempts)."""
        delay = self.backoff_seconds * self.multiplier ** (attempt - 1)
        if self.jitter_seconds > 0:
            delay += (rng or random).uniform(0.0, self.jitter_seconds)
        return delay


#: Policy used by every buffer pool unless one is supplied explicitly.
DEFAULT_RETRY_POLICY = RetryPolicy()


def with_retries(operation: Callable[[], T], policy: RetryPolicy) -> T:
    """Run ``operation``, retrying transient I/O faults per ``policy``.

    Each retry increments the ``storage.retries`` metric; once
    ``max_attempts`` attempts have failed the last
    :class:`~repro.errors.TransientIOError` propagates.
    """
    attempt = 1
    started = time.monotonic()
    while True:
        try:
            return operation()
        except TransientIOError:
            REGISTRY.counter("storage.retries").inc()
            if attempt >= policy.max_attempts:
                raise
            if (
                policy.max_elapsed_seconds is not None
                and time.monotonic() - started >= policy.max_elapsed_seconds
            ):
                raise
            delay = policy.sleep_for(attempt)
            if delay > 0:
                time.sleep(delay)
            attempt += 1


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault point.

    Matches device operations by ``op`` (``read``/``write``), file name
    (exact or :mod:`fnmatch` pattern; ``None`` = any file) and page number
    (``None`` = any page). The rule fires on its ``at_call``-th *matching*
    call and keeps firing for ``count`` consecutive matching calls — so
    ``FaultRule("read", "transient", count=2)`` faults twice and then lets
    the retry succeed.
    """

    op: str
    kind: str
    file: Optional[str] = None
    page: Optional[int] = None
    at_call: int = 1
    count: int = 1
    bit: int = 0

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise StorageError(f"fault op must be one of {_OPS}, got {self.op!r}")
        if self.kind not in _KINDS:
            raise StorageError(
                f"fault kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.kind == "torn" and self.op == "read":
            raise StorageError("torn faults only apply to writes")
        if self.op == "wal-append" and self.kind == "bitflip":
            raise StorageError("bitflip faults do not apply to wal appends")
        if self.at_call < 1:
            raise StorageError(f"at_call must be >= 1, got {self.at_call}")
        if self.count < 1:
            raise StorageError(f"count must be >= 1, got {self.count}")
        if self.bit < 0:
            raise StorageError(f"bit must be >= 0, got {self.bit}")

    def matches(self, op: str, name: str, page_no: int) -> bool:
        if op != self.op:
            return False
        if self.page is not None and page_no != self.page:
            return False
        if self.file is not None and not fnmatch.fnmatchcase(name, self.file):
            return False
        return True


@dataclass(frozen=True)
class InjectedFault:
    """Record of one fault the injector actually fired."""

    op: str
    kind: str
    file: str
    page: int
    call: int


class FaultInjector:
    """Fault-injecting proxy with the :class:`DiskStore` interface.

    Deterministic rules fire first; when ``seed`` is given, a private RNG
    additionally injects transient/bitflip faults at the configured rates
    (same seed → same fault sequence, for reproducible randomized smoke
    runs). Operations that don't fault delegate verbatim to the wrapped
    store; everything not overridden here (versions, groups, file table,
    checksum API) is delegated via ``__getattr__``.
    """

    def __init__(
        self,
        store: DiskStore,
        rules: Sequence[FaultRule] = (),
        seed: Optional[int] = None,
        transient_read_rate: float = 0.0,
        transient_write_rate: float = 0.0,
        bitflip_write_rate: float = 0.0,
    ):
        for rate in (transient_read_rate, transient_write_rate, bitflip_write_rate):
            if not 0.0 <= rate <= 1.0:
                raise StorageError(f"fault rate must be in [0, 1], got {rate}")
        self._inner = store
        self._rules: List[FaultRule] = list(rules)
        self._rule_calls: Dict[int, int] = {i: 0 for i in range(len(self._rules))}
        self._rng = random.Random(seed) if seed is not None else None
        self._transient_read_rate = transient_read_rate
        self._transient_write_rate = transient_write_rate
        self._bitflip_write_rate = bitflip_write_rate
        #: set False to pass every operation through untouched
        self.armed = True
        #: every fault fired, in order
        self.injected: List[InjectedFault] = []
        #: device operations seen per op kind (for crash-point enumeration)
        self.op_counts: Dict[str, int] = {"read": 0, "write": 0, "wal-append": 0}
        self._metric_injected = REGISTRY.counter("storage.faults.injected")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def inner(self) -> DiskStore:
        """The wrapped store (used by ``detach_fault_injector``)."""
        return self._inner

    def add_rule(self, rule: FaultRule) -> None:
        self._rule_calls[len(self._rules)] = 0
        self._rules.append(rule)

    def clear_rules(self) -> None:
        self._rules.clear()
        self._rule_calls.clear()

    def rule_calls(self, index: int = 0) -> int:
        """Matching device calls rule ``index`` has seen so far.

        Crash-matrix tests dry-run a workload with a never-firing rule
        (huge ``at_call``) to enumerate its crash points: the final count
        is exactly the number of ``at_call`` values worth testing.
        """
        return self._rule_calls[index]

    def __getattr__(self, attr: str):
        return getattr(self._inner, attr)

    # ------------------------------------------------------------------
    # Fault selection
    # ------------------------------------------------------------------
    def _pick(self, op: str, name: str, page_no: int) -> Optional[FaultRule]:
        self.op_counts[op] += 1
        if not self.armed:
            return None
        for index, rule in enumerate(self._rules):
            if not rule.matches(op, name, page_no):
                continue
            self._rule_calls[index] += 1
            seen = self._rule_calls[index]
            if rule.at_call <= seen < rule.at_call + rule.count:
                return rule
        if self._rng is not None:
            if op == "read" and self._rng.random() < self._transient_read_rate:
                return FaultRule("read", "transient")
            if op == "write":
                if self._rng.random() < self._transient_write_rate:
                    return FaultRule("write", "transient")
                if self._rng.random() < self._bitflip_write_rate:
                    return FaultRule(
                        "write", "bitflip", bit=self._rng.randrange(64)
                    )
        return None

    def _record(self, rule: FaultRule, op: str, name: str, page_no: int) -> None:
        self.injected.append(
            InjectedFault(op, rule.kind, name, page_no, self.op_counts[op])
        )
        self._metric_injected.inc()

    def _flip_bit(self, name: str, page_no: int, bit: int) -> None:
        image = bytearray(self._inner.page_image(name, page_no))
        byte_no = (bit // 8) % len(image)
        image[byte_no] ^= 1 << (bit % 8)
        self._inner._apply_corruption(name, page_no, bytes(image))

    # ------------------------------------------------------------------
    # Intercepted device operations
    # ------------------------------------------------------------------
    def read_page(self, name: str, page_no: int) -> Page:
        rule = self._pick("read", name, page_no)
        if rule is not None:
            self._record(rule, "read", name, page_no)
            if rule.kind == "transient":
                raise TransientIOError(
                    f"injected transient read fault: {name!r} page {page_no}"
                )
            if rule.kind == "crash":
                raise SimulatedCrashError(
                    f"injected crash at read of {name!r} page {page_no}"
                )
            if rule.kind == "bitflip":
                # Silent media corruption surfacing at read time; the
                # store's checksum verification turns it into a
                # CorruptPageError below.
                self._flip_bit(name, page_no, rule.bit)
        return self._inner.read_page(name, page_no)

    def write_page(self, name: str, page_no: int, page: Page) -> None:
        rule = self._pick("write", name, page_no)
        if rule is None:
            self._inner.write_page(name, page_no, page)
            return
        self._record(rule, "write", name, page_no)
        if rule.kind == "transient":
            raise TransientIOError(
                f"injected transient write fault: {name!r} page {page_no}"
            )
        if rule.kind == "crash":
            raise SimulatedCrashError(
                f"injected crash at write of {name!r} page {page_no}"
            )
        if rule.kind == "torn":
            new_image = page.image()
            old_image = self._inner.page_image(name, page_no)
            half = self._inner.page_size // 2
            torn = new_image[:half] + old_image[half:]
            # The checksum records the intended image (as a real
            # checksummed write would); the torn payload mismatches it.
            self._inner._apply_corruption(
                name, page_no, torn, checksum=zlib.crc32(new_image)
            )
            return
        # bitflip: the write lands, then one stored bit silently flips.
        self._inner.write_page(name, page_no, page)
        self._flip_bit(name, page_no, rule.bit)

    def wal_append_fault(self, lsn: int) -> Optional[str]:
        """Fault decision for one WAL append (consulted by the log itself).

        The WAL is a real OS file, not a simulated device, so the injector
        only *decides* here — the log performs the fault (raise transient,
        write half the frame then crash, or crash cleanly). The matching
        rule's ``page`` is compared against the record's LSN. Returns the
        fault kind or ``None``.
        """
        rule = self._pick("wal-append", "wal.log", lsn)
        if rule is None:
            return None
        self._record(rule, "wal-append", "wal.log", lsn)
        return rule.kind
